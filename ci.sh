#!/usr/bin/env sh
# Local CI: exactly what .github/workflows/ci.yml runs.
#
# The workspace is offline-first — default features pull in no external
# crates, so every step below works without network access. Benches and
# property tests that need `rand`/`proptest`/`criterion` are gated behind
# the `external-deps` feature and are not part of tier-1.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo build --workspace --no-default-features (offline honesty)"
cargo build --workspace --no-default-features

# Chaos smoke: seeded fault injection must leave verdicts oracle-equal.
# Fixed seeds keep the stage deterministic; a failure prints the exact
# `rvmon chaos ... --seed N` line that reproduces it locally.
echo "== chaos smoke (fixed seeds, release)"
for seed in 7 41; do
    cargo run -q --release --bin rvmon -- chaos specs/unsafe_iter.rv \
        --seed "$seed" --events 256 >/dev/null
    cargo run -q --release --bin rvmon -- chaos specs/unsafe_sync_map.rv \
        --seed "$seed" --events 256 >/dev/null
done
cargo run -q --release -p rv-bench --bin fig10 -- --scale 0.05 --chaos-seed 7 >/dev/null

# Recovery smoke: journal a run, crash it by chopping the journal tail,
# recover, and audit the repaired journal. `recover`/`replay` exit
# nonzero if the state fails the invariant check, and the corrupt-corpus
# suite asserts typed errors (exit 2, never a panic) on unusable inputs.
echo "== recovery smoke (journal + kill + recover, release)"
RVJ_DIR="${TMPDIR:-/tmp}/rv-ci-journal-$$"
rm -rf "$RVJ_DIR"
cargo run -q --release --bin rvmon -- run specs/unsafe_iter.rv \
    examples/unsafe_iter.events --journal "$RVJ_DIR" --checkpoint-every 4 >/dev/null
SEG="$RVJ_DIR/journal-00000000"
SIZE=$(wc -c <"$SEG")
head -c "$((SIZE - 13))" "$SEG" >"$SEG.torn" && mv "$SEG.torn" "$SEG"
cargo run -q --release --bin rvmon -- recover "$RVJ_DIR" >/dev/null
cargo run -q --release --bin rvmon -- replay "$RVJ_DIR" >/dev/null
rm -rf "$RVJ_DIR"
cargo test -q --release --test recovery_corrupt >/dev/null
cargo run -q --release -p rv-bench --bin recovery -- --scale 0.02 >/dev/null

# Sharded smoke: the parallel engine must agree with the sequential
# engine and the Figure 5 oracle under fault injection, and a sharded
# journaled run must survive the same kill + recover + replay cycle
# (recovery is a full sequential replay — sharded journals carry no
# checkpoints). Finishes with the scaling bench emitting its JSON.
echo "== sharded smoke (chaos + journaled run + recover, release)"
cargo run -q --release --bin rvmon -- chaos specs/unsafe_iter.rv \
    --seed 7 --events 128 --shards 4 >/dev/null
RVS_DIR="${TMPDIR:-/tmp}/rv-ci-shards-$$"
rm -rf "$RVS_DIR"
cargo run -q --release --bin rvmon -- run specs/unsafe_iter.rv \
    examples/unsafe_iter.events --journal "$RVS_DIR" --shards 4 >/dev/null
SEG="$RVS_DIR/journal-00000000"
SIZE=$(wc -c <"$SEG")
head -c "$((SIZE - 9))" "$SEG" >"$SEG.torn" && mv "$SEG.torn" "$SEG"
cargo run -q --release --bin rvmon -- recover "$RVS_DIR" >/dev/null
cargo run -q --release --bin rvmon -- replay "$RVS_DIR" >/dev/null
rm -rf "$RVS_DIR"
PAR_JSON="${TMPDIR:-/tmp}/rv-ci-parallel-$$.json"
cargo run -q --release -p rv-bench --bin parallel -- --scale 0.02 \
    --stats-json "$PAR_JSON" >/dev/null
test -s "$PAR_JSON"
rm -f "$PAR_JSON"

# Profiling smoke: the provenance ledger must re-derive the engine's
# E/M/FM/CM exactly (`explain` exits 1 on any accounting mismatch), the
# phase-profiler bench report must emit per-phase histograms, and the
# Prometheus endpoint must answer a raw-TCP scrape (the curl-less
# `cli_serve` integration test).
echo "== profiling smoke (explain identity + profile JSON + serve, release)"
cargo run -q --release --bin rvmon -- explain specs/unsafe_iter.rv \
    examples/unsafe_iter.events --summary >/dev/null
PROF_JSON="${TMPDIR:-/tmp}/rv-ci-profile-$$.json"
cargo run -q --release -p rv-bench --bin fig10 -- --scale 0.02 \
    --profile-json "$PROF_JSON" >/dev/null
grep -q '"enabled_overhead_pct"' "$PROF_JSON"
grep -q '"index_lookup"' "$PROF_JSON"
rm -f "$PROF_JSON"
cargo test -q --release --test cli_serve >/dev/null

# Observability smoke: a journaled run must leave AUX_GC_CYCLE records
# that `gc-log` can render (with its MMU curve), the Chrome-trace
# exporter must emit JSON a real parser accepts, and a live scrape of
# the exposition must pass the lints Prometheus scrapers depend on —
# no duplicate series, counters suffixed `_total`. python3 does the
# strict JSON parse and the scrape where available; the cli_timeline /
# cli_serve integration tests cover the same ground hermetically.
echo "== observability smoke (gc-log + timeline + exposition lint, release)"
RVG_DIR="${TMPDIR:-/tmp}/rv-ci-gclog-$$"
rm -rf "$RVG_DIR"
cargo run -q --release --bin rvmon -- run specs/unsafe_iter.rv \
    examples/unsafe_iter.events --journal "$RVG_DIR" >/dev/null
GC_LOG="${TMPDIR:-/tmp}/rv-ci-gclog-$$.txt"
cargo run -q --release --bin rvmon -- gc-log "$RVG_DIR" >"$GC_LOG"
grep -q 'GC cycle' "$GC_LOG"
grep -q 'mmu (span' "$GC_LOG"
rm -rf "$RVG_DIR" "$GC_LOG"
TRACE_JSON="${TMPDIR:-/tmp}/rv-ci-trace-$$.json"
cargo run -q --release --bin rvmon -- timeline specs/unsafe_iter.rv \
    examples/unsafe_iter.events --out "$TRACE_JSON" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["traceEvents"], "empty traceEvents"
assert any(e.get("ph") == "X" for e in doc["traceEvents"]), "no GC cycles"
' "$TRACE_JSON"
else
    grep -q '"traceEvents"' "$TRACE_JSON"
    grep -q '"ph":"X"' "$TRACE_JSON"
fi
rm -f "$TRACE_JSON"
if command -v python3 >/dev/null 2>&1; then
    SRV_OUT="${TMPDIR:-/tmp}/rv-ci-serve-$$.txt"
    EXPO="${TMPDIR:-/tmp}/rv-ci-expo-$$.txt"
    cargo run -q --release --bin rvmon -- serve specs/unsafe_iter.rv \
        examples/unsafe_iter.events --port 0 --once >"$SRV_OUT" &
    SRV_PID=$!
    for _ in $(seq 1 100); do
        grep -q 'http://' "$SRV_OUT" 2>/dev/null && break
        sleep 0.1
    done
    URL=$(sed -n 's/.*\(http:\/\/[^ ]*\).*/\1/p' "$SRV_OUT" | head -1)
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1], timeout=10).read())
' "$URL" "$EXPO"
    wait "$SRV_PID"
    awk '/^#/ || /^$/ { next }
         seen[$1]++ { print "duplicate series: " $1; exit 1 }' "$EXPO"
    awk '$2 == "TYPE" && $4 == "counter" && $3 !~ /_total$/ {
             print "counter without _total suffix: " $3; exit 1
         }' "$EXPO"
    grep -q 'rvmon_events_total' "$EXPO"
    rm -f "$SRV_OUT" "$EXPO"
fi
cargo test -q --release --test cli_timeline >/dev/null

# Daemon smoke: start rvmond, drive two tenants over the real socket —
# one with a trigger handler that panics on every report — and assert
# the healthy tenant is unaffected (fault containment), then
# SIGTERM-drain, restart over the same root, and verify every tenant
# recovered with its exact counters (exactly-once delivery: a drain
# checkpoints at the journal tail, so restart replays nothing). The
# cli_rvmond / service_isolation integration tests cover the same
# ground hermetically, SIGKILL path included.
echo "== daemon smoke (rvmond + loadgen + drain + restart, release)"
if command -v python3 >/dev/null 2>&1; then
    RVD_DIR="${TMPDIR:-/tmp}/rv-ci-rvmond-$$"
    RVD_OUT="${TMPDIR:-/tmp}/rv-ci-rvmond-$$.out"
    HEALTH="${TMPDIR:-/tmp}/rv-ci-rvmond-$$.health"
    rm -rf "$RVD_DIR"
    cargo run -q --release --bin rvmond -- --root "$RVD_DIR" \
        --port 0 --http-port 0 >"$RVD_OUT" 2>/dev/null &
    RVD_PID=$!
    for _ in $(seq 1 100); do
        grep -q 'http://' "$RVD_OUT" 2>/dev/null && break
        sleep 0.1
    done
    INGEST=$(sed -n 's/.*ingest on \([^ ]*\).*/\1/p' "$RVD_OUT" | head -1)
    HEALTH_URL=$(sed -n 's#.*\(http://[^ ]*\)#\1#p' "$RVD_OUT" | head -1)
    cargo run -q --release -p rv-bench --bin loadgen -- --addr "$INGEST" \
        --tenant good=fop --tenant bad=batik,panic --events 2000 >/dev/null
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1], timeout=10).read())
' "$HEALTH_URL" "$HEALTH"
    grep -q '^ok$' "$HEALTH"
    grep -q '^tenants 2$' "$HEALTH"
    grep -q 'tenant bad state=running' "$HEALTH"
    grep 'tenant bad ' "$HEALTH" | grep -vq 'quarantined=0 ' \
        || { echo "panicking tenant never quarantined a monitor"; exit 1; }
    grep 'tenant good ' "$HEALTH" | grep -q 'state=running .*quarantined=0 budget_trips=0' \
        || { echo "faulty neighbor perturbed the healthy tenant"; exit 1; }
    # The drain about to happen writes one more checkpoint per tenant,
    # so the restart comparison excludes the checkpoints counter.
    GOOD_LINE=$(grep 'tenant good ' "$HEALTH" | sed 's/ checkpoints=[0-9]*//')
    BAD_LINE=$(grep 'tenant bad ' "$HEALTH" | sed 's/ checkpoints=[0-9]*//')
    kill -TERM "$RVD_PID"
    wait "$RVD_PID" || { echo "rvmond SIGTERM drain exited nonzero"; exit 1; }
    # Restart over the same root: both tenants must come back verbatim.
    cargo run -q --release --bin rvmond -- --root "$RVD_DIR" \
        --port 0 --http-port 0 >"$RVD_OUT" 2>/dev/null &
    RVD_PID=$!
    for _ in $(seq 1 100); do
        grep -q 'http://' "$RVD_OUT" 2>/dev/null && break
        sleep 0.1
    done
    HEALTH_URL=$(sed -n 's#.*\(http://[^ ]*\)#\1#p' "$RVD_OUT" | head -1)
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1], timeout=10).read())
' "$HEALTH_URL" "$HEALTH"
    grep -q '^tenants 2$' "$HEALTH"
    test "$(grep 'tenant good ' "$HEALTH" | sed 's/ checkpoints=[0-9]*//')" = "$GOOD_LINE" \
        || { echo "tenant good counters drifted across restart"; exit 1; }
    test "$(grep 'tenant bad ' "$HEALTH" | sed 's/ checkpoints=[0-9]*//')" = "$BAD_LINE" \
        || { echo "tenant bad counters drifted across restart"; exit 1; }
    kill -TERM "$RVD_PID"
    wait "$RVD_PID"
    rm -rf "$RVD_DIR" "$RVD_OUT" "$HEALTH"
fi
cargo test -q --release --test cli_rvmond --test service_isolation >/dev/null

# Self-healing smoke: the same seeded loadgen workload runs twice — once
# straight into a supervised rvmond, once through `rvmon netchaos`
# injecting seeded drops/dups/corruption — and both runs carry a
# worker-fatal fault the supervisor must absorb. The client-observed
# trigger hashes must be identical (exactly-once through chaos), the
# daemons must report the supervised restart, and a SIGHUP spec reload
# fired mid-run on the chaos side must land as spec v2 while dropping
# zero acked events (event/trigger counters stay equal to the clean
# run). The netchaos_differential / self_healing integration tests
# cover the same ground hermetically.
echo "== self-healing smoke (netchaos + supervised restart + SIGHUP reload, release)"
NCH_CLEAN="${TMPDIR:-/tmp}/rv-ci-nch-clean-$$"
NCH_CHAOS="${TMPDIR:-/tmp}/rv-ci-nch-chaos-$$"
NCH_SPECS="${TMPDIR:-/tmp}/rv-ci-nch-specs-$$"
NCH_OUT1="${TMPDIR:-/tmp}/rv-ci-nch-$$.d1"
NCH_OUT2="${TMPDIR:-/tmp}/rv-ci-nch-$$.d2"
NCH_PROXY="${TMPDIR:-/tmp}/rv-ci-nch-$$.proxy"
NCH_FIFO="${TMPDIR:-/tmp}/rv-ci-nch-$$.fifo"
NCH_J1="${TMPDIR:-/tmp}/rv-ci-nch-$$.clean.json"
NCH_J2="${TMPDIR:-/tmp}/rv-ci-nch-$$.chaos.json"
NCH_H1="${TMPDIR:-/tmp}/rv-ci-nch-$$.h1"
NCH_H2="${TMPDIR:-/tmp}/rv-ci-nch-$$.h2"
rm -rf "$NCH_CLEAN" "$NCH_CHAOS" "$NCH_SPECS"
mkdir -p "$NCH_SPECS"
# The reload payload: byte-identical automaton, so the SIGHUP cutover
# exercises the full drain/checkpoint/swap path without perturbing the
# differential. Its content token differs from the boot token (0), so
# the reload is applied, not deduplicated.
printf '%s\n' \
    'UnsafeIter(Collection c, Iterator i) {' \
    '    event create(c, i);' \
    '    event update(c);' \
    '    event next(i);' \
    '    ere: update* create next* update+ next' \
    '    @match { report "improper Concurrent Modification found!"; }' \
    '}' >"$NCH_SPECS/t.spec"
cp "$NCH_SPECS/t.spec" "$NCH_SPECS/u.spec"
# The daemons run as the direct binaries (built above) so SIGHUP and
# SIGTERM reach rvmond itself, not a cargo wrapper.
./target/release/rvmond --root "$NCH_CLEAN" --port 0 --http-port 0 \
    --restart-budget 5 --restart-backoff-ms 20 --spec-dir "$NCH_SPECS" \
    >"$NCH_OUT1" 2>/dev/null &
CLEAN_PID=$!
./target/release/rvmond --root "$NCH_CHAOS" --port 0 --http-port 0 \
    --restart-budget 5 --restart-backoff-ms 20 --spec-dir "$NCH_SPECS" \
    >"$NCH_OUT2" 2>/dev/null &
CHAOS_PID=$!
for OUT in "$NCH_OUT1" "$NCH_OUT2"; do
    for _ in $(seq 1 100); do
        grep -q 'http://' "$OUT" 2>/dev/null && break
        sleep 0.1
    done
done
CLEAN_INGEST=$(sed -n 's/.*ingest on \([^ ]*\).*/\1/p' "$NCH_OUT1" | head -1)
CHAOS_INGEST=$(sed -n 's/.*ingest on \([^ ]*\).*/\1/p' "$NCH_OUT2" | head -1)
CLEAN_HTTP=$(sed -n 's#.*\(http://[^ ]*\)/healthz.*#\1#p' "$NCH_OUT1" | head -1)
CHAOS_HTTP=$(sed -n 's#.*\(http://[^ ]*\)/healthz.*#\1#p' "$NCH_OUT2" | head -1)
# The chaos proxy reads stdin to stay alive: feed it a fifo and close
# the write end to shut it down (it prints its fault stats on exit).
mkfifo "$NCH_FIFO"
./target/release/rvmon netchaos --upstream "$CHAOS_INGEST" \
    --profile 'drop=10,dup=5,corrupt=5,delay=10,delay_ms=2,seed=42' \
    <"$NCH_FIFO" >"$NCH_PROXY" &
NCH_PID=$!
exec 9>"$NCH_FIFO"
for _ in $(seq 1 100); do
    grep -q 'listening on' "$NCH_PROXY" 2>/dev/null && break
    sleep 0.1
done
PROXY_ADDR=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$NCH_PROXY" | head -1)
# Phase A — differential with a supervised restart: the identical
# seeded workload (mid-run `!fatal` included) direct vs through the
# proxy must yield byte-identical client-observed trigger streams.
# No reload in this phase: an AUX_RELOAD shifts journal seqs, so the
# hot-reload invariant is phase B's count-based check instead.
cargo run -q --release -p rv-bench --bin loadgen -- --addr "$CLEAN_INGEST" \
    --tenant t=fop --events 2400 --fatal-at 700 --json >"$NCH_J1"
cargo run -q --release -p rv-bench --bin loadgen -- --addr "$PROXY_ADDR" \
    --tenant t=fop --events 2400 --fatal-at 700 --json >"$NCH_J2"
CLEAN_HASH=$(sed -n 's/.*"trigger_hash":"\([0-9a-f]*\)".*/\1/p' "$NCH_J1" | head -1)
CHAOS_HASH=$(sed -n 's/.*"trigger_hash":"\([0-9a-f]*\)".*/\1/p' "$NCH_J2" | head -1)
test -n "$CLEAN_HASH" || { echo "no trigger hash in clean loadgen JSON"; exit 1; }
test "$CLEAN_HASH" = "$CHAOS_HASH" \
    || { echo "trigger streams diverged under chaos: $CLEAN_HASH vs $CHAOS_HASH"; exit 1; }
grep -q '"reconnects":0[,}]' "$NCH_J2" \
    && { echo "chaos run never reconnected — proxy was not in the path"; exit 1; }
# Phase B — SIGHUP hot reload mid-run on the chaos side (fresh tenant,
# so session dedup marks start clean). The reload resets monitor state
# by design, so the invariant is on the events counter: the chaos side
# must process exactly the clean side's line count — zero acked events
# dropped across faults plus the cutover — and land on spec v2.
cargo run -q --release -p rv-bench --bin loadgen -- --addr "$CLEAN_INGEST" \
    --tenant u=fop --events 1600 --json >/dev/null
cargo run -q --release -p rv-bench --bin loadgen -- --addr "$PROXY_ADDR" \
    --tenant u=fop --events 1600 --json >/dev/null &
LG_PID=$!
sleep 1
kill -HUP "$CHAOS_PID"
wait "$LG_PID" || { echo "chaos-side loadgen failed across the reload"; exit 1; }
exec 9>&-
wait "$NCH_PID" || true
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1] + "/healthz", timeout=10).read())
' "$CLEAN_HTTP" "$NCH_H1"
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1] + "/healthz", timeout=10).read())
' "$CHAOS_HTTP" "$NCH_H2"
    grep 'tenant t ' "$NCH_H2" | grep -q 'state=running' \
        || { echo "chaos tenant did not heal"; cat "$NCH_H2"; exit 1; }
    grep 'tenant t ' "$NCH_H2" | grep -q 'restarts=[1-9]' \
        || { echo "supervised restart not recorded"; cat "$NCH_H2"; exit 1; }
    grep 'tenant u ' "$NCH_H2" | grep -q 'spec_version=2' \
        || { echo "SIGHUP reload did not land as spec v2"; cat "$NCH_H2"; exit 1; }
    # Zero events dropped: per tenant, the chaos side processed exactly
    # the clean side's line total despite faults (and, for `u`, the
    # mid-run reload). Phase A's tenant also keeps trigger parity.
    for T in t u; do
        CLEAN_EV=$(grep "tenant $T " "$NCH_H1" | sed -n 's/.* events=\([0-9]*\).*/\1/p')
        CHAOS_EV=$(grep "tenant $T " "$NCH_H2" | sed -n 's/.* events=\([0-9]*\).*/\1/p')
        test -n "$CLEAN_EV" && test "$CLEAN_EV" = "$CHAOS_EV" \
            || { echo "tenant $T event counts diverged: $CLEAN_EV vs $CHAOS_EV"; exit 1; }
    done
    CLEAN_TR=$(grep 'tenant t ' "$NCH_H1" | sed -n 's/.* triggers=\([0-9]*\).*/\1/p')
    CHAOS_TR=$(grep 'tenant t ' "$NCH_H2" | sed -n 's/.* triggers=\([0-9]*\).*/\1/p')
    test "$CLEAN_TR" = "$CHAOS_TR" \
        || { echo "trigger counts diverged: $CLEAN_TR vs $CHAOS_TR"; exit 1; }
fi
kill -TERM "$CLEAN_PID" "$CHAOS_PID"
wait "$CLEAN_PID" || { echo "clean rvmond drain exited nonzero"; exit 1; }
wait "$CHAOS_PID" || { echo "chaos rvmond drain exited nonzero"; exit 1; }
rm -rf "$NCH_CLEAN" "$NCH_CHAOS" "$NCH_SPECS" "$NCH_OUT1" "$NCH_OUT2" \
    "$NCH_PROXY" "$NCH_FIFO" "$NCH_J1" "$NCH_J2" "$NCH_H1" "$NCH_H2"
cargo test -q --release --test netchaos_differential --test self_healing \
    --test wire_reject_matrix >/dev/null

# Tracing smoke: rvmond runs with SLO objectives under loadgen traffic
# that injects a mid-run worker fatal. The scrape must expose the
# rvmond_slo_* / rvmond_stage_* / rvmond_build_info series, the worker
# failure must leave a flight-recorder dump that `rvmon flight` renders
# with the per-stage breakdown, and `rvmon timeline --daemon` must turn
# the same dump into Chrome-trace JSON a real parser accepts. The
# observability integration test covers the same ground hermetically.
echo "== tracing smoke (slo scrape + flight dump + daemon timeline, release)"
if command -v python3 >/dev/null 2>&1; then
    TRC_DIR="${TMPDIR:-/tmp}/rv-ci-trace-$$"
    TRC_OUT="${TMPDIR:-/tmp}/rv-ci-trace-$$.out"
    TRC_EXPO="${TMPDIR:-/tmp}/rv-ci-trace-$$.expo"
    TRC_HEALTH="${TMPDIR:-/tmp}/rv-ci-trace-$$.health"
    TRC_CHROME="${TMPDIR:-/tmp}/rv-ci-trace-$$.chrome.json"
    TRC_JSON="${TMPDIR:-/tmp}/rv-ci-trace-$$.loadgen.json"
    TRC_FLIGHT="${TMPDIR:-/tmp}/rv-ci-trace-$$.flight.txt"
    rm -rf "$TRC_DIR"
    ./target/release/rvmond --root "$TRC_DIR" --port 0 --http-port 0 \
        --restart-budget 5 --restart-backoff-ms 20 \
        --slo 'latency_target_us=500000,latency_goal=0.9,availability=0.99,window=256' \
        >"$TRC_OUT" 2>/dev/null &
    TRC_PID=$!
    for _ in $(seq 1 100); do
        grep -q 'http://' "$TRC_OUT" 2>/dev/null && break
        sleep 0.1
    done
    TRC_INGEST=$(sed -n 's/.*ingest on \([^ ]*\).*/\1/p' "$TRC_OUT" | head -1)
    TRC_HTTP=$(sed -n 's#.*\(http://[^ ]*\)/healthz.*#\1#p' "$TRC_OUT" | head -1)
    cargo run -q --release -p rv-bench --bin loadgen -- --addr "$TRC_INGEST" \
        --tenant t=fop --events 1500 --fatal-at 500 --json >"$TRC_JSON"
    grep -q '"stages":{' "$TRC_JSON" \
        || { echo "loadgen --json carries no server stage stats"; exit 1; }
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1] + "/metrics", timeout=10).read())
' "$TRC_HTTP" "$TRC_EXPO"
    grep -q '^rvmond_build_info{' "$TRC_EXPO"
    grep -q '^rvmond_slo_error_budget_remaining{tenant="t",objective="latency"}' "$TRC_EXPO"
    grep -q '^rvmond_slo_burn_rate{tenant="t",objective="availability"}' "$TRC_EXPO"
    grep -q '^rvmond_stage_latency_us{tenant="t",stage="engine",quantile="0.99"}' "$TRC_EXPO"
    awk '/^#/ || /^$/ { next }
         seen[$1]++ { print "duplicate series: " $1; exit 1 }' "$TRC_EXPO"
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(urllib.request.urlopen(sys.argv[1] + "/healthz", timeout=10).read())
' "$TRC_HTTP" "$TRC_HEALTH"
    grep -q '^slo t ' "$TRC_HEALTH" \
        || { echo "/healthz carries no slo line"; cat "$TRC_HEALTH"; exit 1; }
    # The --fatal-at worker panic must have left a black-box dump; a
    # SIGQUIT adds the whole-service one next to it.
    TRC_DUMP=$(ls "$TRC_DIR"/flight-t-worker-fatal-*.rvfr 2>/dev/null | head -1)
    test -n "$TRC_DUMP" || { echo "worker fatal left no flight dump"; exit 1; }
    kill -QUIT "$TRC_PID"
    for _ in $(seq 1 100); do
        ls "$TRC_DIR"/flight-sigquit-*.rvfr >/dev/null 2>&1 && break
        sleep 0.1
    done
    ls "$TRC_DIR"/flight-sigquit-*.rvfr >/dev/null 2>&1 \
        || { echo "SIGQUIT produced no flight dump"; exit 1; }
    ./target/release/rvmon flight "$TRC_DUMP" >"$TRC_FLIGHT"
    grep -q 'wire_read=' "$TRC_FLIGHT" \
        || { echo "rvmon flight lost the stage breakdown"; exit 1; }
    ./target/release/rvmon timeline --daemon "$TRC_DUMP" --out "$TRC_CHROME" >/dev/null
    python3 -c 'import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["traceEvents"], "empty traceEvents"
assert any(e.get("ph") == "X" for e in doc["traceEvents"]), "no stage spans"
' "$TRC_CHROME"
    kill -TERM "$TRC_PID"
    wait "$TRC_PID" || { echo "rvmond drain exited nonzero"; exit 1; }
    rm -rf "$TRC_DIR" "$TRC_OUT" "$TRC_EXPO" "$TRC_HEALTH" "$TRC_CHROME" \
        "$TRC_JSON" "$TRC_FLIGHT"
fi
cargo test -q --release --test observability >/dev/null

echo "CI OK"
