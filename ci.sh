#!/usr/bin/env sh
# Local CI: exactly what .github/workflows/ci.yml runs.
#
# The workspace is offline-first — default features pull in no external
# crates, so every step below works without network access. Benches and
# property tests that need `rand`/`proptest`/`criterion` are gated behind
# the `external-deps` feature and are not part of tier-1.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "CI OK"
