//! Robustness of the spec-language front end: the lexer, parser, and
//! compiler must never panic — every input either compiles or produces a
//! spanned diagnostic — and diagnostics must point inside the source.

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_spec::{parse, CompiledSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: never panic, always a value or a diagnostic.
    #[test]
    fn never_panics_on_arbitrary_input(input in ".{0,200}") {
        match CompiledSpec::from_source(&input) {
            Ok(_) => {}
            Err(diag) => {
                prop_assert!(diag.span.start <= input.len() + 1);
                prop_assert!(!diag.message.is_empty());
                // Rendering against the source must not panic either.
                let _ = diag.render(&input);
            }
        }
    }

    /// Structured-ish inputs built from the language's own tokens: a much
    /// denser source of near-miss programs than uniform bytes.
    #[test]
    fn never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("event"), Just("fsm"), Just("ere"), Just("ltl"), Just("cfg"),
                Just("report"), Just("epsilon"), Just("P"), Just("C"), Just("c"),
                Just("a"), Just("b"), Just("("), Just(")"), Just("{"), Just("}"),
                Just("["), Just("]"), Just(","), Just(";"), Just(":"), Just("@"),
                Just("->"), Just("=>"), Just("|"), Just("||"), Just("&"), Just("&&"),
                Just("*"), Just("+"), Just("~"), Just("!"), Just("[]"), Just("<>"),
                Just("(*)"), Just("<*>"), Just("[*]"), Just("U"), Just("S"),
                Just("R"), Just("X"), Just("\"msg\""),
            ],
            0..60,
        )
    ) {
        let input = tokens.join(" ");
        match CompiledSpec::from_source(&input) {
            Ok(_) => {}
            Err(diag) => {
                let _ = diag.render(&input);
            }
        }
    }

    /// Valid skeleton with a fuzzed ERE body: the parser must accept or
    /// reject without panicking, and accepted specs must re-parse after
    /// printing.
    #[test]
    fn fuzzed_ere_bodies_round_trip_when_valid(
        body in proptest::collection::vec(
            prop_oneof![
                Just("a"), Just("b"), Just("epsilon"), Just("("), Just(")"),
                Just("|"), Just("&"), Just("*"), Just("+"), Just("~"),
            ],
            1..20,
        )
    ) {
        let src = format!(
            "P(C c) {{ event a(c); event b(c); ere: {} @match {{ }} }}",
            body.join(" ")
        );
        if let Ok(ast) = parse(&src) {
            let printed = rv_spec::print(&ast);
            let reparsed = parse(&printed);
            prop_assert!(
                reparsed.is_ok(),
                "printed form failed to re-parse:\n{printed}\n{:?}",
                reparsed.err()
            );
        }
    }
}
