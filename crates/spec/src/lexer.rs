//! Hand-written lexer for the RV spec language.
//!
//! The token set covers all four property-block syntaxes (paper Figures
//! 2–4): identifiers, string literals, structural punctuation, the ERE
//! operators (`| & * + ~`), the FSM arrow (`->`), the CFG arrow and
//! alternation, and the LTL operators (`[] <> (*) <*> [*] U S R X ! && ||
//! =>`). Line comments start with `//`.

use std::fmt;

use crate::span::{Diagnostic, Span};

/// One lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are contextual).
    Ident(String),
    /// A double-quoted string literal (contents, unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `@`
    At,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `[]` (LTL always / empty FSM state body)
    Box_,
    /// `<>` (LTL eventually)
    Diamond,
    /// `(*)` (LTL previously)
    PrevOp,
    /// `<*>` (LTL once)
    OnceOp,
    /// `[*]` (LTL historically)
    HistOp,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::At => write!(f, "`@`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::FatArrow => write!(f, "`=>`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::PipePipe => write!(f, "`||`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::AmpAmp => write!(f, "`&&`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Box_ => write!(f, "`[]`"),
            TokenKind::Diamond => write!(f, "`<>`"),
            TokenKind::PrevOp => write!(f, "`(*)`"),
            TokenKind::OnceOp => write!(f, "`<*>`"),
            TokenKind::HistOp => write!(f, "`[*]`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

/// Lexes `source` into tokens (ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unterminated strings or characters outside
/// the language.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(Diagnostic::new(
                                Span::new(start, i),
                                "unterminated string literal",
                            ));
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), span: Span::new(start, i) });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let ident = source[start..i].to_owned();
                tokens.push(Token { kind: TokenKind::Ident(ident), span: Span::new(start, i) });
            }
            _ => {
                // Multi-character operators first, longest match.
                let three = source.get(i..i + 3);
                let two = source.get(i..i + 2);
                let (kind, len) = match (three, two, c) {
                    (Some("(*)"), _, _) => (TokenKind::PrevOp, 3),
                    (Some("<*>"), _, _) => (TokenKind::OnceOp, 3),
                    (Some("[*]"), _, _) => (TokenKind::HistOp, 3),
                    (_, Some("->"), _) => (TokenKind::Arrow, 2),
                    (_, Some("=>"), _) => (TokenKind::FatArrow, 2),
                    (_, Some("||"), _) => (TokenKind::PipePipe, 2),
                    (_, Some("&&"), _) => (TokenKind::AmpAmp, 2),
                    (_, Some("[]"), _) => (TokenKind::Box_, 2),
                    (_, Some("<>"), _) => (TokenKind::Diamond, 2),
                    (_, _, '(') => (TokenKind::LParen, 1),
                    (_, _, ')') => (TokenKind::RParen, 1),
                    (_, _, '{') => (TokenKind::LBrace, 1),
                    (_, _, '}') => (TokenKind::RBrace, 1),
                    (_, _, '[') => (TokenKind::LBracket, 1),
                    (_, _, ']') => (TokenKind::RBracket, 1),
                    (_, _, ',') => (TokenKind::Comma, 1),
                    (_, _, ';') => (TokenKind::Semi, 1),
                    (_, _, ':') => (TokenKind::Colon, 1),
                    (_, _, '@') => (TokenKind::At, 1),
                    (_, _, '|') => (TokenKind::Pipe, 1),
                    (_, _, '&') => (TokenKind::Amp, 1),
                    (_, _, '*') => (TokenKind::Star, 1),
                    (_, _, '+') => (TokenKind::Plus, 1),
                    (_, _, '~') => (TokenKind::Tilde, 1),
                    (_, _, '!') => (TokenKind::Bang, 1),
                    _ => {
                        return Err(Diagnostic::new(
                            Span::new(start, start + 1),
                            format!("unexpected character `{c}`"),
                        ));
                    }
                };
                tokens.push(Token { kind, span: Span::new(start, start + len) });
                i += len;
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, span: Span::new(i, i) });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_event_declaration() {
        let ks = kinds("event next(i);");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("event".into()),
                TokenKind::Ident("next".into()),
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_ltl_operators() {
        let ks = kinds("[] (next => (*) hasnexttrue) <> <*> [*] U S R ! && ||");
        assert!(ks.contains(&TokenKind::Box_));
        assert!(ks.contains(&TokenKind::PrevOp));
        assert!(ks.contains(&TokenKind::Diamond));
        assert!(ks.contains(&TokenKind::OnceOp));
        assert!(ks.contains(&TokenKind::HistOp));
        assert!(ks.contains(&TokenKind::FatArrow));
        assert!(ks.contains(&TokenKind::AmpAmp));
        assert!(ks.contains(&TokenKind::PipePipe));
    }

    #[test]
    fn lexes_ere_pattern() {
        let ks = kinds("update* create next* update+ next");
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Star).count(), 2);
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Plus).count(), 1);
    }

    #[test]
    fn empty_brackets_lex_as_box() {
        // `error []` — the parser accepts Box_ as an empty FSM state body.
        let ks = kinds("error []");
        assert_eq!(ks[1], TokenKind::Box_);
        // With a space they are two brackets.
        let ks = kinds("error [ ]");
        assert_eq!(ks[1], TokenKind::LBracket);
        assert_eq!(ks[2], TokenKind::RBracket);
    }

    #[test]
    fn comments_and_strings() {
        let ks = kinds("report \"improper use\"; // trailing comment\n@");
        assert_eq!(ks[1], TokenKind::Str("improper use".into()));
        assert_eq!(ks[3], TokenKind::At);
    }

    #[test]
    fn escaped_quote_in_string() {
        let ks = kinds(r#""a \" b""#);
        assert_eq!(ks[0], TokenKind::Str("a \" b".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = lex("event ???").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.span.start, 6);
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab ->").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
