//! Recursive-descent parser for the RV spec language.
//!
//! The grammar (see [`crate::ast`]):
//!
//! ```text
//! spec     := IDENT '(' param (',' param)* ')' '{' item* '}'
//! param    := IDENT IDENT                        // class, name
//! item     := 'event' IDENT '(' [idents] ')' ';'
//!           | ('fsm'|'ere'|'ltl'|'cfg') ':' body
//!           | '@' IDENT '{' ['report' STRING [';']] '}'
//! ```
//!
//! Handlers attach to the property block that precedes them. The keywords
//! `event`, `fsm`, `ere`, `ltl`, `cfg`, `report` and `epsilon` are
//! reserved: they cannot name events, parameters, or states (this is what
//! lets the ERE/CFG bodies, which are juxtaposition-based, know where they
//! end).

use crate::ast::{
    EreAst, EventDecl, FormalismKind, FsmStateAst, HandlerDecl, LtlAst, ParamDecl, PropertyBlock,
    PropertyBody, RuleAst, SpecAst,
};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::{Diagnostic, Span};

const RESERVED: &[&str] = &["event", "fsm", "ere", "ltl", "cfg", "report", "epsilon"];

/// Parses a complete spec source into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic [`Diagnostic`].
pub fn parse(source: &str) -> Result<SpecAst, Diagnostic> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.spec()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, Diagnostic> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(self.span(), format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let span = self.span();
                self.bump();
                Ok((s, span))
            }
            other => Err(Diagnostic::new(self.span(), format!("expected {what}, found {other}"))),
        }
    }

    fn user_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        let (s, span) = self.ident(what)?;
        if RESERVED.contains(&s.as_str()) {
            return Err(Diagnostic::new(span, format!("`{s}` is a reserved word")));
        }
        Ok((s, span))
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == name)
    }

    /// Whether the cursor sits at the start of the next item (ends
    /// juxtaposition-based bodies).
    fn at_item_boundary(&self) -> bool {
        match self.peek() {
            TokenKind::RBrace | TokenKind::At | TokenKind::Eof => true,
            TokenKind::Ident(s) => {
                s == "event"
                    || ((s == "fsm" || s == "ere" || s == "ltl" || s == "cfg")
                        && *self.peek2() == TokenKind::Colon)
            }
            _ => false,
        }
    }

    fn spec(&mut self) -> Result<SpecAst, Diagnostic> {
        let (name, name_span) = self.user_ident("spec name")?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let (class, cspan) = self.user_ident("parameter class")?;
                let (pname, pspan) = self.user_ident("parameter name")?;
                params.push(ParamDecl { class, name: pname, span: cspan.merge(pspan) });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let mut events = Vec::new();
        let mut blocks: Vec<PropertyBlock> = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => {
                    return Err(Diagnostic::new(self.span(), "unexpected end of input"));
                }
                TokenKind::Ident(s) if s == "event" => {
                    events.push(self.event_decl()?);
                }
                TokenKind::Ident(s)
                    if matches!(s.as_str(), "fsm" | "ere" | "ltl" | "cfg")
                        && *self.peek2() == TokenKind::Colon =>
                {
                    blocks.push(self.property_block()?);
                }
                TokenKind::At => {
                    let handler = self.handler()?;
                    match blocks.last_mut() {
                        Some(block) => block.handlers.push(handler),
                        None => {
                            return Err(Diagnostic::new(
                                handler.span,
                                "handler appears before any property block",
                            ));
                        }
                    }
                }
                other => {
                    return Err(Diagnostic::new(
                        self.span(),
                        format!("expected `event`, a property block, or a handler, found {other}"),
                    ));
                }
            }
        }
        self.expect(&TokenKind::Eof)?;
        Ok(SpecAst { name, name_span, params, events, blocks })
    }

    fn event_decl(&mut self) -> Result<EventDecl, Diagnostic> {
        let kw = self.bump(); // `event`
        let (name, nspan) = self.user_ident("event name")?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let (p, _) = self.user_ident("parameter name")?;
                params.push(p);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(EventDecl { name, params, span: kw.span.merge(nspan).merge(end.span) })
    }

    fn property_block(&mut self) -> Result<PropertyBlock, Diagnostic> {
        let head = self.bump(); // formalism keyword
        let kind = match &head.kind {
            TokenKind::Ident(s) => match s.as_str() {
                "fsm" => FormalismKind::Fsm,
                "ere" => FormalismKind::Ere,
                "ltl" => FormalismKind::Ltl,
                "cfg" => FormalismKind::Cfg,
                _ => unreachable!("guarded by caller"),
            },
            _ => unreachable!("guarded by caller"),
        };
        self.expect(&TokenKind::Colon)?;
        let body = match kind {
            FormalismKind::Fsm => PropertyBody::Fsm(self.fsm_body()?),
            FormalismKind::Ere => PropertyBody::Ere(self.ere_expr()?),
            FormalismKind::Ltl => PropertyBody::Ltl(self.ltl_implies()?),
            FormalismKind::Cfg => PropertyBody::Cfg(self.cfg_body()?),
        };
        Ok(PropertyBlock { kind, body, handlers: Vec::new(), span: head.span })
    }

    fn handler(&mut self) -> Result<HandlerDecl, Diagnostic> {
        self.bump(); // `@`
        let (name, span) = self.user_ident("handler name")?;
        self.expect(&TokenKind::LBrace)?;
        let mut message = None;
        if self.at_ident("report") {
            self.bump();
            match self.peek().clone() {
                TokenKind::Str(s) => {
                    self.bump();
                    message = Some(s);
                }
                other => {
                    return Err(Diagnostic::new(
                        self.span(),
                        format!("expected string literal after `report`, found {other}"),
                    ));
                }
            }
            if *self.peek() == TokenKind::Semi {
                self.bump();
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(HandlerDecl { name, message, span })
    }

    // ----- fsm ------------------------------------------------------------

    fn fsm_body(&mut self) -> Result<Vec<FsmStateAst>, Diagnostic> {
        let mut states = Vec::new();
        while !self.at_item_boundary() {
            let (name, span) = self.user_ident("state name")?;
            let mut transitions = Vec::new();
            if *self.peek() == TokenKind::Box_ {
                self.bump(); // `[]` — empty body
            } else {
                self.expect(&TokenKind::LBracket)?;
                while *self.peek() != TokenKind::RBracket {
                    let (ev, _) = self.user_ident("event name")?;
                    self.expect(&TokenKind::Arrow)?;
                    let (target, _) = self.user_ident("target state")?;
                    transitions.push((ev, target));
                }
                self.bump(); // `]`
            }
            states.push(FsmStateAst { name, transitions, span });
        }
        if states.is_empty() {
            return Err(Diagnostic::new(self.span(), "fsm block has no states"));
        }
        Ok(states)
    }

    // ----- ere ------------------------------------------------------------

    fn ere_expr(&mut self) -> Result<EreAst, Diagnostic> {
        // union (lowest) → intersection → juxtaposition → postfix → primary
        let mut lhs = self.ere_inter()?;
        while *self.peek() == TokenKind::Pipe {
            self.bump();
            let rhs = self.ere_inter()?;
            lhs = EreAst::Union(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ere_inter(&mut self) -> Result<EreAst, Diagnostic> {
        let mut lhs = self.ere_seq()?;
        while *self.peek() == TokenKind::Amp {
            self.bump();
            let rhs = self.ere_seq()?;
            lhs = EreAst::Inter(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ere_seq(&mut self) -> Result<EreAst, Diagnostic> {
        let mut lhs = self.ere_postfix()?;
        loop {
            let more = match self.peek() {
                TokenKind::Ident(_) => !self.at_item_boundary(),
                TokenKind::LParen | TokenKind::Tilde => true,
                _ => false,
            };
            if !more {
                break;
            }
            let rhs = self.ere_postfix()?;
            lhs = EreAst::Concat(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ere_postfix(&mut self) -> Result<EreAst, Diagnostic> {
        let mut e = self.ere_primary()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    e = EreAst::Star(Box::new(e));
                }
                TokenKind::Plus => {
                    self.bump();
                    e = EreAst::Plus(Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn ere_primary(&mut self) -> Result<EreAst, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(s) if s == "epsilon" => {
                let span = self.span();
                self.bump();
                Ok(EreAst::Epsilon(span))
            }
            TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                let span = self.span();
                self.bump();
                Ok(EreAst::Event(s, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.ere_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.ere_postfix()?;
                Ok(EreAst::Not(Box::new(e)))
            }
            other => {
                Err(Diagnostic::new(self.span(), format!("expected ERE operand, found {other}")))
            }
        }
    }

    // ----- ltl ------------------------------------------------------------

    fn ltl_implies(&mut self) -> Result<LtlAst, Diagnostic> {
        let lhs = self.ltl_or()?;
        if *self.peek() == TokenKind::FatArrow {
            self.bump();
            let rhs = self.ltl_implies()?;
            Ok(LtlAst::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ltl_or(&mut self) -> Result<LtlAst, Diagnostic> {
        let mut lhs = self.ltl_and()?;
        while *self.peek() == TokenKind::PipePipe {
            self.bump();
            let rhs = self.ltl_and()?;
            lhs = LtlAst::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ltl_and(&mut self) -> Result<LtlAst, Diagnostic> {
        let mut lhs = self.ltl_temporal()?;
        while *self.peek() == TokenKind::AmpAmp {
            self.bump();
            let rhs = self.ltl_temporal()?;
            lhs = LtlAst::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Binary temporal operators `U`, `S`, `R` (right-associative).
    fn ltl_temporal(&mut self) -> Result<LtlAst, Diagnostic> {
        let lhs = self.ltl_unary()?;
        let op = match self.peek() {
            TokenKind::Ident(s) if s == "U" || s == "S" || s == "R" => s.clone(),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.ltl_temporal()?;
        Ok(match op.as_str() {
            "U" => LtlAst::Until(Box::new(lhs), Box::new(rhs)),
            "S" => LtlAst::Since(Box::new(lhs), Box::new(rhs)),
            _ => LtlAst::Release(Box::new(lhs), Box::new(rhs)),
        })
    }

    fn ltl_unary(&mut self) -> Result<LtlAst, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Bang => {
                self.bump();
                Ok(LtlAst::Not(Box::new(self.ltl_unary()?)))
            }
            TokenKind::Box_ => {
                self.bump();
                Ok(LtlAst::Always(Box::new(self.ltl_unary()?)))
            }
            TokenKind::Diamond => {
                self.bump();
                Ok(LtlAst::Eventually(Box::new(self.ltl_unary()?)))
            }
            TokenKind::PrevOp => {
                self.bump();
                Ok(LtlAst::Prev(Box::new(self.ltl_unary()?)))
            }
            TokenKind::OnceOp => {
                self.bump();
                Ok(LtlAst::Once(Box::new(self.ltl_unary()?)))
            }
            TokenKind::HistOp => {
                self.bump();
                Ok(LtlAst::Historically(Box::new(self.ltl_unary()?)))
            }
            TokenKind::Ident(s) if s == "X" => {
                self.bump();
                Ok(LtlAst::Next(Box::new(self.ltl_unary()?)))
            }
            _ => self.ltl_primary(),
        }
    }

    fn ltl_primary(&mut self) -> Result<LtlAst, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(s) if s == "true" => {
                let span = self.span();
                self.bump();
                Ok(LtlAst::True(span))
            }
            TokenKind::Ident(s) if s == "false" => {
                let span = self.span();
                self.bump();
                Ok(LtlAst::False(span))
            }
            TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                let span = self.span();
                self.bump();
                Ok(LtlAst::Event(s, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.ltl_implies()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                Err(Diagnostic::new(self.span(), format!("expected LTL operand, found {other}")))
            }
        }
    }

    // ----- cfg ------------------------------------------------------------

    fn cfg_body(&mut self) -> Result<Vec<RuleAst>, Diagnostic> {
        let mut rules: Vec<RuleAst> = Vec::new();
        while !self.at_item_boundary() {
            let (lhs, span) = self.user_ident("nonterminal")?;
            self.expect(&TokenKind::Arrow)?;
            let mut alts = Vec::new();
            loop {
                let mut symbols = Vec::new();
                loop {
                    match self.peek().clone() {
                        TokenKind::Ident(s) if s == "epsilon" => {
                            self.bump();
                        }
                        TokenKind::Ident(s)
                            if !RESERVED.contains(&s.as_str())
                                && !self.at_item_boundary()
                                && *self.peek2() != TokenKind::Arrow =>
                        {
                            self.bump();
                            symbols.push(s);
                        }
                        _ => break,
                    }
                }
                alts.push(symbols);
                if *self.peek() == TokenKind::Pipe {
                    self.bump();
                } else {
                    break;
                }
            }
            rules.push(RuleAst { lhs, alts, span });
        }
        if rules.is_empty() {
            return Err(Diagnostic::new(self.span(), "cfg block has no rules"));
        }
        Ok(rules)
    }
}

/// Figure 2, transliterated to this front-end (no AspectJ pointcuts:
/// events declare their parameters directly). Used by unit tests across
/// this crate.
#[cfg(test)]
pub(crate) const HASNEXT_SRC: &str = r#"
        HasNext(Iterator i) {
            event hasnexttrue(i);
            event hasnextfalse(i);
            event next(i);
            fsm:
                unknown [
                    hasnexttrue -> more
                    hasnextfalse -> none
                    next -> error
                ]
                more [
                    hasnexttrue -> more
                    next -> unknown
                ]
                none [
                    hasnextfalse -> none
                    next -> error
                ]
                error []
            @error { report "improper Iterator use found!"; }
            ltl: [](next => (*) hasnexttrue)
            @violation { report "improper Iterator use found!"; }
        }
    "#;

#[cfg(test)]
mod tests {
    use super::HASNEXT_SRC;
    use super::*;

    #[test]
    fn parses_figure_2() {
        let ast = parse(HASNEXT_SRC).unwrap();
        assert_eq!(ast.name, "HasNext");
        assert_eq!(ast.params.len(), 1);
        assert_eq!(ast.params[0].class, "Iterator");
        assert_eq!(ast.events.len(), 3);
        assert_eq!(ast.blocks.len(), 2);
        let fsm = &ast.blocks[0];
        assert_eq!(fsm.kind, FormalismKind::Fsm);
        match &fsm.body {
            PropertyBody::Fsm(states) => {
                assert_eq!(states.len(), 4);
                assert_eq!(states[0].name, "unknown");
                assert_eq!(states[0].transitions.len(), 3);
                assert_eq!(states[3].name, "error");
                assert!(states[3].transitions.is_empty());
            }
            other => panic!("expected fsm body, got {other:?}"),
        }
        assert_eq!(fsm.handlers.len(), 1);
        assert_eq!(fsm.handlers[0].name, "error");
        let ltl = &ast.blocks[1];
        assert_eq!(ltl.kind, FormalismKind::Ltl);
        match &ltl.body {
            PropertyBody::Ltl(LtlAst::Always(inner)) => match &**inner {
                LtlAst::Implies(lhs, rhs) => {
                    assert!(matches!(&**lhs, LtlAst::Event(n, _) if n == "next"));
                    assert!(matches!(&**rhs, LtlAst::Prev(_)));
                }
                other => panic!("expected implication, got {other:?}"),
            },
            other => panic!("expected [](…), got {other:?}"),
        }
        assert_eq!(ltl.handlers[0].name, "violation");
    }

    #[test]
    fn parses_figure_3_ere() {
        let src = r#"
            UnsafeIter(Collection c, Iterator i) {
                event create(c, i);
                event update(c);
                event next(i);
                ere: update* create next* update+ next
                @match { report "improper Concurrent Modification found!"; }
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.blocks.len(), 1);
        match &ast.blocks[0].body {
            PropertyBody::Ere(e) => {
                // Left-nested concat chain of 5 elements.
                let mut depth = 0;
                let mut cur = e;
                while let EreAst::Concat(l, _) = cur {
                    depth += 1;
                    cur = l;
                }
                assert_eq!(depth, 4);
            }
            other => panic!("expected ere body, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure_4_cfg() {
        let src = r#"
            SafeLock(Lock l, Thread t) {
                event acquire(l, t);
                event release(l, t);
                event begin(t);
                event end(t);
                cfg: S -> S begin S end | S acquire S release | epsilon
                @fail { report "improper Lock use found!"; }
            }
        "#;
        let ast = parse(src).unwrap();
        match &ast.blocks[0].body {
            PropertyBody::Cfg(rules) => {
                assert_eq!(rules.len(), 1);
                assert_eq!(rules[0].lhs, "S");
                assert_eq!(rules[0].alts.len(), 3);
                assert_eq!(rules[0].alts[0], vec!["S", "begin", "S", "end"]);
                assert!(rules[0].alts[2].is_empty(), "epsilon alternative");
            }
            other => panic!("expected cfg body, got {other:?}"),
        }
    }

    #[test]
    fn ere_operator_precedence() {
        let src = "P(C c) { event a(c); event b(c); event d(c); ere: a b | d* & ~a }";
        let ast = parse(src).unwrap();
        match &ast.blocks[0].body {
            // `|` is lowest: (a b) | ((d*) & (~a))
            PropertyBody::Ere(EreAst::Union(l, r)) => {
                assert!(matches!(&**l, EreAst::Concat(_, _)));
                assert!(matches!(&**r, EreAst::Inter(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ltl_operator_precedence() {
        let src = "P(C c) { event a(c); event b(c); ltl: a U b => [] a || b }";
        let ast = parse(src).unwrap();
        match &ast.blocks[0].body {
            // `=>` lowest: (a U b) => (([] a) || b)
            PropertyBody::Ltl(LtlAst::Implies(l, r)) => {
                assert!(matches!(&**l, LtlAst::Until(_, _)));
                assert!(matches!(&**r, LtlAst::Or(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn handler_before_block_is_an_error() {
        let err = parse("P(C c) { event a(c); @match {} }").unwrap_err();
        assert!(err.message.contains("before any property block"), "{}", err.message);
    }

    #[test]
    fn reserved_words_are_rejected_as_names() {
        let err = parse("P(C c) { event event(c); }").unwrap_err();
        assert!(err.message.contains("reserved"), "{}", err.message);
    }

    #[test]
    fn empty_fsm_block_is_an_error() {
        let err = parse("P(C c) { event a(c); fsm: }").unwrap_err();
        assert!(err.message.contains("no states"), "{}", err.message);
    }

    #[test]
    fn missing_semi_reports_span() {
        let err = parse("P(C c) { event a(c) }").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{}", err.message);
    }

    #[test]
    fn multiple_specs_of_events_share_params() {
        let ast = parse("P(C c, I i) { event a(c, i); event b(i); ere: a b }").unwrap();
        assert_eq!(ast.events[0].params, vec!["c", "i"]);
        assert_eq!(ast.events[1].params, vec!["i"]);
    }
}
