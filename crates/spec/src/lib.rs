//! The RV specification language: parsing and compiling parametric
//! property specifications in the style of the paper's Figures 2–4.
//!
//! A spec declares parameters, events (with the parameters each binds —
//! the `D` of Definition 4), one or more property blocks in any of the four
//! plugin formalisms, and handlers:
//!
//! ```text
//! UnsafeIter(Collection c, Iterator i) {
//!     event create(c, i);
//!     event update(c);
//!     event next(i);
//!     ere: update* create next* update+ next
//!     @match { report "improper Concurrent Modification found!"; }
//! }
//! ```
//!
//! The only departure from the paper's concrete syntax is the event
//! declaration: the paper binds parameters via AspectJ pointcuts
//! (`after(Collection c) returning(Iterator i): call(…)`), which this
//! reproduction replaces with direct parameter lists — the instrumentation
//! role is played by the simulated workloads (see `rv-workloads`).
//!
//! # Example
//!
//! ```
//! use rv_spec::CompiledSpec;
//!
//! let spec = CompiledSpec::from_source(
//!     r#"HasNext(Iterator i) {
//!         event hasnexttrue(i);
//!         event next(i);
//!         ltl: [](next => (*) hasnexttrue)
//!         @violation { report "improper Iterator use found!"; }
//!     }"#,
//! )?;
//! assert_eq!(spec.name, "HasNext");
//! assert_eq!(spec.properties.len(), 1);
//! # Ok::<(), rv_spec::Diagnostic>(())
//! ```

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;

pub use crate::ast::{FormalismKind, SpecAst};
pub use crate::compile::{compile, CompiledHandler, CompiledProperty, CompiledSpec};
pub use crate::parser::parse;
pub use crate::printer::print;
pub use crate::span::{Diagnostic, Span};
