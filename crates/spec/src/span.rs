//! Source spans and diagnostics for the spec language front-end.

use std::fmt;

/// A half-open byte range into the spec source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// The 1-based line and column of the span start within `source`.
    #[must_use]
    pub fn line_col(self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// A diagnostic produced by the lexer, parser, or semantic analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    #[must_use]
    pub fn new(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { span, message: message.into() }
    }

    /// Renders as `line:col: message` against the original source.
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("{line}:{col}: {}", self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}: {}", self.span.start, self.span.end, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn merge_covers_both() {
        let s = Span::new(3, 5).merge(Span::new(1, 4));
        assert_eq!(s, Span::new(1, 5));
    }

    #[test]
    fn render_uses_line_col() {
        let d = Diagnostic::new(Span::new(4, 5), "unexpected token");
        assert_eq!(d.render("ab\ncd"), "2:2: unexpected token");
        assert_eq!(d.to_string(), "4..5: unexpected token");
    }
}
