//! Semantic analysis and compilation of parsed specs into runnable
//! property artifacts.
//!
//! Compilation resolves names, validates the property blocks, compiles each
//! block through the matching `rv-logic` plugin, derives the goal set from
//! the handlers, and runs the coenable analysis — producing everything the
//! parametric engine needs (§4): the event definition `D`, a monitor
//! factory, and the minimized ALIVENESS formula.

use std::collections::{HashMap, HashSet};

use rv_logic::cfg::{CfgMonitor, Grammar, Production, Symbol};
use rv_logic::coenable::CoenableSets;
use rv_logic::ere::Ere;
use rv_logic::fsm::FsmSpec;
use rv_logic::ltl::Ltl;
use rv_logic::{
    Aliveness, Alphabet, AnyFormalism, EventDef, EventId, GoalSet, ParamId, ParamSet, Verdict,
};

use crate::ast::{
    EreAst, FormalismKind, HandlerDecl, LtlAst, PropertyBlock, PropertyBody, SpecAst,
};
use crate::parser::parse;
use crate::span::{Diagnostic, Span};

/// Cap on DFA sizes produced by the ERE/LTL plugins. Real properties are
/// tiny; this only guards against pathological inputs.
const MAX_DFA_STATES: usize = 50_000;

/// A fully compiled specification: the shared event/parameter layer plus
/// one compiled property per block.
#[derive(Clone, Debug)]
pub struct CompiledSpec {
    /// Spec name.
    pub name: String,
    /// Declared parameter class names, by [`ParamId`].
    pub param_classes: Vec<String>,
    /// The event alphabet (ids follow declaration order).
    pub alphabet: Alphabet,
    /// The event definition `D`.
    pub event_def: EventDef,
    /// For each event (by id), its parameters in *declaration order* —
    /// the contract callers use to construct bindings positionally.
    pub event_params: Vec<Vec<ParamId>>,
    /// One compiled property per block, in source order.
    pub properties: Vec<CompiledProperty>,
}

/// One compiled property block.
#[derive(Clone, Debug)]
pub struct CompiledProperty {
    /// Which plugin produced it.
    pub kind: FormalismKind,
    /// The runnable monitor structure.
    pub formalism: AnyFormalism,
    /// Verdicts of interest (derived from the handlers).
    pub goal: GoalSet,
    /// Handlers, with the verdict that fires each.
    pub handlers: Vec<CompiledHandler>,
    /// The §3 coenable sets (`None` when the plugin cannot provide them
    /// for this goal — e.g. CFG with a `fail` goal; the engine then falls
    /// back to all-params-dead collection for this property).
    pub coenable: Option<CoenableSets>,
    /// The compiled ALIVENESS formula of §4.2.2.
    pub aliveness: Option<Aliveness>,
}

/// One compiled handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledHandler {
    /// The verdict that fires this handler.
    pub on: Verdict,
    /// The handler's name in the source (`match`, `error`, …).
    pub name: String,
    /// The `report` message, if any.
    pub message: Option<String>,
}

impl CompiledSpec {
    /// Parses and compiles a spec from source text.
    ///
    /// # Errors
    ///
    /// Returns the first lexical, syntactic, or semantic [`Diagnostic`].
    pub fn from_source(source: &str) -> Result<CompiledSpec, Diagnostic> {
        compile(&parse(source)?)
    }
}

/// Compiles a parsed spec.
///
/// # Errors
///
/// Returns the first semantic [`Diagnostic`]: duplicate or undeclared
/// names, empty blocks, handler/goal mismatches, or plugin-level errors
/// (nondeterministic FSM, empty CFG language, oversized DFA, …).
pub fn compile(ast: &SpecAst) -> Result<CompiledSpec, Diagnostic> {
    // Parameters.
    if ast.params.is_empty() {
        return Err(Diagnostic::new(ast.name_span, "spec declares no parameters"));
    }
    if ast.params.len() > 32 {
        return Err(Diagnostic::new(ast.name_span, "at most 32 parameters supported"));
    }
    let mut param_ids: HashMap<&str, ParamId> = HashMap::new();
    for (i, p) in ast.params.iter().enumerate() {
        if param_ids.insert(&p.name, ParamId(i as u8)).is_some() {
            return Err(Diagnostic::new(p.span, format!("duplicate parameter `{}`", p.name)));
        }
    }

    // Events.
    if ast.events.is_empty() {
        return Err(Diagnostic::new(ast.name_span, "spec declares no events"));
    }
    let mut alphabet = Alphabet::new();
    let mut params_of: Vec<ParamSet> = Vec::new();
    let mut event_params: Vec<Vec<ParamId>> = Vec::new();
    for ev in &ast.events {
        if alphabet.lookup(&ev.name).is_some() {
            return Err(Diagnostic::new(ev.span, format!("duplicate event `{}`", ev.name)));
        }
        alphabet.intern(&ev.name);
        let mut set = ParamSet::EMPTY;
        let mut seen = HashSet::new();
        for p in &ev.params {
            let id = *param_ids.get(p.as_str()).ok_or_else(|| {
                Diagnostic::new(
                    ev.span,
                    format!("event `{}` binds undeclared parameter `{p}`", ev.name),
                )
            })?;
            if !seen.insert(id) {
                return Err(Diagnostic::new(
                    ev.span,
                    format!("event `{}` binds parameter `{p}` twice", ev.name),
                ));
            }
            set = set.with(id);
        }
        event_params.push(ev.params.iter().map(|p| param_ids[p.as_str()]).collect());
        params_of.push(set);
    }
    let param_names: Vec<&str> = ast.params.iter().map(|p| p.name.as_str()).collect();
    let event_def = EventDef::new(&alphabet, &param_names, params_of);

    // Property blocks.
    if ast.blocks.is_empty() {
        return Err(Diagnostic::new(ast.name_span, "spec has no property block"));
    }
    let mut properties = Vec::new();
    for block in &ast.blocks {
        properties.push(compile_block(block, &alphabet, &event_def)?);
    }

    Ok(CompiledSpec {
        name: ast.name.clone(),
        param_classes: ast.params.iter().map(|p| p.class.clone()).collect(),
        alphabet,
        event_def,
        event_params,
        properties,
    })
}

fn compile_block(
    block: &PropertyBlock,
    alphabet: &Alphabet,
    event_def: &EventDef,
) -> Result<CompiledProperty, Diagnostic> {
    if block.handlers.is_empty() {
        return Err(Diagnostic::new(
            block.span,
            "property block has no handler, so it could never report anything",
        ));
    }
    let (formalism, goal, handlers) = match &block.body {
        PropertyBody::Fsm(states) => compile_fsm(block, states, alphabet)?,
        PropertyBody::Ere(e) => {
            let ere = lower_ere(e, alphabet)?;
            let dfa = ere.compile(alphabet, MAX_DFA_STATES).map_err(|err| {
                Diagnostic::new(block.span, format!("ere compilation failed: {err}"))
            })?;
            let dfa = rv_logic::minimize::minimize(&dfa);
            let (goal, handlers) =
                named_goal(&block.handlers, &[("match", Verdict::Match), ("fail", Verdict::Fail)])?;
            (AnyFormalism::Dfa(dfa), goal, handlers)
        }
        PropertyBody::Ltl(f) => {
            let ltl = lower_ltl(f, alphabet)?;
            let dfa = ltl.compile(alphabet, MAX_DFA_STATES).map_err(|err| {
                Diagnostic::new(block.span, format!("ltl compilation failed: {err}"))
            })?;
            let dfa = rv_logic::minimize::minimize(&dfa);
            let (goal, handlers) = named_goal(
                &block.handlers,
                &[("violation", Verdict::Fail), ("validation", Verdict::Match)],
            )?;
            (AnyFormalism::Dfa(dfa), goal, handlers)
        }
        PropertyBody::Cfg(rules) => {
            let grammar = lower_cfg(rules, alphabet)?;
            let monitor = CfgMonitor::compile(&grammar, alphabet).map_err(|err| {
                Diagnostic::new(block.span, format!("cfg compilation failed: {err}"))
            })?;
            let (goal, handlers) =
                named_goal(&block.handlers, &[("match", Verdict::Match), ("fail", Verdict::Fail)])?;
            (AnyFormalism::Cfg(monitor), goal, handlers)
        }
    };
    use rv_logic::Formalism as _;
    let coenable = formalism.coenable(goal);
    let aliveness = coenable.as_ref().map(|c| c.lift(event_def).aliveness());
    Ok(CompiledProperty { kind: block.kind, formalism, goal, handlers, coenable, aliveness })
}

/// FSM handlers are named after states; handler states report `Match`.
fn compile_fsm(
    block: &PropertyBlock,
    states: &[crate::ast::FsmStateAst],
    alphabet: &Alphabet,
) -> Result<(AnyFormalism, GoalSet, Vec<CompiledHandler>), Diagnostic> {
    let state_names: HashSet<&str> = states.iter().map(|s| s.name.as_str()).collect();
    let mut goal_states: HashSet<&str> = HashSet::new();
    let mut handlers = Vec::new();
    for h in &block.handlers {
        if !state_names.contains(h.name.as_str()) {
            return Err(Diagnostic::new(
                h.span,
                format!("fsm handler `@{}` names no state of the machine", h.name),
            ));
        }
        goal_states.insert(&h.name);
        handlers.push(CompiledHandler {
            on: Verdict::Match,
            name: h.name.clone(),
            message: h.message.clone(),
        });
    }
    let mut spec = FsmSpec::new();
    for st in states {
        let verdict =
            if goal_states.contains(st.name.as_str()) { Verdict::Match } else { Verdict::Unknown };
        let transitions: Vec<(&str, &str)> =
            st.transitions.iter().map(|(e, t)| (e.as_str(), t.as_str())).collect();
        spec.state(&st.name, verdict, &transitions);
    }
    let dfa = spec.compile(alphabet).map_err(|err| {
        // Re-attach the span of the offending state when we can find it.
        let span = states
            .iter()
            .find(|s| err.to_string().contains(&format!("`{}`", s.name)))
            .map_or(block.span, |s| s.span);
        Diagnostic::new(span, format!("fsm compilation failed: {err}"))
    })?;
    Ok((AnyFormalism::Dfa(dfa), GoalSet::MATCH, handlers))
}

/// Resolves handler names against the plugin's verdict table and merges the
/// goal set.
fn named_goal(
    decls: &[HandlerDecl],
    table: &[(&str, Verdict)],
) -> Result<(GoalSet, Vec<CompiledHandler>), Diagnostic> {
    let mut goal = GoalSet::empty();
    let mut handlers = Vec::new();
    for h in decls {
        let verdict =
            table.iter().find(|(n, _)| *n == h.name).map(|(_, v)| *v).ok_or_else(|| {
                let names: Vec<&str> = table.iter().map(|(n, _)| *n).collect();
                Diagnostic::new(
                    h.span,
                    format!(
                        "unknown handler `@{}`; this plugin supports {}",
                        h.name,
                        names.join(", ")
                    ),
                )
            })?;
        goal = goal.with(verdict);
        handlers.push(CompiledHandler {
            on: verdict,
            name: h.name.clone(),
            message: h.message.clone(),
        });
    }
    Ok((goal, handlers))
}

fn resolve_event(name: &str, span: Span, alphabet: &Alphabet) -> Result<EventId, Diagnostic> {
    alphabet.lookup(name).ok_or_else(|| Diagnostic::new(span, format!("undeclared event `{name}`")))
}

fn lower_ere(ast: &EreAst, alphabet: &Alphabet) -> Result<Ere, Diagnostic> {
    Ok(match ast {
        EreAst::Event(name, span) => Ere::event(resolve_event(name, *span, alphabet)?),
        EreAst::Epsilon(_) => Ere::epsilon(),
        EreAst::Concat(a, b) => lower_ere(a, alphabet)?.concat(lower_ere(b, alphabet)?),
        EreAst::Union(a, b) => Ere::union([lower_ere(a, alphabet)?, lower_ere(b, alphabet)?]),
        EreAst::Inter(a, b) => Ere::inter([lower_ere(a, alphabet)?, lower_ere(b, alphabet)?]),
        EreAst::Star(a) => lower_ere(a, alphabet)?.star(),
        EreAst::Plus(a) => lower_ere(a, alphabet)?.plus(),
        EreAst::Not(a) => lower_ere(a, alphabet)?.not(),
    })
}

fn lower_ltl(ast: &LtlAst, alphabet: &Alphabet) -> Result<Ltl, Diagnostic> {
    Ok(match ast {
        LtlAst::Event(name, span) => Ltl::Event(resolve_event(name, *span, alphabet)?),
        LtlAst::True(_) => Ltl::True,
        LtlAst::False(_) => Ltl::False,
        LtlAst::Not(a) => lower_ltl(a, alphabet)?.negated(),
        LtlAst::And(a, b) => lower_ltl(a, alphabet)?.and(lower_ltl(b, alphabet)?),
        LtlAst::Or(a, b) => lower_ltl(a, alphabet)?.or(lower_ltl(b, alphabet)?),
        LtlAst::Implies(a, b) => lower_ltl(a, alphabet)?.implies(lower_ltl(b, alphabet)?),
        LtlAst::Always(a) => lower_ltl(a, alphabet)?.always(),
        LtlAst::Eventually(a) => lower_ltl(a, alphabet)?.eventually(),
        LtlAst::Next(a) => Ltl::Next(Box::new(lower_ltl(a, alphabet)?)),
        LtlAst::Until(a, b) => {
            Ltl::Until(Box::new(lower_ltl(a, alphabet)?), Box::new(lower_ltl(b, alphabet)?))
        }
        LtlAst::Release(a, b) => {
            Ltl::Release(Box::new(lower_ltl(a, alphabet)?), Box::new(lower_ltl(b, alphabet)?))
        }
        LtlAst::Prev(a) => lower_ltl(a, alphabet)?.prev(),
        LtlAst::Since(a, b) => {
            Ltl::Since(Box::new(lower_ltl(a, alphabet)?), Box::new(lower_ltl(b, alphabet)?))
        }
        LtlAst::Once(a) => Ltl::Once(Box::new(lower_ltl(a, alphabet)?)),
        LtlAst::Historically(a) => Ltl::Historically(Box::new(lower_ltl(a, alphabet)?)),
    })
}

fn lower_cfg(rules: &[crate::ast::RuleAst], alphabet: &Alphabet) -> Result<Grammar, Diagnostic> {
    // Nonterminals are the left-hand sides, in first-appearance order; the
    // first is the start symbol ("the first symbol seen is always assumed
    // the start symbol").
    let mut nt_index: HashMap<&str, u32> = HashMap::new();
    let mut nt_names: Vec<&str> = Vec::new();
    for r in rules {
        if !nt_index.contains_key(r.lhs.as_str()) {
            nt_index.insert(&r.lhs, nt_names.len() as u32);
            nt_names.push(&r.lhs);
        }
    }
    let mut productions = Vec::new();
    for r in rules {
        let lhs = nt_index[r.lhs.as_str()];
        for alt in &r.alts {
            let mut rhs = Vec::with_capacity(alt.len());
            for sym in alt {
                if let Some(&nt) = nt_index.get(sym.as_str()) {
                    rhs.push(Symbol::Nt(nt));
                } else if let Some(e) = alphabet.lookup(sym) {
                    rhs.push(Symbol::T(e));
                } else {
                    return Err(Diagnostic::new(
                        r.span,
                        format!("`{sym}` is neither a nonterminal nor a declared event"),
                    ));
                }
            }
            productions.push(Production { lhs, rhs });
        }
    }
    Grammar::new(&nt_names, 0, productions)
        .map_err(|err| Diagnostic::new(rules[0].span, format!("invalid grammar: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_logic::Formalism as _;

    const UNSAFE_ITER_SRC: &str = r#"
        UnsafeIter(Collection c, Iterator i) {
            event create(c, i);
            event update(c);
            event next(i);
            ere: update* create next* update+ next
            @match { report "improper Concurrent Modification found!"; }
        }
    "#;

    #[test]
    fn compiles_unsafe_iter_with_the_papers_coenable_sets() {
        let spec = CompiledSpec::from_source(UNSAFE_ITER_SRC).unwrap();
        assert_eq!(spec.name, "UnsafeIter");
        assert_eq!(spec.param_classes, vec!["Collection", "Iterator"]);
        let prop = &spec.properties[0];
        assert_eq!(prop.goal, GoalSet::MATCH);
        let co = prop.coenable.as_ref().unwrap();
        let update = spec.alphabet.lookup("update").unwrap();
        assert_eq!(co.of(update).len(), 3, "the §3 worked example");
        // ALIVENESS(update) minimizes to live_i.
        let aliveness = prop.aliveness.as_ref().unwrap();
        let i = spec.event_def.lookup_param("i").unwrap();
        assert_eq!(aliveness.masks(update), &[ParamSet::singleton(i)]);
    }

    #[test]
    fn compiles_figure_2_both_blocks() {
        let spec = CompiledSpec::from_source(crate::parser::HASNEXT_SRC).unwrap();
        assert_eq!(spec.properties.len(), 2);
        let fsm = &spec.properties[0];
        let ltl = &spec.properties[1];
        assert_eq!(fsm.goal, GoalSet::MATCH);
        assert_eq!(ltl.goal, GoalSet::FAIL);
        // Both blocks agree on the bad trace `next`.
        let next = spec.alphabet.lookup("next").unwrap();
        for (prop, bad) in [(fsm, Verdict::Match), (ltl, Verdict::Fail)] {
            let mut st = prop.formalism.initial_state();
            assert_eq!(prop.formalism.step(&mut st, next), bad);
        }
        assert_eq!(fsm.handlers[0].name, "error");
        assert_eq!(fsm.handlers[0].on, Verdict::Match);
        assert_eq!(ltl.handlers[0].on, Verdict::Fail);
        assert_eq!(fsm.handlers[0].message.as_deref(), Some("improper Iterator use found!"));
    }

    #[test]
    fn compiles_figure_4_cfg_with_fail_goal() {
        let src = r#"
            SafeLock(Lock l, Thread t) {
                event acquire(l, t);
                event release(l, t);
                event begin(t);
                event end(t);
                cfg: S -> S begin S end | S acquire S release | epsilon
                @fail { report "improper Lock use found!"; }
            }
        "#;
        let spec = CompiledSpec::from_source(src).unwrap();
        let prop = &spec.properties[0];
        assert_eq!(prop.goal, GoalSet::FAIL);
        // CFG coenable is only defined for {match}: engine falls back.
        assert!(prop.coenable.is_none());
        // The monitor itself still works.
        let acq = spec.alphabet.lookup("acquire").unwrap();
        let rel = spec.alphabet.lookup("release").unwrap();
        let mut st = prop.formalism.initial_state();
        assert_eq!(prop.formalism.step(&mut st, acq), Verdict::Unknown);
        assert_eq!(prop.formalism.step(&mut st, rel), Verdict::Match);
    }

    #[test]
    fn cfg_match_goal_gets_coenable_sets() {
        let src = r#"
            Balanced(Lock l) {
                event acquire(l);
                event release(l);
                cfg: S -> S acquire S release | epsilon
                @match { }
            }
        "#;
        let spec = CompiledSpec::from_source(src).unwrap();
        let prop = &spec.properties[0];
        assert!(prop.coenable.is_some());
        let acq = spec.alphabet.lookup("acquire").unwrap();
        let rel = spec.alphabet.lookup("release").unwrap();
        // Every continuation after acquire contains release.
        for s in prop.coenable.as_ref().unwrap().of(acq).sets() {
            assert!(s.contains(rel));
        }
    }

    #[test]
    fn rejects_undeclared_event_in_pattern() {
        let err =
            CompiledSpec::from_source("P(C c) { event a(c); ere: a zap @match {} }").unwrap_err();
        assert!(err.message.contains("undeclared event `zap`"), "{}", err.message);
    }

    #[test]
    fn rejects_undeclared_param_in_event() {
        let err = CompiledSpec::from_source("P(C c) { event a(x); ere: a @match {} }").unwrap_err();
        assert!(err.message.contains("undeclared parameter `x`"), "{}", err.message);
    }

    #[test]
    fn rejects_duplicate_params_and_events() {
        let err =
            CompiledSpec::from_source("P(C c, D c) { event a(c); ere: a @match {} }").unwrap_err();
        assert!(err.message.contains("duplicate parameter"), "{}", err.message);
        let err = CompiledSpec::from_source("P(C c) { event a(c); event a(c); ere: a @match {} }")
            .unwrap_err();
        assert!(err.message.contains("duplicate event"), "{}", err.message);
    }

    #[test]
    fn rejects_handlerless_block() {
        let err = CompiledSpec::from_source("P(C c) { event a(c); ere: a }").unwrap_err();
        assert!(err.message.contains("no handler"), "{}", err.message);
    }

    #[test]
    fn rejects_unknown_handler_name() {
        let err = CompiledSpec::from_source("P(C c) { event a(c); ere: a @boom {} }").unwrap_err();
        assert!(err.message.contains("unknown handler `@boom`"), "{}", err.message);
    }

    #[test]
    fn rejects_fsm_handler_for_missing_state() {
        let err = CompiledSpec::from_source("P(C c) { event a(c); fsm: s0 [ a -> s0 ] @nope {} }")
            .unwrap_err();
        assert!(err.message.contains("names no state"), "{}", err.message);
    }

    #[test]
    fn rejects_event_binding_param_twice() {
        let err =
            CompiledSpec::from_source("P(C c) { event a(c, c); ere: a @match {} }").unwrap_err();
        assert!(err.message.contains("twice"), "{}", err.message);
    }

    #[test]
    fn diagnostics_render_with_position() {
        let src = "P(C c) {\n  event a(c);\n  ere: a zap\n  @match {}\n}";
        let err = CompiledSpec::from_source(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("3:"), "{rendered}");
    }
}
