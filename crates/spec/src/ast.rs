//! Abstract syntax for the RV spec language.
//!
//! One spec (paper Figures 2–4) declares a name, a parameter list, a set of
//! events, and one or more *property blocks* (`fsm:`, `ere:`, `ltl:`,
//! `cfg:`), each followed by its handlers (`@error { … }`). Figure 2 shows
//! the same property stated twice (FSM and LTL) in a single spec — hence
//! `blocks` is a list.

use crate::span::Span;

/// A parsed specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecAst {
    /// Spec name, e.g. `UnsafeIter`.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Declared parameters, in order.
    pub params: Vec<ParamDecl>,
    /// Declared events, in order (this order fixes event ids).
    pub events: Vec<EventDecl>,
    /// Property blocks with their handlers.
    pub blocks: Vec<PropertyBlock>,
}

/// One `Class name` parameter declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamDecl {
    /// The class/type name (e.g. `Iterator`), kept for documentation and
    /// for the workload layer's class checks.
    pub class: String,
    /// The parameter name (e.g. `i`).
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// One `event name(params…);` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventDecl {
    /// The event name.
    pub name: String,
    /// The parameters this event binds — the `D(e)` of Definition 4.
    pub params: Vec<String>,
    /// Source span.
    pub span: Span,
}

/// Which plugin a property block uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormalismKind {
    /// `fsm:` — Figure 2's finite state machine.
    Fsm,
    /// `ere:` — Figure 3's extended regular expression.
    Ere,
    /// `ltl:` — Figure 2's temporal formula.
    Ltl,
    /// `cfg:` — Figure 4's context-free grammar.
    Cfg,
}

/// A property block plus the handlers that follow it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyBlock {
    /// The plugin.
    pub kind: FormalismKind,
    /// The body.
    pub body: PropertyBody,
    /// Handlers (`@match`, `@fail`, `@violation`, or FSM state names).
    pub handlers: Vec<HandlerDecl>,
    /// Source span of the block head.
    pub span: Span,
}

/// The body of a property block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropertyBody {
    /// FSM states in declaration order (first = initial).
    Fsm(Vec<FsmStateAst>),
    /// ERE pattern.
    Ere(EreAst),
    /// LTL formula.
    Ltl(LtlAst),
    /// CFG rules (first left-hand side = start symbol).
    Cfg(Vec<RuleAst>),
}

/// One FSM state: `name [ event -> target … ]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsmStateAst {
    /// State name.
    pub name: String,
    /// `(event, target)` transitions.
    pub transitions: Vec<(String, String)>,
    /// Source span of the state name.
    pub span: Span,
}

/// ERE syntax tree (names resolved during compilation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EreAst {
    /// An event reference.
    Event(String, Span),
    /// `epsilon`.
    Epsilon(Span),
    /// Juxtaposition.
    Concat(Box<EreAst>, Box<EreAst>),
    /// `a | b`.
    Union(Box<EreAst>, Box<EreAst>),
    /// `a & b`.
    Inter(Box<EreAst>, Box<EreAst>),
    /// `a*`.
    Star(Box<EreAst>),
    /// `a+`.
    Plus(Box<EreAst>),
    /// `~a`.
    Not(Box<EreAst>),
}

/// LTL syntax tree (names resolved during compilation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LtlAst {
    /// An event reference.
    Event(String, Span),
    /// `true`.
    True(Span),
    /// `false`.
    False(Span),
    /// `! a`.
    Not(Box<LtlAst>),
    /// `a && b`.
    And(Box<LtlAst>, Box<LtlAst>),
    /// `a || b`.
    Or(Box<LtlAst>, Box<LtlAst>),
    /// `a => b`.
    Implies(Box<LtlAst>, Box<LtlAst>),
    /// `[] a`.
    Always(Box<LtlAst>),
    /// `<> a`.
    Eventually(Box<LtlAst>),
    /// `X a`.
    Next(Box<LtlAst>),
    /// `a U b`.
    Until(Box<LtlAst>, Box<LtlAst>),
    /// `a R b`.
    Release(Box<LtlAst>, Box<LtlAst>),
    /// `(*) a`.
    Prev(Box<LtlAst>),
    /// `a S b`.
    Since(Box<LtlAst>, Box<LtlAst>),
    /// `<*> a`.
    Once(Box<LtlAst>),
    /// `[*] a`.
    Historically(Box<LtlAst>),
}

/// One CFG rule: `Lhs -> alt | alt | …`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleAst {
    /// The nonterminal being defined.
    pub lhs: String,
    /// Alternatives; each is a list of symbol names (empty = `ε`, also
    /// written `epsilon`).
    pub alts: Vec<Vec<String>>,
    /// Source span of the left-hand side.
    pub span: Span,
}

/// One handler: `@name { report "…"; }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandlerDecl {
    /// Handler name (`match`, `fail`, `violation`, or an FSM state name).
    pub name: String,
    /// The `report` message, if any.
    pub message: Option<String>,
    /// Source span of the handler name.
    pub span: Span,
}
