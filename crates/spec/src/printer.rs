//! Pretty-printer for spec ASTs: renders a [`SpecAst`] back to concrete
//! syntax that re-parses to an equal AST (round-trip property, checked in
//! the crate tests). Used by tooling (`rvmon fmt`) and as the canonical
//! formatter for generated specs.

use std::fmt::Write as _;

use crate::ast::{EreAst, FormalismKind, LtlAst, PropertyBody, SpecAst};

/// Renders `ast` as canonical spec source.
#[must_use]
pub fn print(ast: &SpecAst) -> String {
    let mut out = String::new();
    let params: Vec<String> =
        ast.params.iter().map(|p| format!("{} {}", p.class, p.name)).collect();
    let _ = writeln!(out, "{}({}) {{", ast.name, params.join(", "));
    for ev in &ast.events {
        let _ = writeln!(out, "    event {}({});", ev.name, ev.params.join(", "));
    }
    for block in &ast.blocks {
        match (&block.kind, &block.body) {
            (FormalismKind::Fsm, PropertyBody::Fsm(states)) => {
                let _ = writeln!(out, "    fsm:");
                for st in states {
                    if st.transitions.is_empty() {
                        let _ = writeln!(out, "        {} []", st.name);
                    } else {
                        let _ = writeln!(out, "        {} [", st.name);
                        for (e, t) in &st.transitions {
                            let _ = writeln!(out, "            {e} -> {t}");
                        }
                        let _ = writeln!(out, "        ]");
                    }
                }
            }
            (FormalismKind::Ere, PropertyBody::Ere(e)) => {
                let _ = writeln!(out, "    ere: {}", print_ere(e, 0));
            }
            (FormalismKind::Ltl, PropertyBody::Ltl(f)) => {
                let _ = writeln!(out, "    ltl: {}", print_ltl(f, 0));
            }
            (FormalismKind::Cfg, PropertyBody::Cfg(rules)) => {
                let _ = write!(out, "    cfg:");
                for r in rules {
                    let alts: Vec<String> = r
                        .alts
                        .iter()
                        .map(|a| if a.is_empty() { "epsilon".to_owned() } else { a.join(" ") })
                        .collect();
                    let _ = write!(out, " {} -> {}", r.lhs, alts.join(" | "));
                }
                let _ = writeln!(out);
            }
            _ => unreachable!("block kind always matches its body"),
        }
        for h in &block.handlers {
            match &h.message {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "    @{} {{ report \"{}\"; }}",
                        h.name,
                        m.replace('"', "\\\"")
                    );
                }
                None => {
                    let _ = writeln!(out, "    @{} {{ }}", h.name);
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// ERE precedence levels: 0 = union, 1 = intersection, 2 = sequence,
/// 3 = postfix/primary.
fn print_ere(e: &EreAst, level: u8) -> String {
    let (s, my_level) = match e {
        EreAst::Event(n, _) => (n.clone(), 3),
        EreAst::Epsilon(_) => ("epsilon".to_owned(), 3),
        EreAst::Union(a, b) => (format!("{} | {}", print_ere(a, 0), print_ere(b, 1)), 0),
        EreAst::Inter(a, b) => (format!("{} & {}", print_ere(a, 1), print_ere(b, 2)), 1),
        EreAst::Concat(a, b) => (format!("{} {}", print_ere(a, 2), print_ere(b, 3)), 2),
        EreAst::Star(a) => (format!("{}*", print_ere(a, 3)), 3),
        EreAst::Plus(a) => (format!("{}+", print_ere(a, 3)), 3),
        EreAst::Not(a) => (format!("~{}", print_ere(a, 3)), 3),
    };
    if my_level < level {
        format!("({s})")
    } else {
        s
    }
}

/// LTL precedence: 0 = implies, 1 = or, 2 = and, 3 = U/S/R, 4 = unary.
fn print_ltl(f: &LtlAst, level: u8) -> String {
    let (s, my_level) = match f {
        LtlAst::Event(n, _) => (n.clone(), 4),
        LtlAst::True(_) => ("true".to_owned(), 4),
        LtlAst::False(_) => ("false".to_owned(), 4),
        LtlAst::Implies(a, b) => (format!("{} => {}", print_ltl(a, 1), print_ltl(b, 0)), 0),
        LtlAst::Or(a, b) => (format!("{} || {}", print_ltl(a, 1), print_ltl(b, 2)), 1),
        LtlAst::And(a, b) => (format!("{} && {}", print_ltl(a, 2), print_ltl(b, 3)), 2),
        LtlAst::Until(a, b) => (format!("{} U {}", print_ltl(a, 4), print_ltl(b, 3)), 3),
        LtlAst::Since(a, b) => (format!("{} S {}", print_ltl(a, 4), print_ltl(b, 3)), 3),
        LtlAst::Release(a, b) => (format!("{} R {}", print_ltl(a, 4), print_ltl(b, 3)), 3),
        LtlAst::Not(a) => (format!("! {}", print_ltl(a, 4)), 4),
        LtlAst::Always(a) => (format!("[] {}", print_ltl(a, 4)), 4),
        LtlAst::Eventually(a) => (format!("<> {}", print_ltl(a, 4)), 4),
        LtlAst::Next(a) => (format!("X {}", print_ltl(a, 4)), 4),
        LtlAst::Prev(a) => (format!("(*) {}", print_ltl(a, 4)), 4),
        LtlAst::Once(a) => (format!("<*> {}", print_ltl(a, 4)), 4),
        LtlAst::Historically(a) => (format!("[*] {}", print_ltl(a, 4)), 4),
    };
    if my_level < level {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn strip_spans(ast: &mut SpecAst) {
        use crate::span::Span;
        ast.name_span = Span::default();
        for p in &mut ast.params {
            p.span = Span::default();
        }
        for e in &mut ast.events {
            e.span = Span::default();
        }
        for b in &mut ast.blocks {
            b.span = Span::default();
            for h in &mut b.handlers {
                h.span = Span::default();
            }
            match &mut b.body {
                PropertyBody::Fsm(states) => {
                    for s in states {
                        s.span = Span::default();
                    }
                }
                PropertyBody::Ere(e) => strip_ere(e),
                PropertyBody::Ltl(f) => strip_ltl(f),
                PropertyBody::Cfg(rules) => {
                    for r in rules {
                        r.span = Span::default();
                    }
                }
            }
        }
    }

    fn strip_ere(e: &mut EreAst) {
        use crate::span::Span;
        match e {
            EreAst::Event(_, s) | EreAst::Epsilon(s) => *s = Span::default(),
            EreAst::Concat(a, b) | EreAst::Union(a, b) | EreAst::Inter(a, b) => {
                strip_ere(a);
                strip_ere(b);
            }
            EreAst::Star(a) | EreAst::Plus(a) | EreAst::Not(a) => strip_ere(a),
        }
    }

    fn strip_ltl(f: &mut LtlAst) {
        use crate::span::Span;
        match f {
            LtlAst::Event(_, s) | LtlAst::True(s) | LtlAst::False(s) => *s = Span::default(),
            LtlAst::Not(a)
            | LtlAst::Always(a)
            | LtlAst::Eventually(a)
            | LtlAst::Next(a)
            | LtlAst::Prev(a)
            | LtlAst::Once(a)
            | LtlAst::Historically(a) => strip_ltl(a),
            LtlAst::And(a, b)
            | LtlAst::Or(a, b)
            | LtlAst::Implies(a, b)
            | LtlAst::Until(a, b)
            | LtlAst::Since(a, b)
            | LtlAst::Release(a, b) => {
                strip_ltl(a);
                strip_ltl(b);
            }
        }
    }

    /// Round-trip: print(parse(src)) re-parses to the same AST (modulo
    /// spans), for all ten bundled properties.
    #[test]
    fn round_trips_every_bundled_property() {
        // The bundled sources live in rv-props, which depends on this
        // crate; use equivalent literals to avoid a cyclic dev-dependency.
        let sources = [
            crate::parser::HASNEXT_SRC,
            r#"UnsafeIter(Collection c, Iterator i) {
                event create(c, i); event update(c); event next(i);
                ere: update* create next* update+ next
                @match { report "boom"; }
            }"#,
            r#"SafeLock(Lock l, Thread t) {
                event acquire(l, t); event release(l, t);
                event begin(t); event end(t);
                cfg: S -> S begin S end | S acquire S release | epsilon
                @fail { report "lock"; }
            }"#,
            r#"P(C c) {
                event a(c); event b(c); event d(c);
                ere: (a | b)* & ~(a d+) b
                @match { }
                ltl: (a U b) => [] (d => (*) a) && <> b
                @violation { report "x \" y"; }
            }"#,
        ];
        for src in sources {
            let mut first = parse(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
            let printed = print(&first);
            let mut second = parse(&printed)
                .unwrap_or_else(|e| panic!("{}\n---\n{printed}", e.render(&printed)));
            strip_spans(&mut first);
            strip_spans(&mut second);
            assert_eq!(first, second, "round-trip failed for:\n{printed}");
        }
    }

    #[test]
    fn printed_specs_compile_identically() {
        let src = r#"UnsafeIter(Collection c, Iterator i) {
            event create(c, i); event update(c); event next(i);
            ere: update* create next* update+ next
            @match { }
        }"#;
        let ast = parse(src).unwrap();
        let printed = print(&ast);
        let a = crate::compile::compile(&ast).unwrap();
        let b = crate::CompiledSpec::from_source(&printed).unwrap();
        // Same alphabet, same coenable sets.
        assert_eq!(a.alphabet, b.alphabet);
        assert_eq!(a.properties[0].coenable, b.properties[0].coenable);
    }
}
