//! A Tracematches-style baseline engine (Allan et al. \[4\], Avgustinov et
//! al. \[8\]) for the paper's §5 comparison.
//!
//! Tracematches differs from the RV/JavaMOP architecture in two ways the
//! evaluation leans on:
//!
//! 1. **Regex only.** The property is hardwired to a finite automaton; the
//!    CFG plugin has no counterpart here (the paper: a state-based GC
//!    "could not be used for context-free properties because the state
//!    space is unbounded").
//! 2. **Constraint/disjunct representation.** Instead of one monitor
//!    object per parameter instance reached through indexing trees, each
//!    automaton state carries the *set of partial bindings* (disjuncts)
//!    currently in that state. Every event performs linear compatibility
//!    scans over these sets — the architectural source of Tracematches'
//!    higher runtime overhead — while its garbage collection is *state
//!    indexed* and more precise ("coenable sets indexed by state rather
//!    than events", §3 Discussion), which is why its memory usage is
//!    sometimes lower than RV's.
//!
//! # Example
//!
//! ```
//! use rv_heap::{Heap, HeapConfig};
//! use rv_logic::ere::unsafe_iter_ere;
//! use rv_logic::{Alphabet, EventDef, GoalSet, ParamId, ParamSet};
//! use rv_tracematches::TraceMatch;
//! use rv_core::Binding;
//!
//! let alphabet = Alphabet::from_names(&["create", "update", "next"]);
//! let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000)?;
//! let (c, i) = (ParamId(0), ParamId(1));
//! let def = EventDef::new(
//!     &alphabet,
//!     &["c", "i"],
//!     vec![ParamSet::singleton(c).with(i), ParamSet::singleton(c), ParamSet::singleton(i)],
//! );
//! let mut tm = TraceMatch::new(dfa, def, GoalSet::MATCH);
//!
//! let mut heap = Heap::new(HeapConfig::manual());
//! let cls = heap.register_class("Obj");
//! let frame = heap.enter_frame();
//! let coll = heap.alloc(cls);
//! let iter = heap.alloc(cls);
//! let ev = |n: &str| alphabet.lookup(n).unwrap();
//! tm.process(&heap, ev("create"), Binding::from_pairs(&[(c, coll), (i, iter)]));
//! tm.process(&heap, ev("update"), Binding::from_pairs(&[(c, coll)]));
//! tm.process(&heap, ev("next"), Binding::from_pairs(&[(i, iter)]));
//! assert_eq!(tm.stats().triggers, 1);
//! heap.exit_frame(frame);
//! # Ok::<(), rv_logic::ere::EreError>(())
//! ```

use rv_core::Binding;
use rv_heap::Heap;
use rv_logic::dfa::{Dfa, StateAliveness, DEAD};
use rv_logic::{EventDef, EventId, GoalSet, ParamSet};

/// Statistics for a [`TraceMatch`] run, mirroring the RV engine's counters
/// where they make sense.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceMatchStats {
    /// Events processed.
    pub events: u64,
    /// Disjuncts (partial bindings) created.
    pub disjuncts_created: u64,
    /// Disjuncts removed by the state-indexed GC.
    pub disjuncts_collected: u64,
    /// Goal verdicts reported.
    pub triggers: u64,
    /// Peak simultaneously-live disjuncts.
    pub peak_live: usize,
}

/// One disjunct: a partial binding sitting in an automaton state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Disjunct {
    binding: Binding,
}

/// A Tracematches-style monitor for one regular property.
#[derive(Debug)]
pub struct TraceMatch {
    dfa: Dfa,
    event_def: EventDef,
    goal: GoalSet,
    aliveness: StateAliveness,
    /// Disjunct sets, indexed by automaton state.
    states: Vec<Vec<Disjunct>>,
    live: usize,
    stats: TraceMatchStats,
    /// GC scan cursor (states are scanned round-robin, one per event, like
    /// Tracematches' incremental leak elimination).
    scan_state: usize,
    /// Bindings whose verdict was reported and sealed: joins above them
    /// must not restart the slice. Pruned incrementally as their objects
    /// die.
    retired: Vec<Binding>,
    retired_cursor: usize,
    /// Every binding that currently has a disjunct, in whatever state: a
    /// binding's slice is tracked by exactly one disjunct, so joins and
    /// ⊥-starts must not mint a second one. (Membership bookkeeping only —
    /// the per-event work stays the linear compatibility scans.)
    present: std::collections::HashSet<Binding>,
    /// Event instances seen so far — the disable table. A fresh disjunct
    /// for β sourced from a disjunct covering `covered ⊆ dom(β)` is exact
    /// only if no event instance β|S with S ⊈ covered ever occurred;
    /// otherwise its slice would silently miss history (the same check the
    /// RV engine performs). Pruned as objects die.
    seen: std::collections::HashSet<Binding>,
    seen_ring: Vec<Binding>,
    seen_cursor: usize,
}

impl TraceMatch {
    /// Builds a Tracematches-style monitor for a regular property.
    #[must_use]
    pub fn new(dfa: Dfa, event_def: EventDef, goal: GoalSet) -> Self {
        let aliveness = dfa.state_aliveness(goal, &event_def);
        let n = dfa.state_count() as usize;
        TraceMatch {
            dfa,
            event_def,
            goal,
            aliveness,
            states: vec![Vec::new(); n],
            live: 0,
            stats: TraceMatchStats::default(),
            scan_state: 0,
            retired: Vec::new(),
            retired_cursor: 0,
            present: std::collections::HashSet::new(),
            seen: std::collections::HashSet::new(),
            seen_ring: Vec::new(),
            seen_cursor: 0,
        }
    }

    /// The event definition.
    #[must_use]
    pub fn event_def(&self) -> &EventDef {
        &self.event_def
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> TraceMatchStats {
        self.stats
    }

    /// Estimated bytes held by the disjunct sets (Fig. 9B metric).
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.states.iter().map(|s| s.len() * std::mem::size_of::<Disjunct>()).sum::<usize>()
            + self.states.len() * std::mem::size_of::<Vec<Disjunct>>()
    }

    /// Processes one parametric event.
    ///
    /// Semantics: the initial state conceptually always holds the empty
    /// binding `⊥`. For every state `s` with `σ(s, e)` defined and every
    /// disjunct `b ∈ s` compatible with `θ`:
    ///
    /// * if `θ ⊑ b`, the event belongs to `b`'s slice: `b` *moves* to
    ///   `σ(s, e)`;
    /// * otherwise the join `b ⊔ θ` is *added* to `σ(s, e)` while `b`
    ///   stays (a partial path other futures may still extend).
    ///
    /// Both scans are linear in the disjunct sets — Tracematches'
    /// constraint solving.
    pub fn process(&mut self, heap: &Heap, event: EventId, binding: Binding) {
        self.stats.events += 1;
        let n = self.states.len();
        // Staged disjuncts: (target, disjunct, Some(covered domain) when
        // freshly created from a source covering that domain).
        let mut staged: Vec<(u32, Disjunct, Option<ParamSet>)> = Vec::new();
        for s in 0..n {
            let target = self.dfa.step(s as u32, event);
            if target == DEAD {
                // Disjuncts whose slice includes this event fall off the
                // machine: a permanent fail, remove them.
                let before = self.states[s].len();
                let present = &mut self.present;
                self.states[s].retain(|d| {
                    if binding.less_informative(d.binding) {
                        present.remove(&d.binding);
                        false
                    } else {
                        true
                    }
                });
                let removed = before - self.states[s].len();
                self.live -= removed;
                self.stats.disjuncts_collected += removed as u64;
                continue;
            }
            let mut idx = 0;
            while idx < self.states[s].len() {
                let d = self.states[s][idx];
                if binding.less_informative(d.binding) {
                    // Part of the slice: move.
                    self.states[s].swap_remove(idx);
                    staged.push((target, d, None));
                    continue;
                }
                if d.binding.compatible(binding) {
                    if let Some(join) = d.binding.lub(binding) {
                        staged.push((target, Disjunct { binding: join }, Some(d.binding.domain())));
                    }
                }
                idx += 1;
            }
        }
        // The implicit ⊥ in the initial state starts θ's slice.
        let init_target = self.dfa.step(self.dfa.initial(), event);
        if init_target != DEAD {
            staged.push((init_target, Disjunct { binding }, Some(ParamSet::EMPTY)));
        }
        let already_retired =
            |retired: &[Binding], b: Binding| retired.iter().any(|r| r.less_informative(b));
        for (target, d, fresh) in staged {
            if let Some(covered) = fresh {
                // A binding's slice has exactly one disjunct: never mint a
                // second (the existing one, wherever it sits, has the true
                // slice state), never restart a sealed slice, never shadow
                // a sealed sub-slice, and never create a disjunct whose
                // slice already missed events (the disable-table check).
                if self.present.contains(&d.binding)
                    || already_retired(&self.retired, d.binding)
                    || !self.slice_complete(d.binding, covered)
                {
                    continue;
                }
                self.live += 1;
                self.stats.disjuncts_created += 1;
                self.present.insert(d.binding);
            }
            if self.goal.contains(self.dfa.verdict(target)) {
                self.stats.triggers += 1;
                // Terminal for the goal: report once and seal the slice.
                if self.dfa.is_terminal_state(target, self.goal) {
                    self.live -= 1;
                    self.stats.disjuncts_collected += 1;
                    self.present.remove(&d.binding);
                    self.retired.push(d.binding);
                    continue;
                }
            }
            self.states[target as usize].push(d);
        }
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        // Incremental state-indexed GC (the [8] "collectable states"
        // technique): scan one state's set per event.
        self.collect_state(heap, self.scan_state % n);
        self.scan_state = (self.scan_state + 1) % n;
        // Prune a few retired tombstones whose objects are gone: no future
        // event can mention them, so they can never be restarted anyway.
        for _ in 0..8.min(self.retired.len()) {
            if self.retired_cursor >= self.retired.len() {
                self.retired_cursor = 0;
            }
            let b = self.retired[self.retired_cursor];
            if b.iter().any(|(_, o)| !heap.is_alive(o)) {
                self.retired.swap_remove(self.retired_cursor);
            } else {
                self.retired_cursor += 1;
            }
        }
        // Record the event instance in the disable table, pruning a few
        // dead entries.
        if self.seen.insert(binding) {
            self.seen_ring.push(binding);
        }
        for _ in 0..8.min(self.seen_ring.len()) {
            if self.seen_cursor >= self.seen_ring.len() {
                self.seen_cursor = 0;
            }
            let b = self.seen_ring[self.seen_cursor];
            if b.iter().any(|(_, o)| !heap.is_alive(o)) {
                self.seen.remove(&b);
                self.seen_ring.swap_remove(self.seen_cursor);
            } else {
                self.seen_cursor += 1;
            }
        }
    }

    /// Whether a fresh disjunct for `target`, inheriting a source that
    /// covers `covered ⊆ dom(target)`, would have the complete slice: no
    /// event instance over an uncovered sub-domain may have occurred.
    fn slice_complete(&self, target: Binding, covered: ParamSet) -> bool {
        let dom = target.domain();
        let bits = dom.0;
        let mut sub = bits;
        loop {
            let s = ParamSet(sub);
            if !s.is_empty() && !s.is_subset(covered) && self.seen.contains(&target.restrict(s)) {
                return false;
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & bits;
        }
        true
    }

    /// Removes disjuncts in `state` that can no longer reach the goal
    /// given which of their bound objects have died.
    fn collect_state(&mut self, heap: &Heap, state: usize) {
        let aliveness = &self.aliveness;
        let present = &mut self.present;
        let before = self.states[state].len();
        self.states[state].retain(|d| {
            let dead = d.binding.dead_params(heap);
            if aliveness.is_necessary(state as u32, dead) {
                true
            } else {
                present.remove(&d.binding);
                false
            }
        });
        let removed = before - self.states[state].len();
        self.live -= removed;
        self.stats.disjuncts_collected += removed as u64;
    }

    /// Runs the state-indexed GC over every state (safepoint sweep).
    pub fn full_sweep(&mut self, heap: &Heap) {
        for s in 0..self.states.len() {
            self.collect_state(heap, s);
        }
    }

    /// Currently live disjuncts.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_heap::{HeapConfig, ObjId};
    use rv_logic::ere::unsafe_iter_ere;
    use rv_logic::{Alphabet, ParamId, ParamSet};

    const C: ParamId = ParamId(0);
    const I: ParamId = ParamId(1);

    fn tm() -> (TraceMatch, Alphabet) {
        let alphabet = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
        let def = EventDef::new(
            &alphabet,
            &["c", "i"],
            vec![ParamSet::singleton(C).with(I), ParamSet::singleton(C), ParamSet::singleton(I)],
        );
        (TraceMatch::new(dfa, def, GoalSet::MATCH), alphabet)
    }

    fn alloc_n(heap: &mut Heap, n: usize) -> Vec<ObjId> {
        let cls = heap.register_class("Obj");
        let f = heap.enter_frame();
        let v = (0..n).map(|_| heap.alloc(cls)).collect();
        let _keep_rooted = f; // never exited: objects stay rooted
        v
    }

    #[test]
    fn detects_the_unsafe_iteration() {
        let (mut t, alphabet) = tm();
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 2);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        t.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])]));
        t.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        t.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        t.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(t.stats().triggers, 1);
    }

    #[test]
    fn unrelated_updates_do_not_trigger() {
        let (mut t, alphabet) = tm();
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 4);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        t.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])]));
        t.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[2]), (I, o[3])]));
        t.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[2])]));
        t.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(t.stats().triggers, 0);
    }

    #[test]
    fn update_before_create_is_part_of_the_slice() {
        let (mut t, alphabet) = tm();
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 2);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        // update create next: the slice is ?, not a match.
        t.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        t.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])]));
        t.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(t.stats().triggers, 0);
        // A further update + next matches.
        t.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        t.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(t.stats().triggers, 1);
    }

    #[test]
    fn state_indexed_gc_collects_dead_iterator_disjuncts() {
        let (mut t, alphabet) = tm();
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        for _ in 0..20 {
            let inner = heap.enter_frame();
            let iter = heap.alloc(cls);
            t.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
            t.process(&heap, ev("next"), Binding::from_pairs(&[(I, iter)]));
            heap.exit_frame(inner);
        }
        heap.collect();
        t.full_sweep(&heap);
        // Only the ⟨coll⟩ partial disjunct(s) should remain.
        assert!(t.live() <= 3, "live disjuncts: {}", t.live());
        assert!(t.stats().disjuncts_collected >= 20);
    }

    #[test]
    fn matches_the_reference_oracle_on_a_mixed_trace() {
        let (mut t, alphabet) = tm();
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 6);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        let trace = vec![
            (ev("update"), Binding::from_pairs(&[(C, o[0])])),
            (ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])])),
            (ev("create"), Binding::from_pairs(&[(C, o[2]), (I, o[3])])),
            (ev("next"), Binding::from_pairs(&[(I, o[1])])),
            (ev("update"), Binding::from_pairs(&[(C, o[0])])),
            (ev("update"), Binding::from_pairs(&[(C, o[2])])),
            (ev("next"), Binding::from_pairs(&[(I, o[1])])),
            (ev("next"), Binding::from_pairs(&[(I, o[3])])),
        ];
        for &(e, b) in &trace {
            t.process(&heap, e, b);
        }
        let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
        let oracle = rv_core::monitor_trace(&dfa, GoalSet::MATCH, &trace);
        assert_eq!(t.stats().triggers, oracle.triggers.len() as u64);
    }
}
