//! Property-based tests for the ERE plugin: the compiled DFA must agree
//! with the algebraic semantics of extended regular expressions on random
//! expressions and random traces.

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_logic::ere::Ere;
use rv_logic::event::{Alphabet, EventId};
use rv_logic::verdict::Verdict;

const EVENTS: u16 = 3;

fn alphabet() -> Alphabet {
    Alphabet::from_names(&["a", "b", "c"])
}

/// A random ERE of bounded depth.
fn ere_strategy() -> impl Strategy<Value = Ere> {
    let leaf = prop_oneof![
        (0..EVENTS).prop_map(|e| Ere::event(EventId(e))),
        Just(Ere::epsilon()),
        Just(Ere::empty()),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.concat(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ere::union([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ere::inter([a, b])),
            inner.clone().prop_map(Ere::star),
            inner.clone().prop_map(Ere::plus),
            inner.prop_map(Ere::not),
        ]
    })
}

fn trace_strategy() -> impl Strategy<Value = Vec<EventId>> {
    proptest::collection::vec((0..EVENTS).prop_map(EventId), 0..8)
}

/// Membership via iterated derivatives — the definitional semantics.
fn member(ere: &Ere, trace: &[EventId]) -> bool {
    let mut cur = ere.clone();
    for &e in trace {
        cur = cur.derivative(e);
    }
    cur.nullable()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dfa_match_agrees_with_derivative_semantics(
        ere in ere_strategy(),
        trace in trace_strategy()
    ) {
        let al = alphabet();
        let dfa = ere.compile(&al, 10_000).unwrap();
        let dfa_match = dfa.classify(&trace) == Verdict::Match;
        prop_assert_eq!(dfa_match, member(&ere, &trace));
    }

    #[test]
    fn union_is_disjunction(
        a in ere_strategy(),
        b in ere_strategy(),
        trace in trace_strategy()
    ) {
        let u = Ere::union([a.clone(), b.clone()]);
        prop_assert_eq!(
            member(&u, &trace),
            member(&a, &trace) || member(&b, &trace)
        );
    }

    #[test]
    fn intersection_is_conjunction(
        a in ere_strategy(),
        b in ere_strategy(),
        trace in trace_strategy()
    ) {
        let i = Ere::inter([a.clone(), b.clone()]);
        prop_assert_eq!(
            member(&i, &trace),
            member(&a, &trace) && member(&b, &trace)
        );
    }

    #[test]
    fn complement_is_negation(a in ere_strategy(), trace in trace_strategy()) {
        prop_assert_eq!(member(&a.clone().not(), &trace), !member(&a, &trace));
    }

    #[test]
    fn plus_is_concat_star(a in ere_strategy(), trace in trace_strategy()) {
        let plus = a.clone().plus();
        let via_star = a.clone().concat(a.star());
        prop_assert_eq!(member(&plus, &trace), member(&via_star, &trace));
    }

    #[test]
    fn fail_verdict_is_permanent(
        ere in ere_strategy(),
        trace in trace_strategy(),
        suffix in trace_strategy()
    ) {
        let al = alphabet();
        let dfa = ere.compile(&al, 10_000).unwrap();
        if dfa.classify(&trace) == Verdict::Fail {
            let mut extended = trace.clone();
            extended.extend(suffix);
            prop_assert_eq!(dfa.classify(&extended), Verdict::Fail);
        }
    }

    #[test]
    fn fail_verdict_is_semantically_justified(
        ere in ere_strategy(),
        trace in trace_strategy()
    ) {
        // Fail ⇒ no extension up to length 4 matches (a bounded check of
        // "may never match again").
        let al = alphabet();
        let dfa = ere.compile(&al, 10_000).unwrap();
        if dfa.classify(&trace) == Verdict::Fail {
            let mut stack: Vec<Vec<EventId>> = vec![trace.clone()];
            for _ in 0..4 {
                let mut next = Vec::new();
                for t in &stack {
                    prop_assert_ne!(dfa.classify(t), Verdict::Match, "trace {:?}", t);
                    for e in 0..EVENTS {
                        let mut t2 = t.clone();
                        t2.push(EventId(e));
                        next.push(t2);
                    }
                }
                stack = next;
            }
        }
    }

    #[test]
    fn unknown_verdict_has_a_bounded_witness_or_deep_future(
        ere in ere_strategy(),
        trace in trace_strategy()
    ) {
        // ? ⇒ some extension can still match: check that the DFA's
        // can-reach analysis agrees with a bounded search of depth equal
        // to the state count (pumping bound).
        let al = alphabet();
        let dfa = ere.compile(&al, 10_000).unwrap();
        if dfa.classify(&trace) == Verdict::Unknown {
            let bound = dfa.state_count() as usize + 1;
            let mut found = false;
            let mut frontier = vec![trace.clone()];
            'outer: for _ in 0..bound {
                let mut next = Vec::new();
                for t in &frontier {
                    if dfa.classify(t) == Verdict::Match {
                        found = true;
                        break 'outer;
                    }
                    for e in 0..EVENTS {
                        let mut t2 = t.clone();
                        t2.push(EventId(e));
                        next.push(t2);
                    }
                }
                frontier = next;
                // Cap the frontier to keep the test fast; the DFA states
                // reachable from here are few, so sampling suffices only
                // if exhaustive — instead dedup by DFA state.
                let mut seen = std::collections::HashSet::new();
                frontier.retain(|t| {
                    let mut s = dfa.initial();
                    for &e in t {
                        s = dfa.step(s, e);
                    }
                    seen.insert(s)
                });
            }
            prop_assert!(found, "? verdict but no match within the pumping bound");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn minimization_preserves_verdicts_on_random_eres(
        ere in ere_strategy(),
        trace in trace_strategy()
    ) {
        let al = alphabet();
        let dfa = ere.compile(&al, 10_000).unwrap();
        let min = rv_logic::minimize::minimize(&dfa);
        prop_assert!(min.state_count() <= dfa.state_count());
        prop_assert_eq!(dfa.classify(&trace), min.classify(&trace));
    }

    #[test]
    fn minimization_preserves_coenable_sets_on_random_eres(ere in ere_strategy()) {
        use rv_logic::verdict::GoalSet;
        let al = alphabet();
        let dfa = ere.compile(&al, 10_000).unwrap();
        let min = rv_logic::minimize::minimize(&dfa);
        prop_assert_eq!(dfa.coenable(GoalSet::MATCH), min.coenable(GoalSet::MATCH));
    }
}
