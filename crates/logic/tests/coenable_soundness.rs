//! Brute-force soundness of the coenable analysis (the paper's
//! Theorem 1): if the ALIVENESS formula declares a monitor unnecessary —
//! its most recent event was `e` and the parameters in `dead` are gone —
//! then **no** continuation built from still-possible events can reach
//! the goal. Checked exhaustively on random machines up to the pumping
//! bound.
//!
//! Also the complementary precision check: when ALIVENESS says
//! *necessary*, some continuation over the allowed events reaches the
//! goal from at least one state where `e` can occur (the analysis is
//! event-indexed, so this is existential over states).

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_logic::dfa::{Dfa, DfaBuilder, DEAD};
use rv_logic::event::{Alphabet, EventId};
use rv_logic::param::{EventDef, ParamId, ParamSet};
use rv_logic::verdict::{GoalSet, Verdict};

const EVENTS: usize = 3;
const STATES: usize = 4;

/// A random partial DFA over 3 events and ≤4 states, with random verdicts.
#[derive(Clone, Debug)]
struct RandomDfa {
    /// `trans[s][e]`: target state or `STATES` for "undefined".
    trans: [[usize; EVENTS]; STATES],
    /// Which states report Match.
    matching: [bool; STATES],
}

fn dfa_strategy() -> impl Strategy<Value = RandomDfa> {
    (
        proptest::array::uniform4(proptest::array::uniform3(0..=STATES)),
        proptest::array::uniform4(any::<bool>()),
    )
        .prop_map(|(trans, matching)| RandomDfa { trans, matching })
}

fn build(d: &RandomDfa) -> (Alphabet, Dfa) {
    let alphabet = Alphabet::from_names(&["a", "b", "c"]);
    let mut b = DfaBuilder::new(alphabet.clone());
    for s in 0..STATES {
        b.add_state(if d.matching[s] { Verdict::Match } else { Verdict::Unknown });
    }
    for s in 0..STATES {
        for e in 0..EVENTS {
            if d.trans[s][e] < STATES {
                b.set_transition(s as u32, EventId(e as u16), d.trans[s][e] as u32);
            }
        }
    }
    (alphabet, b.finish(0))
}

/// D: a → {x0}, b → {x1}, c → {x0, x1}.
fn event_def(alphabet: &Alphabet) -> EventDef {
    EventDef::new(
        alphabet,
        &["x0", "x1"],
        vec![
            ParamSet::singleton(ParamId(0)),
            ParamSet::singleton(ParamId(1)),
            ParamSet::singleton(ParamId(0)).with(ParamId(1)),
        ],
    )
}

/// Can any goal verdict be produced from `state` by **one or more**
/// further events whose parameters avoid `dead`, within `bound` steps?
/// Zero-step "reachability" does not count: the verdict at `state` was
/// already reported when the event that led there was processed —
/// ALIVENESS is about reaching the goal *again* (§3: "our interest is in
/// the ability to reach G again in the future").
fn goal_reachable_avoiding(
    dfa: &Dfa,
    def: &EventDef,
    goal: GoalSet,
    state: u32,
    dead: ParamSet,
    bound: usize,
) -> bool {
    let possible = |e: EventId| {
        // An event is only possible if none of its parameters are dead
        // (Definition 6 discussion: a dead object can never appear in a
        // future event).
        def.params_of(e).intersection(dead).is_empty()
    };
    // One explicit first step, then BFS.
    let mut frontier: Vec<u32> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for e in dfa.alphabet().iter() {
        if !possible(e) {
            continue;
        }
        let t = dfa.step(state, e);
        if t != DEAD && seen.insert(t) {
            frontier.push(t);
        }
    }
    for _ in 0..=bound {
        let mut next = Vec::new();
        for &s in &frontier {
            if goal.contains(dfa.verdict(s)) {
                return true;
            }
            for e in dfa.alphabet().iter() {
                if !possible(e) {
                    continue;
                }
                let t = dfa.step(s, e);
                if t != DEAD && seen.insert(t) {
                    next.push(t);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn aliveness_false_implies_goal_unreachable(
        raw in dfa_strategy(),
        dead_bits in 0u32..4
    ) {
        // Theorem 1, brute-forced: for every reachable state s and event e
        // defined at s, if ALIVENESS(e) is false under `dead`, then the
        // goal is unreachable from σ(s, e) using events avoiding `dead`.
        let (alphabet, dfa) = build(&raw);
        let def = event_def(&alphabet);
        let goal = GoalSet::MATCH;
        let dead = ParamSet(dead_bits);
        let aliveness = dfa.coenable(goal).lift(&def).aliveness();
        let reachable = dfa.reachable();
        for s in 0..dfa.state_count() {
            if !reachable[s as usize] {
                continue;
            }
            for e in alphabet.iter() {
                let t = dfa.step(s, e);
                if t == DEAD {
                    continue;
                }
                if !aliveness.is_necessary(e, dead) && !dfa.is_terminal_state(t, goal) {
                    prop_assert!(
                        !goal_reachable_avoiding(&dfa, &def, goal, t, dead, STATES + 1),
                        "state {s} --{e:?}--> {t}: flagged unnecessary but goal reachable \
                         (dead = {dead:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn aliveness_true_has_a_witness_somewhere(
        raw in dfa_strategy(),
        dead_bits in 0u32..4
    ) {
        // The event-indexed analysis is existential over occurrence
        // states: ALIVENESS(e) true (with no parameters dead beyond
        // `dead`… using dead = ∅ for the witness check) means some
        // reachable, non-terminal occurrence of e has a goal-reaching
        // continuation. With dead = ∅ this is exactly "COENABLE(e) is
        // non-empty ⇒ e occurs on some goal trace".
        let _ = dead_bits;
        let (alphabet, dfa) = build(&raw);
        let def = event_def(&alphabet);
        let goal = GoalSet::MATCH;
        let aliveness = dfa.coenable(goal).lift(&def).aliveness();
        let reachable = dfa.reachable();
        for e in alphabet.iter() {
            if !aliveness.is_necessary(e, ParamSet::EMPTY) {
                continue;
            }
            let mut witness = false;
            for s in 0..dfa.state_count() {
                if !reachable[s as usize] || dfa.is_constant_verdict(s) {
                    continue;
                }
                let t = dfa.step(s, e);
                if t != DEAD
                    && goal_reachable_avoiding(&dfa, &def, goal, t, ParamSet::EMPTY, STATES + 1)
                {
                    witness = true;
                    break;
                }
            }
            prop_assert!(witness, "ALIVENESS({e:?}) true but no goal-reaching occurrence");
        }
    }

    #[test]
    fn state_aliveness_is_at_least_as_precise_as_event_aliveness(
        raw in dfa_strategy(),
        dead_bits in 0u32..4
    ) {
        // The Tracematches-style state-indexed analysis refines the
        // event-indexed one (§3 Discussion: "theirs is more precise"):
        // whenever the state analysis keeps a binding in the state reached
        // *after* e, the event analysis must have kept it too.
        let (alphabet, dfa) = build(&raw);
        let def = event_def(&alphabet);
        let goal = GoalSet::MATCH;
        let dead = ParamSet(dead_bits);
        let event_al = dfa.coenable(goal).lift(&def).aliveness();
        let state_al = dfa.state_aliveness(goal, &def);
        let reachable = dfa.reachable();
        for s in 0..dfa.state_count() {
            if !reachable[s as usize] || dfa.is_constant_verdict(s) {
                continue;
            }
            for e in alphabet.iter() {
                let t = dfa.step(s, e);
                if t == DEAD {
                    continue;
                }
                if state_al.is_necessary(t, dead) {
                    prop_assert!(
                        event_al.is_necessary(e, dead),
                        "state analysis keeps {t} after {e:?} but event analysis collects \
                         (dead = {dead:?})"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness of instrumentation pruning: filtering a trace down to the
    /// required events never changes the final verdict (dropped events are
    /// invisible self-loops), and `can_trigger == false` means no
    /// emittable trace reaches the goal at any point.
    #[test]
    fn instrumentation_pruning_is_sound(
        raw in dfa_strategy(),
        emitted_bits in 1u64..8,
        trace in proptest::collection::vec(0u16..EVENTS as u16, 0..10)
    ) {
        use rv_logic::event::EventSet;
        use rv_logic::instrument::plan;
        let (_alphabet, dfa) = build(&raw);
        let goal = GoalSet::MATCH;
        let emitted = EventSet(emitted_bits);
        let p = plan(&dfa, goal, emitted);
        // Restrict to an emittable trace.
        let full: Vec<EventId> = trace
            .into_iter()
            .map(EventId)
            .filter(|e| emitted.contains(*e))
            .collect();
        if !p.can_trigger {
            // No prefix of any emittable trace may carry a goal verdict.
            let mut s = dfa.initial();
            prop_assert!(!goal.contains(dfa.verdict(s)));
            for &e in &full {
                s = dfa.step(s, e);
                prop_assert!(
                    !goal.contains(dfa.verdict(s)),
                    "goal reached though can_trigger is false"
                );
            }
        } else {
            let filtered: Vec<EventId> =
                full.iter().copied().filter(|e| p.required.contains(*e)).collect();
            prop_assert_eq!(
                dfa.classify(&full),
                dfa.classify(&filtered),
                "pruned instrumentation changed the verdict"
            );
        }
    }
}
