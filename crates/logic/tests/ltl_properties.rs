//! Property-based tests for the LTL plugin: classical equivalences must
//! hold verdict-for-verdict on the compiled monitors, and monitoring
//! verdicts must behave monotonically (fail/match are absorbing).

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_logic::event::{Alphabet, EventId};
use rv_logic::ltl::Ltl;
use rv_logic::verdict::Verdict;

const EVENTS: u16 = 3;

fn alphabet() -> Alphabet {
    Alphabet::from_names(&["p", "q", "r"])
}

/// Random *future-only* formulas (past operators are covered separately:
/// negation under past is value-level, not dualized).
fn future_ltl() -> impl Strategy<Value = Ltl> {
    let leaf = prop_oneof![
        (0..EVENTS).prop_map(|e| Ltl::Event(EventId(e))),
        Just(Ltl::True),
        Just(Ltl::False),
    ];
    leaf.prop_recursive(4, 40, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| a.negated()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.clone().prop_map(|a| Ltl::Next(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::Until(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ltl::Release(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| a.always()),
            inner.prop_map(|a| a.eventually()),
        ]
    })
}

/// Random formulas that may also use past operators over propositional
/// bodies.
fn past_ltl() -> impl Strategy<Value = Ltl> {
    let atom = (0..EVENTS).prop_map(|e| Ltl::Event(EventId(e)));
    let past = atom.clone().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| a.negated()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.prev()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::Since(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Ltl::Once(Box::new(a))),
            inner.prop_map(|a| Ltl::Historically(Box::new(a))),
        ]
    });
    // A safety wrapper: [](past-body) or [](atom => past-body).
    (atom, past).prop_map(|(a, p)| a.implies(p).always())
}

fn trace_strategy() -> impl Strategy<Value = Vec<EventId>> {
    proptest::collection::vec((0..EVENTS).prop_map(EventId), 0..7)
}

fn verdicts_agree(lhs: &Ltl, rhs: &Ltl, trace: &[EventId]) -> Result<(), TestCaseError> {
    let al = alphabet();
    let dl = lhs.compile(&al, 20_000).unwrap();
    let dr = rhs.compile(&al, 20_000).unwrap();
    prop_assert_eq!(dl.classify(trace), dr.classify(trace), "trace {:?}", trace);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn double_negation(f in future_ltl(), trace in trace_strategy()) {
        verdicts_agree(&f.clone().negated().negated(), &f, &trace)?;
    }

    #[test]
    fn until_release_duality(
        a in future_ltl(),
        b in future_ltl(),
        trace in trace_strategy()
    ) {
        let lhs = Ltl::Until(Box::new(a.clone()), Box::new(b.clone())).negated();
        let rhs = Ltl::Release(Box::new(a.negated()), Box::new(b.negated()));
        verdicts_agree(&lhs, &rhs, &trace)?;
    }

    #[test]
    fn always_eventually_duality(f in future_ltl(), trace in trace_strategy()) {
        let lhs = f.clone().always().negated();
        let rhs = f.negated().eventually();
        verdicts_agree(&lhs, &rhs, &trace)?;
    }

    #[test]
    fn eventually_is_true_until(f in future_ltl(), trace in trace_strategy()) {
        let lhs = f.clone().eventually();
        let rhs = Ltl::Until(Box::new(Ltl::True), Box::new(f));
        verdicts_agree(&lhs, &rhs, &trace)?;
    }

    #[test]
    fn always_is_false_release(f in future_ltl(), trace in trace_strategy()) {
        let lhs = f.clone().always();
        let rhs = Ltl::Release(Box::new(Ltl::False), Box::new(f));
        verdicts_agree(&lhs, &rhs, &trace)?;
    }

    #[test]
    fn de_morgan(
        a in future_ltl(),
        b in future_ltl(),
        trace in trace_strategy()
    ) {
        let lhs = a.clone().and(b.clone()).negated();
        let rhs = a.negated().or(b.negated());
        verdicts_agree(&lhs, &rhs, &trace)?;
    }

    #[test]
    fn verdicts_are_absorbing(f in future_ltl(), trace in trace_strategy(), e in 0..EVENTS) {
        let al = alphabet();
        let d = f.compile(&al, 20_000).unwrap();
        let v = d.classify(&trace);
        if v == Verdict::Fail || v == Verdict::Match {
            let mut t2 = trace.clone();
            t2.push(EventId(e));
            prop_assert_eq!(d.classify(&t2), v);
        }
    }

    #[test]
    fn past_safety_formulas_compile_and_are_absorbing(
        f in past_ltl(),
        trace in trace_strategy(),
        e in 0..EVENTS
    ) {
        let al = alphabet();
        let d = f.compile(&al, 20_000).unwrap();
        let v = d.classify(&trace);
        if v == Verdict::Fail {
            let mut t2 = trace.clone();
            t2.push(EventId(e));
            prop_assert_eq!(d.classify(&t2), Verdict::Fail);
        }
    }

    #[test]
    fn once_is_true_since(trace in trace_strategy()) {
        // <*>p ≡ true S p, checked through the []( r => · ) safety wrapper.
        let al = alphabet();
        let p = Ltl::Event(EventId(0));
        let r = Ltl::Event(EventId(2));
        let lhs = r.clone().implies(Ltl::Once(Box::new(p.clone()))).always();
        let rhs = r
            .implies(Ltl::Since(Box::new(Ltl::True), Box::new(p)))
            .always();
        let dl = lhs.compile(&al, 20_000).unwrap();
        let dr = rhs.compile(&al, 20_000).unwrap();
        prop_assert_eq!(dl.classify(&trace), dr.classify(&trace));
    }

    #[test]
    fn historically_dual_of_once(trace in trace_strategy()) {
        // [*]p ≡ ¬<*>¬p under the safety wrapper.
        let al = alphabet();
        let p = Ltl::Event(EventId(0));
        let r = Ltl::Event(EventId(2));
        let lhs = r.clone().implies(Ltl::Historically(Box::new(p.clone()))).always();
        let rhs = r
            .implies(Ltl::Once(Box::new(p.negated())).negated())
            .always();
        let dl = lhs.compile(&al, 20_000).unwrap();
        let dr = rhs.compile(&al, 20_000).unwrap();
        prop_assert_eq!(dl.classify(&trace), dr.classify(&trace));
    }
}
