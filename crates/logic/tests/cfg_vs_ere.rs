//! Cross-plugin consistency: a *right-linear* grammar denotes a regular
//! language, so the Earley-based CFG monitor and the derivative-based ERE
//! monitor must classify every trace identically — two completely
//! different recognizer implementations checking each other.

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_logic::cfg::{CfgMonitor, Grammar, Production, Symbol};
use rv_logic::ere::Ere;
use rv_logic::event::{Alphabet, EventId};
use rv_logic::verdict::Verdict;

const EVENTS: u16 = 2;

fn alphabet() -> Alphabet {
    Alphabet::from_names(&["a", "b"])
}

/// A random regular expression built from the operators that translate
/// directly to right-linear rules: events, concatenation, union, star.
#[derive(Clone, Debug)]
enum Reg {
    Event(u16),
    Concat(Box<Reg>, Box<Reg>),
    Union(Box<Reg>, Box<Reg>),
    Star(Box<Reg>),
}

fn reg_strategy() -> impl Strategy<Value = Reg> {
    let leaf = (0..EVENTS).prop_map(Reg::Event);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Reg::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Reg::Union(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Reg::Star(Box::new(a))),
        ]
    })
}

fn to_ere(r: &Reg) -> Ere {
    match r {
        Reg::Event(e) => Ere::event(EventId(*e)),
        Reg::Concat(a, b) => to_ere(a).concat(to_ere(b)),
        Reg::Union(a, b) => Ere::union([to_ere(a), to_ere(b)]),
        Reg::Star(a) => to_ere(a).star(),
    }
}

/// Builds grammar rules for `r` such that nonterminal `start` derives
/// exactly `L(r) · L(cont)`, where `cont` is a continuation nonterminal
/// (or ε when `cont` is `None`). Standard regex→right-linear translation.
struct GrammarBuilder {
    names: Vec<String>,
    productions: Vec<Production>,
}

impl GrammarBuilder {
    fn fresh(&mut self) -> u32 {
        let id = self.names.len() as u32;
        self.names.push(format!("N{id}"));
        id
    }

    /// Emits rules so that `start ⇒* w · (cont or ε)` for every `w ∈ L(r)`.
    fn emit(&mut self, r: &Reg, start: u32, cont: Option<u32>) {
        match r {
            Reg::Event(e) => {
                let mut rhs = vec![Symbol::T(EventId(*e))];
                if let Some(k) = cont {
                    rhs.push(Symbol::Nt(k));
                }
                self.productions.push(Production { lhs: start, rhs });
            }
            Reg::Concat(a, b) => {
                let mid = self.fresh();
                self.emit(a, start, Some(mid));
                self.emit(b, mid, cont);
            }
            Reg::Union(a, b) => {
                self.emit(a, start, cont);
                self.emit(b, start, cont);
            }
            Reg::Star(a) => {
                // A dedicated loop-head nonterminal, so the loop cannot
                // capture other alternatives that share `start`:
                //   start → head;  head → cont/ε;  body returns to head.
                let head = self.fresh();
                self.productions.push(Production { lhs: start, rhs: vec![Symbol::Nt(head)] });
                let exit = match cont {
                    Some(k) => vec![Symbol::Nt(k)],
                    None => vec![],
                };
                self.productions.push(Production { lhs: head, rhs: exit });
                self.emit(a, head, Some(head));
            }
        }
    }
}

fn to_grammar(r: &Reg) -> Grammar {
    let mut b = GrammarBuilder { names: vec!["S".to_owned()], productions: Vec::new() };
    b.emit(r, 0, None);
    Grammar::new(&b.names, 0, b.productions).expect("translated grammar is well-formed")
}

fn traces(max_len: usize) -> Vec<Vec<EventId>> {
    let mut all = vec![vec![]];
    let mut layer = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for t in &layer {
            for e in 0..EVENTS {
                let mut t2 = t.clone();
                t2.push(EventId(e));
                next.push(t2);
            }
        }
        all.extend(next.iter().cloned());
        layer = next;
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn earley_and_derivatives_agree_on_regular_languages(r in reg_strategy()) {
        let al = alphabet();
        let ere = to_ere(&r);
        let dfa = ere.compile(&al, 10_000).unwrap();
        let grammar = to_grammar(&r);
        let cfg = CfgMonitor::compile(&grammar, &al).unwrap();
        for trace in traces(5) {
            let via_dfa = dfa.classify(&trace);
            let via_earley = cfg.classify(&trace);
            // Match verdicts must agree exactly. Fail verdicts may differ
            // in *timing* precision: the DFA knows the whole language,
            // while the Earley chart reports fail only when the prefix is
            // not viable — both are sound, so compare match and the
            // fail/unknown downgrade direction.
            prop_assert_eq!(
                via_dfa == Verdict::Match,
                via_earley == Verdict::Match,
                "membership differs on {:?} for {:?}",
                trace,
                r
            );
            if via_earley == Verdict::Fail {
                prop_assert_eq!(
                    via_dfa, Verdict::Fail,
                    "Earley failed a viable prefix {:?} for {:?}", trace, r
                );
            }
        }
    }

    #[test]
    fn reduced_grammars_have_the_viable_prefix_property(r in reg_strategy()) {
        // For every trace the DFA calls Fail, the Earley monitor must also
        // fail no later than the DFA's fail point plus zero (reduction
        // guarantees emptiness of the chart exactly at non-viability).
        let al = alphabet();
        let dfa = to_ere(&r).compile(&al, 10_000).unwrap();
        let grammar = to_grammar(&r);
        let cfg = CfgMonitor::compile(&grammar, &al).unwrap();
        for trace in traces(4) {
            if dfa.classify(&trace) == Verdict::Fail {
                prop_assert_eq!(
                    cfg.classify(&trace),
                    Verdict::Fail,
                    "chart stayed alive on non-viable {:?} for {:?}",
                    trace,
                    r
                );
            }
        }
    }
}
