//! Verdict categories and goal sets.
//!
//! Definition 2 allows an arbitrary verdict category set `C`; every
//! formalism in the paper (and in this reproduction) classifies traces into
//! the three categories the paper uses for `UnsafeIter`: `match`, `fail`,
//! and `?` (unknown). FSM specs with named handler states are mapped onto
//! these three by the spec compiler.

use std::fmt;

/// The verdict a monitor assigns to the trace consumed so far.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub enum Verdict {
    /// The trace is in the goal language (e.g. matches the ERE, reaches the
    /// FSM handler state, violates the LTL formula when the goal is `fail`).
    Match,
    /// No extension of the trace can ever reach `Match` again.
    Fail,
    /// Neither of the above — the paper's `?` category.
    #[default]
    Unknown,
}

impl Verdict {
    /// A stable one-byte encoding for durability formats (journals and
    /// snapshots). The values are part of the on-disk format and must
    /// never be renumbered.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            Verdict::Match => 1,
            Verdict::Fail => 2,
            Verdict::Unknown => 3,
        }
    }

    /// Decodes [`Verdict::to_byte`]; `None` on an unknown byte (corrupt
    /// or future-version input).
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Verdict> {
        match b {
            1 => Some(Verdict::Match),
            2 => Some(Verdict::Fail),
            3 => Some(Verdict::Unknown),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Match => "match",
            Verdict::Fail => "fail",
            Verdict::Unknown => "?",
        };
        f.write_str(s)
    }
}

/// A set of verdict categories of interest — the `G ⊆ C` of Definition 10.
///
/// The goal determines both when handlers fire and which traces "count" for
/// the coenable analysis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GoalSet(u8);

impl GoalSet {
    /// The goal `{match}` — used by ERE/CFG `@match` handlers.
    pub const MATCH: GoalSet = GoalSet(1);
    /// The goal `{fail}` — used by LTL `@violation` / CFG `@fail` handlers.
    pub const FAIL: GoalSet = GoalSet(2);

    /// An empty goal set (no verdict is of interest).
    #[must_use]
    pub fn empty() -> GoalSet {
        GoalSet(0)
    }

    /// Builds a goal set from verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `Unknown` is given: "unknown" is the absence of a verdict
    /// and can never be a goal.
    #[must_use]
    pub fn from_verdicts(verdicts: &[Verdict]) -> GoalSet {
        let mut g = GoalSet(0);
        for &v in verdicts {
            g = g.with(v);
        }
        g
    }

    /// Adds a verdict to the goal set.
    ///
    /// # Panics
    ///
    /// Panics if `v` is [`Verdict::Unknown`].
    #[must_use]
    pub fn with(self, v: Verdict) -> GoalSet {
        match v {
            Verdict::Match => GoalSet(self.0 | 1),
            Verdict::Fail => GoalSet(self.0 | 2),
            Verdict::Unknown => panic!("`?` cannot be a goal category"),
        }
    }

    /// Whether `v` is a goal verdict.
    #[must_use]
    pub fn contains(self, v: Verdict) -> bool {
        match v {
            Verdict::Match => self.0 & 1 != 0,
            Verdict::Fail => self.0 & 2 != 0,
            Verdict::Unknown => false,
        }
    }

    /// Whether no verdict is of interest.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for GoalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in [Verdict::Match, Verdict::Fail] {
            if self.contains(v) {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_membership() {
        let g = GoalSet::MATCH;
        assert!(g.contains(Verdict::Match));
        assert!(!g.contains(Verdict::Fail));
        assert!(!g.contains(Verdict::Unknown));
        let g2 = g.with(Verdict::Fail);
        assert!(g2.contains(Verdict::Fail));
        assert!(GoalSet::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot be a goal")]
    fn unknown_is_not_a_goal() {
        let _ = GoalSet::empty().with(Verdict::Unknown);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Verdict::Match.to_string(), "match");
        assert_eq!(Verdict::Unknown.to_string(), "?");
        assert_eq!(GoalSet::MATCH.with(Verdict::Fail).to_string(), "{match, fail}");
    }

    #[test]
    fn from_verdicts_builds_union() {
        let g = GoalSet::from_verdicts(&[Verdict::Match, Verdict::Fail]);
        assert!(g.contains(Verdict::Match) && g.contains(Verdict::Fail));
    }

    #[test]
    fn verdict_byte_codec_round_trips() {
        for v in [Verdict::Match, Verdict::Fail, Verdict::Unknown] {
            assert_eq!(Verdict::from_byte(v.to_byte()), Some(v));
        }
        assert_eq!(Verdict::from_byte(0), None);
        assert_eq!(Verdict::from_byte(4), None);
    }
}
