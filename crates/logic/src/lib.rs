//! Property formalisms and static analyses for parametric runtime
//! monitoring — the logic-plugin layer of the PLDI'11 RV reproduction.
//!
//! This crate implements, from scratch:
//!
//! * the four specification plugins of the paper — [`fsm`] (Figure 2),
//!   [`ere`] (Figure 3, via Brzozowski derivatives), [`ltl`] (Figure 2's
//!   temporal formula, with past operators, via formula progression), and
//!   [`mod@cfg`] (Figure 4, via incremental Earley recognition);
//! * the shared deterministic backbone [`dfa::Dfa`] that the first three
//!   compile into;
//! * the paper's §3 static analyses: the SEEABLE/COENABLE fixpoint for
//!   finite-state properties ([`dfa::Dfa::coenable`]), the `G`/`C` fixpoint
//!   for context-free properties ([`cfg::Grammar::coenable`]), the
//!   `D`-lifting to parameter sets (Definition 11,
//!   [`coenable::CoenableSets::lift`]), and the minimized boolean
//!   [`coenable::Aliveness`] formula evaluated by notified monitors
//!   (§4.2.2);
//! * the state-indexed variant ([`dfa::Dfa::state_aliveness`]) used by the
//!   Tracematches-style baseline;
//! * the formalism-independent monitor interface ([`formalism::Formalism`])
//!   consumed by the parametric engine.
//!
//! # Example: the paper's worked coenable sets
//!
//! ```
//! use rv_logic::ere::unsafe_iter_ere;
//! use rv_logic::event::Alphabet;
//! use rv_logic::verdict::GoalSet;
//!
//! let alphabet = Alphabet::from_names(&["create", "update", "next"]);
//! let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000)?;
//! let coenable = dfa.coenable(GoalSet::MATCH);
//! // COENABLE(update) = {{next}, {next, update}, {next, create, update}}
//! let update = alphabet.lookup("update").unwrap();
//! assert_eq!(coenable.of(update).len(), 3);
//! # Ok::<(), rv_logic::ere::EreError>(())
//! ```

pub mod cfg;
pub mod coenable;
pub mod dfa;
pub mod ere;
pub mod event;
pub mod formalism;
pub mod fsm;
pub mod instrument;
pub mod ltl;
pub mod minimize;
pub mod param;
pub mod verdict;

pub use crate::coenable::{Aliveness, CoenableSets, SetFamily};
pub use crate::event::{Alphabet, EventId, EventSet};
pub use crate::formalism::{AnyFormalism, AnyState, Formalism};
pub use crate::param::{EventDef, ParamId, ParamSet};
pub use crate::verdict::{GoalSet, Verdict};
