//! Instrumentation pruning — the §6 outlook ("static analyses of the
//! program to monitor … can be used to remove unnecessary instrumentation
//! and thus not even generate many of the monitors"), in the
//! Clara-flavoured form that needs only one fact about the program: the
//! set of event kinds it can emit at all.
//!
//! Given a property automaton, a goal, and the emittable event set, the
//! analysis answers: *which events need instrumentation?* An event can be
//! skipped when removing it cannot change any goal report — either the
//! goal is unreachable altogether using emittable events, or the event
//! never occurs on any emittable goal path and never diverts one (it has
//! no effect the monitor could observe on the way to a goal).

use crate::dfa::{Dfa, DEAD};
use crate::event::EventSet;
use crate::verdict::GoalSet;

/// The result of the pruning analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstrumentationPlan {
    /// Events that must stay instrumented.
    pub required: EventSet,
    /// Whether the property can trigger *at all* given the emittable
    /// events. When `false`, no instrumentation is needed and no monitor
    /// will ever be created.
    pub can_trigger: bool,
}

/// Computes the instrumentation plan for `dfa` with `goal`, assuming the
/// program can emit exactly the events in `emitted`.
///
/// Soundness criterion: running the monitor on any emittable trace
/// restricted to `required` produces a goal report iff running it on the
/// full trace does. This holds because an event is only dropped when, in
/// the sub-automaton reachable via emittable events, every transition on
/// it is a self-loop on states from which the event cannot influence goal
/// reachability — conservatively approximated here as: the event appears
/// on **no** reachable transition that changes state or leads toward (or
/// away from) the goal.
#[must_use]
pub fn plan(dfa: &Dfa, goal: GoalSet, emitted: EventSet) -> InstrumentationPlan {
    // Reachability using emittable events only.
    let n = dfa.state_count() as usize;
    let mut reach = vec![false; n];
    reach[dfa.initial() as usize] = true;
    let mut stack = vec![dfa.initial()];
    while let Some(s) = stack.pop() {
        for e in dfa.alphabet().iter() {
            if !emitted.contains(e) {
                continue;
            }
            let t = dfa.step(s, e);
            if t != DEAD && !reach[t as usize] {
                reach[t as usize] = true;
                stack.push(t);
            }
        }
    }
    // Goal reachability within the emittable sub-automaton, including the
    // dead sink when fail ∈ goal (falling off the machine is observable —
    // but only via an instrumented event, which is the point).
    let fail_goal = goal.contains(crate::verdict::Verdict::Fail);
    let mut can_goal = vec![false; n];
    for s in 0..n {
        can_goal[s] = goal.contains(dfa.verdict(s as u32));
    }
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..n {
            if can_goal[s] {
                continue;
            }
            for e in dfa.alphabet().iter() {
                if !emitted.contains(e) {
                    continue;
                }
                let t = dfa.step(s as u32, e);
                let hit = if t == DEAD { fail_goal } else { can_goal[t as usize] };
                if hit {
                    can_goal[s] = true;
                    changed = true;
                    break;
                }
            }
        }
    }
    let can_trigger = reach
        .iter()
        .enumerate()
        .any(|(s, &r)| r && can_goal[s] && !goal.contains(dfa.verdict(s as u32)))
        || (reach[dfa.initial() as usize] && can_goal[dfa.initial() as usize]);
    if !can_trigger {
        return InstrumentationPlan { required: EventSet::EMPTY, can_trigger: false };
    }
    // An emittable event is required unless every reachable occurrence is
    // a pure self-loop (state unchanged ⇒ verdict unchanged ⇒ dropping it
    // is invisible).
    let mut required = EventSet::EMPTY;
    for e in dfa.alphabet().iter() {
        if !emitted.contains(e) {
            continue;
        }
        let mut observable = false;
        for s in 0..n {
            if !reach[s] {
                continue;
            }
            let t = dfa.step(s as u32, e);
            if t == DEAD {
                // Falling off the machine flips the verdict to fail:
                // observable whenever the state was not already failed.
                if dfa.verdict(s as u32) != crate::verdict::Verdict::Fail {
                    observable = true;
                    break;
                }
            } else if t != s as u32 {
                observable = true;
                break;
            }
        }
        if observable {
            required = required.with(e);
        }
    }
    InstrumentationPlan { required, can_trigger: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ere::unsafe_iter_ere;
    use crate::event::Alphabet;

    fn unsafe_iter() -> (Alphabet, Dfa) {
        let a = Alphabet::from_names(&["create", "update", "next"]);
        let d = unsafe_iter_ere(&a).compile(&a, 1_000).unwrap();
        (a, d)
    }

    #[test]
    fn full_alphabet_requires_everything_for_unsafe_iter() {
        let (a, d) = unsafe_iter();
        let p = plan(&d, GoalSet::MATCH, a.universe());
        assert!(p.can_trigger);
        assert_eq!(p.required, a.universe(), "all three events shape the verdict");
    }

    #[test]
    fn no_create_means_no_instrumentation_at_all() {
        // A program that never creates iterators can never match
        // UNSAFEITER: drop every probe.
        let (a, d) = unsafe_iter();
        let emitted: EventSet =
            [a.lookup("update").unwrap(), a.lookup("next").unwrap()].into_iter().collect();
        let p = plan(&d, GoalSet::MATCH, emitted);
        assert!(!p.can_trigger);
        assert!(p.required.is_empty());
    }

    #[test]
    fn no_update_means_no_instrumentation_at_all() {
        let (a, d) = unsafe_iter();
        let emitted: EventSet =
            [a.lookup("create").unwrap(), a.lookup("next").unwrap()].into_iter().collect();
        let p = plan(&d, GoalSet::MATCH, emitted);
        assert!(!p.can_trigger, "create next* can never complete the pattern");
    }

    #[test]
    fn self_loop_only_events_are_dropped() {
        // Machine: s0 --a--> s1(match); b loops on s0 and s1. A program
        // emitting {a, b} only needs `a` instrumented.
        use crate::dfa::DfaBuilder;
        use crate::verdict::Verdict;
        let al = Alphabet::from_names(&["a", "b"]);
        let ea = al.lookup("a").unwrap();
        let eb = al.lookup("b").unwrap();
        let mut b = DfaBuilder::new(al.clone());
        let s0 = b.add_state(Verdict::Unknown);
        let s1 = b.add_state(Verdict::Match);
        b.set_transition(s0, ea, s1);
        b.set_transition(s0, eb, s0);
        b.set_transition(s1, eb, s1);
        b.set_transition(s1, ea, s1);
        let d = b.finish(s0);
        let p = plan(&d, GoalSet::MATCH, al.universe());
        assert!(p.can_trigger);
        assert_eq!(p.required, EventSet::singleton(ea), "b never changes any state");
    }

    #[test]
    fn fail_goal_counts_the_dead_sink() {
        // HASNEXT-style partial machine with goal fail: falling off is the
        // report, so the event that falls off is required.
        use crate::dfa::DfaBuilder;
        use crate::verdict::Verdict;
        let al = Alphabet::from_names(&["ok", "boom"]);
        let ok = al.lookup("ok").unwrap();
        let mut b = DfaBuilder::new(al.clone());
        let s0 = b.add_state(Verdict::Unknown);
        b.set_transition(s0, ok, s0);
        // `boom` has no transition: it falls to the dead sink (fail).
        let d = b.finish(s0);
        let p = plan(&d, GoalSet::FAIL, al.universe());
        assert!(p.can_trigger);
        assert!(p.required.contains(al.lookup("boom").unwrap()));
        assert!(!p.required.contains(ok), "ok only self-loops");
    }

    #[test]
    fn unreachable_goals_disable_the_property() {
        use crate::dfa::DfaBuilder;
        use crate::verdict::Verdict;
        let al = Alphabet::from_names(&["a"]);
        let mut b = DfaBuilder::new(al.clone());
        let s0 = b.add_state(Verdict::Unknown);
        b.set_transition(s0, al.lookup("a").unwrap(), s0);
        let d = b.finish(s0);
        // Goal match is unreachable: nothing to instrument.
        let p = plan(&d, GoalSet::MATCH, al.universe());
        assert!(!p.can_trigger);
        assert!(p.required.is_empty());
    }
}
