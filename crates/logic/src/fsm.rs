//! The `fsm` plugin: named finite state machines as written in RV specs
//! (paper Figure 2).
//!
//! An [`FsmSpec`] lists states in declaration order — the first is the
//! initial state, as in the paper — each with its outgoing transitions and
//! a verdict category. Compilation validates the machine and produces the
//! shared [`Dfa`] backbone.

use std::collections::HashMap;
use std::fmt;

use crate::dfa::{Dfa, DfaBuilder};
use crate::event::Alphabet;
use crate::verdict::Verdict;

/// One state of an [`FsmSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsmState {
    /// State name, unique within the machine.
    pub name: String,
    /// The verdict category reported in this state. States that fire a
    /// handler (e.g. the paper's `error` state with an `@error` handler)
    /// carry the goal verdict.
    pub verdict: Verdict,
    /// `(event name, target state name)` pairs; at most one per event.
    pub transitions: Vec<(String, String)>,
}

/// A named finite state machine specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsmSpec {
    states: Vec<FsmState>,
}

/// Errors detected while validating an [`FsmSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsmError {
    /// The machine has no states.
    Empty,
    /// Two states share a name.
    DuplicateState(String),
    /// A transition targets a state that does not exist.
    UnknownTarget {
        /// The state declaring the transition.
        state: String,
        /// The event label of the transition.
        event: String,
        /// The missing target state.
        target: String,
    },
    /// A transition uses an event not in the property alphabet.
    UnknownEvent {
        /// The state declaring the transition.
        state: String,
        /// The undeclared event.
        event: String,
    },
    /// A state has two transitions on the same event (the machine must be
    /// deterministic).
    NondeterministicEvent {
        /// The offending state.
        state: String,
        /// The duplicated event.
        event: String,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::Empty => write!(f, "finite state machine has no states"),
            FsmError::DuplicateState(s) => write!(f, "duplicate state `{s}`"),
            FsmError::UnknownTarget { state, event, target } => {
                write!(
                    f,
                    "state `{state}`: transition on `{event}` targets unknown state `{target}`"
                )
            }
            FsmError::UnknownEvent { state, event } => {
                write!(f, "state `{state}`: transition on undeclared event `{event}`")
            }
            FsmError::NondeterministicEvent { state, event } => {
                write!(f, "state `{state}`: multiple transitions on event `{event}`")
            }
        }
    }
}

impl std::error::Error for FsmError {}

impl FsmSpec {
    /// Starts an empty machine.
    #[must_use]
    pub fn new() -> Self {
        FsmSpec::default()
    }

    /// Appends a state. The first state added is the initial state.
    pub fn add_state(&mut self, state: FsmState) -> &mut Self {
        self.states.push(state);
        self
    }

    /// Convenience: appends a state from parts.
    pub fn state(
        &mut self,
        name: &str,
        verdict: Verdict,
        transitions: &[(&str, &str)],
    ) -> &mut Self {
        self.add_state(FsmState {
            name: name.to_owned(),
            verdict,
            transitions: transitions.iter().map(|&(e, t)| (e.to_owned(), t.to_owned())).collect(),
        })
    }

    /// The states in declaration order.
    #[must_use]
    pub fn states(&self) -> &[FsmState] {
        &self.states
    }

    /// Validates the machine against `alphabet` and compiles it to a
    /// [`Dfa`]. State ids follow declaration order; the initial state is 0.
    ///
    /// # Errors
    ///
    /// Returns the first [`FsmError`] found, in declaration order.
    pub fn compile(&self, alphabet: &Alphabet) -> Result<Dfa, FsmError> {
        if self.states.is_empty() {
            return Err(FsmError::Empty);
        }
        let mut index: HashMap<&str, u32> = HashMap::new();
        for (i, st) in self.states.iter().enumerate() {
            if index.insert(st.name.as_str(), i as u32).is_some() {
                return Err(FsmError::DuplicateState(st.name.clone()));
            }
        }
        let mut b = DfaBuilder::new(alphabet.clone());
        for st in &self.states {
            b.add_named_state(st.verdict, &st.name);
        }
        for (i, st) in self.states.iter().enumerate() {
            let mut seen = vec![false; alphabet.len()];
            for (event, target) in &st.transitions {
                let e = alphabet.lookup(event).ok_or_else(|| FsmError::UnknownEvent {
                    state: st.name.clone(),
                    event: event.clone(),
                })?;
                if seen[e.as_usize()] {
                    return Err(FsmError::NondeterministicEvent {
                        state: st.name.clone(),
                        event: event.clone(),
                    });
                }
                seen[e.as_usize()] = true;
                let t = *index.get(target.as_str()).ok_or_else(|| FsmError::UnknownTarget {
                    state: st.name.clone(),
                    event: event.clone(),
                    target: target.clone(),
                })?;
                b.set_transition(i as u32, e, t);
            }
        }
        Ok(b.finish(0))
    }
}

/// Builds the paper's Figure 1/2 HASNEXT machine (useful in tests, examples
/// and benchmarks). The `error` state carries [`Verdict::Match`] so the
/// `@error` handler corresponds to goal `{match}`.
///
/// Events: `hasnexttrue`, `hasnextfalse`, `next`.
#[must_use]
pub fn has_next_fsm() -> (Alphabet, FsmSpec) {
    let alphabet = Alphabet::from_names(&["hasnexttrue", "hasnextfalse", "next"]);
    let mut spec = FsmSpec::new();
    spec.state(
        "unknown",
        Verdict::Unknown,
        &[("hasnexttrue", "more"), ("hasnextfalse", "none"), ("next", "error")],
    )
    .state("more", Verdict::Unknown, &[("hasnexttrue", "more"), ("next", "unknown")])
    .state("none", Verdict::Unknown, &[("hasnextfalse", "none"), ("next", "error")])
    .state("error", Verdict::Match, &[]);
    (alphabet, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::param::{EventDef, ParamId, ParamSet};
    use crate::verdict::GoalSet;

    #[test]
    fn has_next_machine_follows_figure_1() {
        let (a, spec) = has_next_fsm();
        let d = spec.compile(&a).unwrap();
        let ev = |n: &str| a.lookup(n).unwrap();
        // hasnexttrue next: safe.
        assert_eq!(d.classify(&[ev("hasnexttrue"), ev("next")]), Verdict::Unknown);
        // next with no check: error (match the goal).
        assert_eq!(d.classify(&[ev("next")]), Verdict::Match);
        // hasnextfalse next: error.
        assert_eq!(d.classify(&[ev("hasnextfalse"), ev("next")]), Verdict::Match);
        // more → next → unknown → next → error.
        assert_eq!(d.classify(&[ev("hasnexttrue"), ev("next"), ev("next")]), Verdict::Match);
        assert_eq!(d.state_name(0), "unknown");
        assert_eq!(d.state_name(3), "error");
    }

    #[test]
    fn has_next_coenable_needs_the_iterator_alive() {
        let (a, spec) = has_next_fsm();
        let d = spec.compile(&a).unwrap();
        let def = EventDef::new(
            &a,
            &["i"],
            vec![
                ParamSet::singleton(ParamId(0)),
                ParamSet::singleton(ParamId(0)),
                ParamSet::singleton(ParamId(0)),
            ],
        );
        let aliveness = d.coenable(GoalSet::MATCH).lift(&def).aliveness();
        let dead_i = ParamSet::singleton(ParamId(0));
        for e in a.iter() {
            // Every future needs the iterator: once it dies, no monitor for
            // HASNEXT is necessary — this is why Fig. 10 shows nearly all
            // HASNEXT monitors flagged.
            assert!(!aliveness.is_necessary(e, dead_i));
        }
        // After the error state is reached via `next`, continuations that
        // re-reach error exist only from unknown/none... from error itself
        // there are none, but next also fires from unknown/none/more.
        assert!(aliveness.is_necessary(a.lookup("next").unwrap(), ParamSet::EMPTY));
    }

    #[test]
    fn compile_rejects_duplicate_states() {
        let a = Alphabet::from_names(&["e"]);
        let mut s = FsmSpec::new();
        s.state("x", Verdict::Unknown, &[]).state("x", Verdict::Unknown, &[]);
        assert_eq!(s.compile(&a).unwrap_err(), FsmError::DuplicateState("x".into()));
    }

    #[test]
    fn compile_rejects_unknown_target() {
        let a = Alphabet::from_names(&["e"]);
        let mut s = FsmSpec::new();
        s.state("x", Verdict::Unknown, &[("e", "nope")]);
        assert!(matches!(s.compile(&a).unwrap_err(), FsmError::UnknownTarget { .. }));
    }

    #[test]
    fn compile_rejects_unknown_event() {
        let a = Alphabet::from_names(&["e"]);
        let mut s = FsmSpec::new();
        s.state("x", Verdict::Unknown, &[("zap", "x")]);
        assert!(matches!(s.compile(&a).unwrap_err(), FsmError::UnknownEvent { .. }));
    }

    #[test]
    fn compile_rejects_nondeterminism() {
        let a = Alphabet::from_names(&["e"]);
        let mut s = FsmSpec::new();
        s.state("x", Verdict::Unknown, &[("e", "x"), ("e", "y")]).state("y", Verdict::Unknown, &[]);
        assert!(matches!(s.compile(&a).unwrap_err(), FsmError::NondeterministicEvent { .. }));
    }

    #[test]
    fn compile_rejects_empty_machine() {
        let a = Alphabet::from_names(&["e"]);
        assert_eq!(FsmSpec::new().compile(&a).unwrap_err(), FsmError::Empty);
    }

    #[test]
    fn first_state_is_initial() {
        let a = Alphabet::from_names(&["e"]);
        let mut s = FsmSpec::new();
        s.state("start", Verdict::Unknown, &[("e", "done")]).state("done", Verdict::Match, &[]);
        let d = s.compile(&a).unwrap();
        assert_eq!(d.initial(), 0);
        assert_eq!(d.classify(&[EventId(0)]), Verdict::Match);
    }

    #[test]
    fn errors_render_usefully() {
        let e =
            FsmError::UnknownTarget { state: "s".into(), event: "e".into(), target: "t".into() };
        assert!(e.to_string().contains("unknown state `t`"));
    }
}
