//! Coenable sets and the ALIVENESS formula (paper §3 and §4.2.2).
//!
//! For each event `e`, the *property coenable set* `COENABLE(e)` collects,
//! over all goal traces containing `e`, the sets of events that occur after
//! `e` (Definition 10, with `∅` dropped). Lifting through the event
//! definition `D` yields the *parameter coenable set* (Definition 11), and
//! minimizing the resulting DNF gives the runtime [`Aliveness`] check: a
//! monitor whose last event was `e` is still *necessary* iff for some
//! `S ∈ COENABLEˣ(e)` every parameter in `S` is still alive.

use std::fmt;

use crate::event::{Alphabet, EventId, EventSet};
use crate::param::{EventDef, ParamSet};

/// A family of event sets — the value of `COENABLE(e)` for one event.
///
/// Stored sorted and deduplicated, so equality is structural.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SetFamily(Vec<EventSet>);

impl SetFamily {
    /// The empty family.
    #[must_use]
    pub fn new() -> Self {
        SetFamily::default()
    }

    /// Builds a family from arbitrary sets, dropping `∅` members (the
    /// paper's Definition 10 explicitly removes them), sorting, and
    /// deduplicating.
    #[must_use]
    pub fn from_sets<I: IntoIterator<Item = EventSet>>(sets: I) -> Self {
        let mut v: Vec<EventSet> = sets.into_iter().filter(|s| !s.is_empty()).collect();
        v.sort_unstable();
        v.dedup();
        SetFamily(v)
    }

    /// Inserts a set (no-op for `∅` or duplicates). Returns whether the
    /// family changed.
    pub fn insert(&mut self, s: EventSet) -> bool {
        if s.is_empty() {
            return false;
        }
        match self.0.binary_search(&s) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, s);
                true
            }
        }
    }

    /// The member sets, sorted.
    #[must_use]
    pub fn sets(&self) -> &[EventSet] {
        &self.0
    }

    /// Whether the family is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of member sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether `s` is a member.
    #[must_use]
    pub fn contains(&self, s: EventSet) -> bool {
        self.0.binary_search(&s).is_ok()
    }

    /// The family with non-minimal members removed: if `S ⊂ S'` both occur,
    /// `S'` is dropped. By DNF absorption (`∧S ∨ ∧S' = ∧S` when `S ⊆ S'`)
    /// this preserves the ALIVENESS boolean function while shrinking it —
    /// the "minimized boolean formula" of §4.2.2.
    #[must_use]
    pub fn minimized(&self) -> SetFamily {
        let mut keep: Vec<EventSet> = Vec::with_capacity(self.0.len());
        for &s in &self.0 {
            if !self.0.iter().any(|&t| t != s && t.is_subset(s)) {
                keep.push(s);
            }
        }
        SetFamily(keep)
    }
}

impl FromIterator<EventSet> for SetFamily {
    fn from_iter<I: IntoIterator<Item = EventSet>>(iter: I) -> Self {
        SetFamily::from_sets(iter)
    }
}

/// The property coenable sets `COENABLE_{P,G} : E → P(P(E))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoenableSets {
    per_event: Vec<SetFamily>,
}

impl CoenableSets {
    /// Builds coenable sets from per-event families (indexed by event id).
    #[must_use]
    pub fn new(per_event: Vec<SetFamily>) -> Self {
        CoenableSets { per_event }
    }

    /// `COENABLE(e)`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the property's alphabet.
    #[must_use]
    pub fn of(&self, e: EventId) -> &SetFamily {
        &self.per_event[e.as_usize()]
    }

    /// Number of events covered.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.per_event.len()
    }

    /// Lifts to parameter coenable sets through `D` (Definition 11):
    /// `COENABLEˣ(e) = { D(E) | E ∈ COENABLE(e) }`.
    #[must_use]
    pub fn lift(&self, def: &EventDef) -> ParamCoenable {
        let per_event = self
            .per_event
            .iter()
            .map(|family| {
                let mut v: Vec<ParamSet> =
                    family.sets().iter().map(|&s| def.params_of_set(s)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        ParamCoenable { per_event }
    }

    /// Renders the sets with names, for the `coenable_tables` harness.
    #[must_use]
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> DisplayCoenable<'a> {
        DisplayCoenable { sets: self, alphabet }
    }
}

/// Renders [`CoenableSets`] with event names.
#[derive(Debug)]
pub struct DisplayCoenable<'a> {
    sets: &'a CoenableSets,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayCoenable<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.alphabet.iter() {
            write!(f, "COENABLE({}) = {{", self.alphabet.name(e))?;
            for (i, s) in self.sets.of(e).sets().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", s.display(self.alphabet))?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// The parameter coenable sets `COENABLEˣ_{P,G} : E → P(P(X))`
/// (Definition 11), *not* yet minimized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamCoenable {
    per_event: Vec<Vec<ParamSet>>,
}

impl ParamCoenable {
    /// `COENABLEˣ(e)`, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn of(&self, e: EventId) -> &[ParamSet] {
        &self.per_event[e.as_usize()]
    }

    /// The ALIVENESS formula *without* the §4.2.2 minimization — the raw
    /// Definition 11 disjunction. Semantically equivalent to
    /// [`ParamCoenable::aliveness`] (absorption preserves the boolean
    /// function) but with more disjuncts to scan; exists for the
    /// minimization ablation benchmark.
    #[must_use]
    pub fn aliveness_unminimized(&self) -> Aliveness {
        Aliveness { per_event: self.per_event.clone() }
    }

    /// Compiles the minimized runtime ALIVENESS formula (§4.2.2).
    #[must_use]
    pub fn aliveness(&self) -> Aliveness {
        let per_event = self
            .per_event
            .iter()
            .map(|sets| {
                let mut keep: Vec<ParamSet> = Vec::with_capacity(sets.len());
                for &s in sets {
                    if !sets.iter().any(|&t| t != s && t.is_subset(s)) {
                        keep.push(s);
                    }
                }
                keep
            })
            .collect();
        Aliveness { per_event }
    }
}

/// The compiled runtime check
/// `ALIVENESS(e) = ⋁_{S ∈ COENABLEˣ(e)} ⋀_{x ∈ S} live_x`.
///
/// Each disjunct is a parameter bitmask; the whole check is a scan of a
/// short mask list with one AND each — the "minimized boolean formula"
/// evaluation the paper performs in notified monitor instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aliveness {
    per_event: Vec<Vec<ParamSet>>,
}

impl Aliveness {
    /// Whether a monitor whose most recent event was `e` can still reach the
    /// goal, given the set of parameters whose bound objects are `dead`.
    ///
    /// Parameters never bound yet must *not* be in `dead` (they could still
    /// be bound to live objects in the future).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn is_necessary(&self, e: EventId, dead: ParamSet) -> bool {
        self.per_event[e.as_usize()].iter().any(|&mask| mask.intersection(dead).is_empty())
    }

    /// The disjunct masks for event `e` (for inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn masks(&self, e: EventId) -> &[ParamSet] {
        &self.per_event[e.as_usize()]
    }

    /// Total number of disjuncts across all events (a size measure for the
    /// minimization ablation).
    #[must_use]
    pub fn total_disjuncts(&self) -> usize {
        self.per_event.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{EventDef, ParamId};

    fn ids(bits: &[u16]) -> EventSet {
        bits.iter().map(|&b| EventId(b)).collect()
    }

    #[test]
    fn family_drops_empty_and_dedups() {
        let f = SetFamily::from_sets(vec![EventSet::EMPTY, ids(&[1]), ids(&[1]), ids(&[0, 1])]);
        assert_eq!(f.len(), 2);
        assert!(f.contains(ids(&[1])));
        assert!(!f.contains(EventSet::EMPTY));
    }

    #[test]
    fn family_minimization_absorbs_supersets() {
        // {next}, {next,update}, {next,create,update} → {next}
        let f = SetFamily::from_sets(vec![ids(&[2]), ids(&[1, 2]), ids(&[0, 1, 2])]);
        let m = f.minimized();
        assert_eq!(m.sets(), &[ids(&[2])]);
    }

    #[test]
    fn family_minimization_keeps_incomparable_sets() {
        let f = SetFamily::from_sets(vec![ids(&[0, 1]), ids(&[1, 2])]);
        assert_eq!(f.minimized().len(), 2);
    }

    #[test]
    fn insert_reports_change() {
        let mut f = SetFamily::new();
        assert!(f.insert(ids(&[0])));
        assert!(!f.insert(ids(&[0])));
        assert!(!f.insert(EventSet::EMPTY));
        assert_eq!(f.len(), 1);
    }

    /// The §3 worked example: UNSAFEITER with events create(c,i),
    /// update(c), next(i).
    fn unsafe_iter() -> (Alphabet, EventDef, CoenableSets) {
        let a = Alphabet::from_names(&["create", "update", "next"]);
        let c = ParamId(0);
        let i = ParamId(1);
        let def = EventDef::new(
            &a,
            &["c", "i"],
            vec![ParamSet::singleton(c).with(i), ParamSet::singleton(c), ParamSet::singleton(i)],
        );
        // COENABLE(create) = {{next, update}}
        // COENABLE(update) = {{next}, {next, update}, {next, create, update}}
        // COENABLE(next)   = {{next, update}}
        let sets = CoenableSets::new(vec![
            SetFamily::from_sets(vec![ids(&[1, 2])]),
            SetFamily::from_sets(vec![ids(&[2]), ids(&[1, 2]), ids(&[0, 1, 2])]),
            SetFamily::from_sets(vec![ids(&[1, 2])]),
        ]);
        (a, def, sets)
    }

    #[test]
    fn lifting_matches_the_papers_worked_example() {
        let (a, def, sets) = unsafe_iter();
        let lifted = sets.lift(&def);
        let c = ParamSet::singleton(ParamId(0));
        let i = ParamSet::singleton(ParamId(1));
        let ci = c.union(i);
        // COENABLEˣ(create) = {{c, i}}
        assert_eq!(lifted.of(a.lookup("create").unwrap()), &[ci]);
        // COENABLEˣ(update) = {{i}, {c, i}}
        assert_eq!(lifted.of(a.lookup("update").unwrap()), &[i, ci]);
        // COENABLEˣ(next) = {{c, i}}
        assert_eq!(lifted.of(a.lookup("next").unwrap()), &[ci]);
    }

    #[test]
    fn aliveness_marks_dead_iterator_monitors_unnecessary() {
        let (a, def, sets) = unsafe_iter();
        let aliveness = sets.lift(&def).aliveness();
        let update = a.lookup("update").unwrap();
        let next = a.lookup("next").unwrap();
        let dead_i = ParamSet::singleton(ParamId(1));
        let dead_c = ParamSet::singleton(ParamId(0));
        // If the Iterator is dead, no goal is reachable — the paper's
        // motivating observation for UnsafeIter.
        assert!(!aliveness.is_necessary(update, dead_i));
        assert!(!aliveness.is_necessary(next, dead_i));
        // If only the Collection is dead after `update`, {i} can still fire.
        assert!(aliveness.is_necessary(update, dead_c));
        // But after `next`, both must be alive.
        assert!(!aliveness.is_necessary(next, dead_c));
        // Nothing dead: necessary.
        assert!(aliveness.is_necessary(update, ParamSet::EMPTY));
    }

    #[test]
    fn aliveness_minimizes_update_to_single_mask() {
        let (a, def, sets) = unsafe_iter();
        let aliveness = sets.lift(&def).aliveness();
        // {{i}, {c,i}} minimizes to {{i}} by absorption.
        assert_eq!(
            aliveness.masks(a.lookup("update").unwrap()),
            &[ParamSet::singleton(ParamId(1))]
        );
        assert_eq!(aliveness.total_disjuncts(), 3);
    }

    #[test]
    fn empty_family_means_never_necessary() {
        let sets = CoenableSets::new(vec![SetFamily::new()]);
        let a = Alphabet::from_names(&["e"]);
        let def = EventDef::new(&a, &["p"], vec![ParamSet::singleton(ParamId(0))]);
        let aliveness = sets.lift(&def).aliveness();
        assert!(!aliveness.is_necessary(EventId(0), ParamSet::EMPTY));
    }

    #[test]
    fn display_renders_event_names() {
        let (a, _, sets) = unsafe_iter();
        let out = sets.display(&a).to_string();
        assert!(
            out.contains("COENABLE(update) = {{next}, {update, next}, {create, update, next}}"),
            "{out}"
        );
    }
}
