//! The `ere` plugin: extended regular expressions (paper Figure 3), with
//! union, intersection, complement, star and plus, compiled to the shared
//! [`Dfa`] backbone via Brzozowski derivatives.
//!
//! Derivatives handle the *extended* operators (intersection, complement)
//! directly, with no NFA detour; canonical smart constructors (flattening,
//! sorting, idempotence — the ACI laws) keep the number of dissimilar
//! derivatives finite, per Brzozowski's theorem.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::dfa::{Dfa, DfaBuilder};
use crate::event::{Alphabet, EventId};
use crate::verdict::Verdict;

/// An extended regular expression over event ids.
///
/// Construct via the smart constructors ([`Ere::event`], [`Ere::concat`],
/// [`Ere::union`], …) which maintain the canonical form that derivative
/// construction relies on; the enum itself is not publicly matchable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Ere(Rc<Node>);

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Node {
    /// The empty language `∅`.
    Empty,
    /// The language `{ε}`.
    Epsilon,
    /// A single event.
    Event(EventId),
    /// Concatenation, kept right-associated.
    Concat(Ere, Ere),
    /// Union, flattened / sorted / deduplicated, ≥ 2 members.
    Union(Vec<Ere>),
    /// Intersection, flattened / sorted / deduplicated, ≥ 2 members.
    Inter(Vec<Ere>),
    /// Kleene star.
    Star(Ere),
    /// Complement (with respect to `E*`).
    Not(Ere),
}

impl Ere {
    /// The empty language `∅`.
    #[must_use]
    pub fn empty() -> Ere {
        Ere(Rc::new(Node::Empty))
    }

    /// The empty word `ε`.
    #[must_use]
    pub fn epsilon() -> Ere {
        Ere(Rc::new(Node::Epsilon))
    }

    /// A single event.
    #[must_use]
    pub fn event(e: EventId) -> Ere {
        Ere(Rc::new(Node::Event(e)))
    }

    /// Concatenation `self · rhs`.
    #[must_use]
    pub fn concat(self, rhs: Ere) -> Ere {
        match (&*self.0, &*rhs.0) {
            (Node::Empty, _) | (_, Node::Empty) => Ere::empty(),
            (Node::Epsilon, _) => rhs,
            (_, Node::Epsilon) => self,
            // Right-associate: (a·b)·c → a·(b·c).
            (Node::Concat(a, b), _) => a.clone().concat(b.clone().concat(rhs)),
            _ => Ere(Rc::new(Node::Concat(self, rhs))),
        }
    }

    /// Union of `parts`.
    #[must_use]
    pub fn union<I: IntoIterator<Item = Ere>>(parts: I) -> Ere {
        let mut flat: Vec<Ere> = Vec::new();
        for p in parts {
            match &*p.0 {
                Node::Empty => {}
                Node::Union(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(p),
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Ere::empty(),
            1 => flat.pop().expect("len checked"),
            _ => Ere(Rc::new(Node::Union(flat))),
        }
    }

    /// Intersection of `parts`.
    ///
    /// The empty intersection is the universal language `¬∅`.
    #[must_use]
    pub fn inter<I: IntoIterator<Item = Ere>>(parts: I) -> Ere {
        let mut flat: Vec<Ere> = Vec::new();
        for p in parts {
            match &*p.0 {
                Node::Empty => return Ere::empty(),
                Node::Inter(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(p),
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Ere::universal(),
            1 => flat.pop().expect("len checked"),
            _ => Ere(Rc::new(Node::Inter(flat))),
        }
    }

    /// Kleene star `self*`.
    #[must_use]
    pub fn star(self) -> Ere {
        match &*self.0 {
            Node::Empty | Node::Epsilon => Ere::epsilon(),
            Node::Star(_) => self,
            _ => Ere(Rc::new(Node::Star(self))),
        }
    }

    /// One-or-more `self+ = self · self*`.
    #[must_use]
    pub fn plus(self) -> Ere {
        self.clone().concat(self.star())
    }

    /// Complement `¬self` with respect to `E*`.
    #[must_use]
    pub fn not(self) -> Ere {
        match &*self.0 {
            Node::Not(inner) => inner.clone(),
            _ => Ere(Rc::new(Node::Not(self))),
        }
    }

    /// The universal language `E* = ¬∅`.
    #[must_use]
    pub fn universal() -> Ere {
        Ere::empty().not()
    }

    /// Whether `ε` is in the language (the derivative "output" function).
    #[must_use]
    pub fn nullable(&self) -> bool {
        match &*self.0 {
            Node::Empty | Node::Event(_) => false,
            Node::Epsilon | Node::Star(_) => true,
            Node::Concat(a, b) => a.nullable() && b.nullable(),
            Node::Union(parts) => parts.iter().any(Ere::nullable),
            Node::Inter(parts) => parts.iter().all(Ere::nullable),
            Node::Not(inner) => !inner.nullable(),
        }
    }

    /// The Brzozowski derivative `∂ₐ self`.
    #[must_use]
    pub fn derivative(&self, a: EventId) -> Ere {
        match &*self.0 {
            Node::Empty | Node::Epsilon => Ere::empty(),
            Node::Event(b) => {
                if *b == a {
                    Ere::epsilon()
                } else {
                    Ere::empty()
                }
            }
            Node::Concat(r, s) => {
                let left = r.derivative(a).concat(s.clone());
                if r.nullable() {
                    Ere::union([left, s.derivative(a)])
                } else {
                    left
                }
            }
            Node::Union(parts) => Ere::union(parts.iter().map(|p| p.derivative(a))),
            Node::Inter(parts) => Ere::inter(parts.iter().map(|p| p.derivative(a))),
            Node::Star(r) => r.derivative(a).concat(self.clone()),
            Node::Not(r) => r.derivative(a).not(),
        }
    }

    /// Compiles the expression to a [`Dfa`] over `alphabet`. Accepting
    /// (nullable) states report [`Verdict::Match`]; states from which no
    /// match is reachable report [`Verdict::Fail`]; the rest are `?`.
    ///
    /// # Errors
    ///
    /// Returns [`EreError::TooManyStates`] if determinization exceeds
    /// `max_states` dissimilar derivatives (pathological complements).
    pub fn compile(&self, alphabet: &Alphabet, max_states: usize) -> Result<Dfa, EreError> {
        let mut index: BTreeMap<Ere, u32> = BTreeMap::new();
        let mut order: Vec<Ere> = Vec::new();
        let mut worklist: Vec<u32> = Vec::new();
        let root = self.clone();
        index.insert(root.clone(), 0);
        order.push(root);
        worklist.push(0);
        let mut trans: Vec<(u32, EventId, u32)> = Vec::new();
        while let Some(s) = worklist.pop() {
            for e in alphabet.iter() {
                let d = order[s as usize].derivative(e);
                let t = match index.get(&d) {
                    Some(&t) => t,
                    None => {
                        let t = order.len() as u32;
                        if order.len() >= max_states {
                            return Err(EreError::TooManyStates(max_states));
                        }
                        index.insert(d.clone(), t);
                        order.push(d);
                        worklist.push(t);
                        t
                    }
                };
                trans.push((s, e, t));
            }
        }
        let mut b = DfaBuilder::new(alphabet.clone());
        for ere in &order {
            b.add_state(if ere.nullable() { Verdict::Match } else { Verdict::Unknown });
        }
        for (s, e, t) in trans {
            b.set_transition(s, e, t);
        }
        let mut dfa = b.finish(0);
        // Post-pass: states that can never reach a match are `fail`.
        let can = dfa.can_reach_goal(crate::verdict::GoalSet::MATCH);
        let mut b = DfaBuilder::new(alphabet.clone());
        for (i, ere) in order.iter().enumerate() {
            let v = if ere.nullable() {
                Verdict::Match
            } else if can[i] {
                Verdict::Unknown
            } else {
                Verdict::Fail
            };
            b.add_state(v);
        }
        for s in 0..dfa.state_count() {
            for e in alphabet.iter() {
                let t = dfa.step(s, e);
                if t != crate::dfa::DEAD {
                    b.set_transition(s, e, t);
                }
            }
        }
        dfa = b.finish(0);
        Ok(dfa)
    }
}

/// Errors from ERE compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EreError {
    /// Determinization exceeded the configured state budget.
    TooManyStates(usize),
}

impl fmt::Display for EreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EreError::TooManyStates(n) => {
                write!(f, "expression produced more than {n} dissimilar derivatives")
            }
        }
    }
}

impl std::error::Error for EreError {}

impl fmt::Display for Ere {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            Node::Empty => write!(f, "∅"),
            Node::Epsilon => write!(f, "ε"),
            Node::Event(e) => write!(f, "{e}"),
            Node::Concat(a, b) => write!(f, "({a} {b})"),
            Node::Union(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Node::Inter(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Node::Star(r) => write!(f, "{r}*"),
            Node::Not(r) => write!(f, "~{r}"),
        }
    }
}

/// Builds the paper's Figure 3 UNSAFEITER pattern
/// `update* create next* update+ next` over the given alphabet.
///
/// # Panics
///
/// Panics if `alphabet` lacks the `create`/`update`/`next` events.
#[must_use]
pub fn unsafe_iter_ere(alphabet: &Alphabet) -> Ere {
    let ev = |n: &str| {
        Ere::event(alphabet.lookup(n).unwrap_or_else(|| panic!("alphabet lacks event `{n}`")))
    };
    ev("update")
        .star()
        .concat(ev("create"))
        .concat(ev("next").star())
        .concat(ev("update").plus())
        .concat(ev("next"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::GoalSet;

    fn abc() -> Alphabet {
        Alphabet::from_names(&["a", "b", "c"])
    }

    fn ev(a: &Alphabet, n: &str) -> EventId {
        a.lookup(n).unwrap()
    }

    #[test]
    fn smart_constructors_normalize() {
        let a = Ere::event(EventId(0));
        let b = Ere::event(EventId(1));
        assert_eq!(Ere::union([a.clone(), b.clone()]), Ere::union([b.clone(), a.clone()]));
        assert_eq!(Ere::union([a.clone(), a.clone()]), a);
        assert_eq!(Ere::empty().concat(a.clone()), Ere::empty());
        assert_eq!(Ere::epsilon().concat(a.clone()), a);
        assert_eq!(a.clone().star().star(), a.clone().star());
        assert_eq!(Ere::empty().star(), Ere::epsilon());
        assert_eq!(a.clone().not().not(), a);
        assert_eq!(Ere::inter([a.clone(), Ere::empty()]), Ere::empty());
    }

    #[test]
    fn nullability() {
        let a = Ere::event(EventId(0));
        assert!(!a.nullable());
        assert!(a.clone().star().nullable());
        assert!(Ere::epsilon().nullable());
        assert!(!Ere::empty().nullable());
        assert!(Ere::empty().not().nullable());
        assert!(!a.clone().concat(a.clone().star()).nullable());
    }

    #[test]
    fn simple_language_membership() {
        let al = abc();
        // (a b)* — even-length alternation.
        let r = Ere::event(ev(&al, "a")).concat(Ere::event(ev(&al, "b"))).star();
        let d = r.compile(&al, 1000).unwrap();
        assert_eq!(d.classify(&[]), Verdict::Match);
        assert_eq!(d.classify(&[ev(&al, "a"), ev(&al, "b")]), Verdict::Match);
        assert_eq!(d.classify(&[ev(&al, "a")]), Verdict::Unknown);
        assert_eq!(d.classify(&[ev(&al, "b")]), Verdict::Fail);
        assert_eq!(d.classify(&[ev(&al, "a"), ev(&al, "a")]), Verdict::Fail);
    }

    #[test]
    fn intersection_and_complement() {
        let al = abc();
        let a = Ere::event(ev(&al, "a"));
        let b = Ere::event(ev(&al, "b"));
        // Words over {a,b} containing at least one a and at least one b:
        // Σ* a Σ* ∩ Σ* b Σ*.
        let sigma = Ere::universal();
        let has_a = sigma.clone().concat(a.clone()).concat(sigma.clone());
        let has_b = sigma.clone().concat(b.clone()).concat(sigma.clone());
        let r = Ere::inter([has_a, has_b]);
        let d = r.compile(&al, 1000).unwrap();
        assert_eq!(d.classify(&[ev(&al, "a"), ev(&al, "b")]), Verdict::Match);
        assert_eq!(d.classify(&[ev(&al, "b"), ev(&al, "c"), ev(&al, "a")]), Verdict::Match);
        assert_eq!(d.classify(&[ev(&al, "a"), ev(&al, "a")]), Verdict::Unknown);
        assert_eq!(d.classify(&[]), Verdict::Unknown);
        // Complement of "contains a": match iff no a seen.
        let no_a = Ere::universal().concat(a).concat(Ere::universal()).not();
        let d = no_a.compile(&al, 1000).unwrap();
        assert_eq!(d.classify(&[]), Verdict::Match);
        assert_eq!(d.classify(&[ev(&al, "b")]), Verdict::Match);
        assert_eq!(d.classify(&[ev(&al, "a")]), Verdict::Fail);
    }

    #[test]
    fn unsafe_iter_pattern_matches_figure_3() {
        let al = Alphabet::from_names(&["create", "update", "next"]);
        let r = unsafe_iter_ere(&al);
        let d = r.compile(&al, 1000).unwrap();
        let e = |n: &str| al.lookup(n).unwrap();
        // The paper's example match trace.
        assert_eq!(d.classify(&[e("create"), e("next"), e("update"), e("next")]), Verdict::Match);
        // "update create" is an unknown (?) trace.
        assert_eq!(d.classify(&[e("update"), e("create")]), Verdict::Unknown);
        // "create update next next" is a fail trace.
        assert_eq!(d.classify(&[e("create"), e("update"), e("next"), e("next")]), Verdict::Fail);
    }

    #[test]
    fn derived_dfa_coenable_matches_hand_built_machine() {
        // The automatically derived UNSAFEITER DFA must yield exactly the
        // paper's §3 coenable sets, like the hand-built one in dfa.rs.
        let al = Alphabet::from_names(&["create", "update", "next"]);
        let d = unsafe_iter_ere(&al).compile(&al, 1000).unwrap();
        let co = d.coenable(GoalSet::MATCH);
        let e = |n: &str| al.lookup(n).unwrap();
        let set = |ns: &[&str]| ns.iter().map(|n| e(n)).collect::<crate::event::EventSet>();
        assert_eq!(co.of(e("create")).sets(), &[set(&["update", "next"])]);
        assert_eq!(
            co.of(e("update")).sets(),
            &[set(&["next"]), set(&["update", "next"]), set(&["create", "update", "next"])]
        );
        assert_eq!(co.of(e("next")).sets(), &[set(&["update", "next"])]);
    }

    #[test]
    fn state_budget_is_enforced() {
        let al = abc();
        let r = unsafe_iter_ere(&Alphabet::from_names(&["create", "update", "next"]));
        let _ = r; // silence: use a small budget on a machine needing more states
        let big = Ere::event(ev(&al, "a")).concat(Ere::event(ev(&al, "b"))).star();
        assert_eq!(big.compile(&al, 1).unwrap_err(), EreError::TooManyStates(1));
    }

    #[test]
    fn display_is_readable() {
        let al = abc();
        let r = Ere::event(ev(&al, "a")).concat(Ere::event(ev(&al, "b")).star());
        assert_eq!(r.to_string(), "(e0 e1*)");
    }
}
