//! The formalism-independent monitor interface (Definition 8) that the
//! parametric engine builds on.
//!
//! The whole point of the paper's technique is being *formalism-generic*:
//! the engine only needs (a) a way to create and step base monitors and
//! (b) the coenable sets of the property. [`Formalism`] captures exactly
//! that, and [`AnyFormalism`] packages the four concrete plugins so
//! heterogeneous specs (the spec language, the "ALL" experiment) need no
//! dynamic dispatch in the hot path.

use std::fmt;

use crate::cfg::{CfgMonitor, EarleyState};
use crate::coenable::CoenableSets;
use crate::dfa::Dfa;
use crate::event::{Alphabet, EventId};
use crate::verdict::{GoalSet, Verdict};

/// A base-monitor factory: the `M = (S, E, C, ı, σ, γ)` of Definition 8,
/// exposed as an immutable transition structure plus per-instance states.
///
/// Monitor *instances* are just values of [`Formalism::State`]; the engine
/// keeps millions of them, so states should be as small as possible (a
/// `u32` for the finite-state plugins).
pub trait Formalism {
    /// The per-instance monitor state.
    type State: Clone + fmt::Debug;

    /// The property alphabet `E`.
    fn alphabet(&self) -> &Alphabet;

    /// The initial state `ı`.
    fn initial_state(&self) -> Self::State;

    /// `σ`: consumes one event, returning the new verdict `γ(σ(s, e))`.
    fn step(&self, state: &mut Self::State, event: EventId) -> Verdict;

    /// `γ`: the verdict of a state without consuming an event.
    fn verdict(&self, state: &Self::State) -> Verdict;

    /// The property coenable sets for `goal` (§3). `None` if the formalism
    /// cannot provide them (none of ours refuses, but the trait leaves the
    /// door open for plugins with undecidable analyses).
    fn coenable(&self, goal: GoalSet) -> Option<CoenableSets>;

    /// The ENABLE sets of Chen et al. \[19\]: per event, the family of event
    /// sets that can precede it on a goal trace, plus whether the event can
    /// be a goal trace's first event. `None` when the formalism cannot
    /// compute them; the engine then creates monitors permissively.
    fn enable(&self, goal: GoalSet) -> Option<Vec<(crate::coenable::SetFamily, bool)>> {
        let _ = goal;
        None
    }

    /// Whether a monitor in `state` can be *terminated* for `goal`: no
    /// future event can produce a goal verdict (or the verdict can never
    /// change again). "There is no reason to maintain the monitor instance
    /// after it has executed the proper handler" (§3). The default is
    /// conservative.
    fn is_terminal(&self, state: &Self::State, goal: GoalSet) -> bool {
        let _ = (state, goal);
        false
    }

    /// An estimate of the heap bytes held by one monitor state, for the
    /// peak-memory accounting of Fig. 9(B).
    fn state_bytes(&self, state: &Self::State) -> usize {
        let _ = state;
        std::mem::size_of::<Self::State>()
    }

    /// Serializes one monitor state into `out` for the durability layer
    /// (checkpoints). Returns `false` when the formalism does not support
    /// persistence — the conservative default, so exotic plugins degrade
    /// to "cannot checkpoint" instead of writing garbage.
    fn encode_state(&self, state: &Self::State, out: &mut Vec<u8>) -> bool {
        let _ = (state, out);
        false
    }

    /// Decodes an [`Formalism::encode_state`] buffer. `None` means the
    /// bytes are corrupt, truncated, or from an unsupported plugin.
    fn decode_state(&self, bytes: &[u8]) -> Option<Self::State> {
        let _ = bytes;
        None
    }
}

/// [`Dfa`] monitors: the state is the current DFA state (`DEAD` = fell off
/// the machine).
impl Formalism for Dfa {
    type State = u32;

    fn alphabet(&self) -> &Alphabet {
        Dfa::alphabet(self)
    }

    fn initial_state(&self) -> u32 {
        self.initial()
    }

    fn step(&self, state: &mut u32, event: EventId) -> Verdict {
        *state = Dfa::step(self, *state, event);
        self.verdict(*state)
    }

    fn verdict(&self, state: &u32) -> Verdict {
        Dfa::verdict(self, *state)
    }

    fn coenable(&self, goal: GoalSet) -> Option<CoenableSets> {
        Some(Dfa::coenable(self, goal))
    }

    fn is_terminal(&self, state: &u32, goal: GoalSet) -> bool {
        self.is_terminal_state(*state, goal)
    }

    fn enable(&self, goal: GoalSet) -> Option<Vec<(crate::coenable::SetFamily, bool)>> {
        Some(Dfa::enable(self, goal))
    }

    fn encode_state(&self, state: &u32, out: &mut Vec<u8>) -> bool {
        out.extend_from_slice(&state.to_le_bytes());
        true
    }

    fn decode_state(&self, bytes: &[u8]) -> Option<u32> {
        let raw: [u8; 4] = bytes.try_into().ok()?;
        let state = u32::from_le_bytes(raw);
        // Anything outside the machine (other than the DEAD sink) would
        // make `step` index out of range — that is corruption, not a state.
        if state == crate::dfa::DEAD || state < self.state_count() {
            Some(state)
        } else {
            None
        }
    }
}

impl Formalism for CfgMonitor {
    type State = EarleyState;

    fn alphabet(&self) -> &Alphabet {
        CfgMonitor::alphabet(self)
    }

    fn initial_state(&self) -> EarleyState {
        CfgMonitor::initial_state(self)
    }

    fn step(&self, state: &mut EarleyState, event: EventId) -> Verdict {
        CfgMonitor::step(self, state, event)
    }

    fn verdict(&self, state: &EarleyState) -> Verdict {
        CfgMonitor::verdict(self, state)
    }

    fn coenable(&self, goal: GoalSet) -> Option<CoenableSets> {
        // The paper's CFG coenable equations are defined for goal {match}.
        if goal == GoalSet::MATCH {
            Some(self.grammar().coenable(CfgMonitor::alphabet(self)))
        } else {
            None
        }
    }

    fn is_terminal(&self, state: &EarleyState, _goal: GoalSet) -> bool {
        // The CFG goal is {match}; a dead chart can never match again.
        CfgMonitor::verdict(self, state) == Verdict::Fail
    }

    fn state_bytes(&self, state: &EarleyState) -> usize {
        std::mem::size_of::<EarleyState>() + state.chart_bytes()
    }

    fn encode_state(&self, state: &EarleyState, out: &mut Vec<u8>) -> bool {
        state.encode_chart(out);
        true
    }

    fn decode_state(&self, bytes: &[u8]) -> Option<EarleyState> {
        let state = EarleyState::decode_chart(bytes)?;
        // The chart indexes productions of *this* grammar; reject charts
        // referencing productions the grammar does not have.
        let n = u32::try_from(self.grammar().productions().len()).ok()?;
        state.production_ids_below(n).then_some(state)
    }
}

/// Any of the four built-in plugins, as one concrete [`Formalism`].
///
/// FSM, ERE and LTL all compile to [`Dfa`], so their states are `u32`; CFG
/// carries an Earley chart.
#[derive(Clone, Debug)]
pub enum AnyFormalism {
    /// A finite-state property (from `fsm:`, `ere:` or `ltl:` blocks).
    Dfa(Dfa),
    /// A context-free property (from `cfg:` blocks).
    Cfg(CfgMonitor),
}

/// The state of an [`AnyFormalism`] monitor instance.
#[derive(Clone, Debug)]
pub enum AnyState {
    /// Finite-state monitor state.
    Dfa(u32),
    /// Earley chart state.
    Cfg(EarleyState),
}

impl Formalism for AnyFormalism {
    type State = AnyState;

    fn alphabet(&self) -> &Alphabet {
        match self {
            AnyFormalism::Dfa(d) => Formalism::alphabet(d),
            AnyFormalism::Cfg(c) => Formalism::alphabet(c),
        }
    }

    fn initial_state(&self) -> AnyState {
        match self {
            AnyFormalism::Dfa(d) => AnyState::Dfa(Formalism::initial_state(d)),
            AnyFormalism::Cfg(c) => AnyState::Cfg(Formalism::initial_state(c)),
        }
    }

    fn step(&self, state: &mut AnyState, event: EventId) -> Verdict {
        match (self, state) {
            (AnyFormalism::Dfa(d), AnyState::Dfa(s)) => Formalism::step(d, s, event),
            (AnyFormalism::Cfg(c), AnyState::Cfg(s)) => Formalism::step(c, s, event),
            _ => panic!("mismatched formalism/state pairing"),
        }
    }

    fn verdict(&self, state: &AnyState) -> Verdict {
        match (self, state) {
            (AnyFormalism::Dfa(d), AnyState::Dfa(s)) => Formalism::verdict(d, s),
            (AnyFormalism::Cfg(c), AnyState::Cfg(s)) => Formalism::verdict(c, s),
            _ => panic!("mismatched formalism/state pairing"),
        }
    }

    fn coenable(&self, goal: GoalSet) -> Option<CoenableSets> {
        match self {
            AnyFormalism::Dfa(d) => Formalism::coenable(d, goal),
            AnyFormalism::Cfg(c) => Formalism::coenable(c, goal),
        }
    }

    fn enable(&self, goal: GoalSet) -> Option<Vec<(crate::coenable::SetFamily, bool)>> {
        match self {
            AnyFormalism::Dfa(d) => Formalism::enable(d, goal),
            AnyFormalism::Cfg(c) => Formalism::enable(c, goal),
        }
    }

    fn is_terminal(&self, state: &AnyState, goal: GoalSet) -> bool {
        match (self, state) {
            (AnyFormalism::Dfa(d), AnyState::Dfa(s)) => Formalism::is_terminal(d, s, goal),
            (AnyFormalism::Cfg(c), AnyState::Cfg(s)) => Formalism::is_terminal(c, s, goal),
            _ => panic!("mismatched formalism/state pairing"),
        }
    }

    fn state_bytes(&self, state: &AnyState) -> usize {
        match (self, state) {
            (AnyFormalism::Dfa(d), AnyState::Dfa(s)) => Formalism::state_bytes(d, s),
            (AnyFormalism::Cfg(c), AnyState::Cfg(s)) => Formalism::state_bytes(c, s),
            _ => panic!("mismatched formalism/state pairing"),
        }
    }

    fn encode_state(&self, state: &AnyState, out: &mut Vec<u8>) -> bool {
        // A leading plugin tag keeps a snapshot self-describing: decoding
        // with the wrong formalism fails cleanly instead of misparsing.
        match (self, state) {
            (AnyFormalism::Dfa(d), AnyState::Dfa(s)) => {
                out.push(1);
                Formalism::encode_state(d, s, out)
            }
            (AnyFormalism::Cfg(c), AnyState::Cfg(s)) => {
                out.push(2);
                Formalism::encode_state(c, s, out)
            }
            _ => panic!("mismatched formalism/state pairing"),
        }
    }

    fn decode_state(&self, bytes: &[u8]) -> Option<AnyState> {
        let (&tag, rest) = bytes.split_first()?;
        match (self, tag) {
            (AnyFormalism::Dfa(d), 1) => Some(AnyState::Dfa(Formalism::decode_state(d, rest)?)),
            (AnyFormalism::Cfg(c), 2) => Some(AnyState::Cfg(Formalism::decode_state(c, rest)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::safe_lock_grammar;
    use crate::fsm::has_next_fsm;

    #[test]
    fn dfa_formalism_round_trip() {
        let (a, spec) = has_next_fsm();
        let d = spec.compile(&a).unwrap();
        let mut s = Formalism::initial_state(&d);
        let next = a.lookup("next").unwrap();
        let v = Formalism::step(&d, &mut s, next);
        assert_eq!(v, Verdict::Match);
        assert!(
            Formalism::is_terminal(&d, &s, GoalSet::MATCH),
            "the error state can never match again"
        );
        assert!(Formalism::coenable(&d, GoalSet::MATCH).is_some());
    }

    #[test]
    fn any_formalism_dispatches() {
        let a = Alphabet::from_names(&["acquire", "release", "begin", "end"]);
        let cfg = CfgMonitor::compile(&safe_lock_grammar(&a), &a).unwrap();
        let f = AnyFormalism::Cfg(cfg);
        let mut s = f.initial_state();
        assert_eq!(f.verdict(&s), Verdict::Match);
        let acq = a.lookup("acquire").unwrap();
        let rel = a.lookup("release").unwrap();
        assert_eq!(f.step(&mut s, acq), Verdict::Unknown);
        assert_eq!(f.step(&mut s, rel), Verdict::Match);
        assert!(!f.is_terminal(&s, GoalSet::MATCH));
        assert!(f.coenable(GoalSet::MATCH).is_some());
        assert!(f.coenable(GoalSet::FAIL).is_none(), "CFG coenable is match-only");
        assert!(f.state_bytes(&s) > 0);
    }

    #[test]
    fn state_codecs_round_trip_and_reject_cross_plugin_bytes() {
        let (a, spec) = has_next_fsm();
        let dfa = AnyFormalism::Dfa(spec.compile(&a).unwrap());
        let al = Alphabet::from_names(&["acquire", "release", "begin", "end"]);
        let cfg = AnyFormalism::Cfg(CfgMonitor::compile(&safe_lock_grammar(&al), &al).unwrap());

        let mut s = dfa.initial_state();
        let _ = dfa.step(&mut s, a.lookup("hasnexttrue").unwrap());
        let mut bytes = Vec::new();
        assert!(dfa.encode_state(&s, &mut bytes));
        let back = dfa.decode_state(&bytes).expect("dfa state decodes");
        assert_eq!(dfa.verdict(&back), dfa.verdict(&s));
        assert!(cfg.decode_state(&bytes).is_none(), "wrong plugin tag must fail");

        let mut cs = cfg.initial_state();
        let _ = cfg.step(&mut cs, al.lookup("acquire").unwrap());
        let mut cbytes = Vec::new();
        assert!(cfg.encode_state(&cs, &mut cbytes));
        let cback = cfg.decode_state(&cbytes).expect("cfg state decodes");
        assert_eq!(cfg.verdict(&cback), cfg.verdict(&cs));
        assert!(dfa.decode_state(&cbytes).is_none());

        // Out-of-range DFA states are corruption, not states.
        let mut bogus = vec![1u8];
        bogus.extend_from_slice(&12345u32.to_le_bytes());
        assert!(dfa.decode_state(&bogus).is_none());
        assert!(dfa.decode_state(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "mismatched formalism/state")]
    fn any_formalism_rejects_mismatched_state() {
        let (a, spec) = has_next_fsm();
        let d = spec.compile(&a).unwrap();
        let f = AnyFormalism::Dfa(d);
        let al = Alphabet::from_names(&["acquire", "release", "begin", "end"]);
        let cfg = CfgMonitor::compile(&safe_lock_grammar(&al), &al).unwrap();
        let mut wrong = AnyState::Cfg(CfgMonitor::initial_state(&cfg));
        let _ = f.step(&mut wrong, EventId(0));
    }
}
