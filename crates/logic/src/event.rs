//! Base events, event sets, and alphabets.
//!
//! Following Definition 1 of the paper, a property is stated over a finite
//! set of *base events* `E`. Events are interned into an [`Alphabet`] and
//! referred to by dense [`EventId`]s; sets of events are `u64` bitsets
//! ([`EventSet`]), which keeps the coenable fixpoints and the runtime
//! ALIVENESS checks branch-free.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for a base event within an [`Alphabet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u16);

impl EventId {
    /// The raw index.
    #[must_use]
    pub fn as_usize(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A set of base events, represented as a 64-bit bitset.
///
/// Properties in practice have a handful of events (the paper's largest has
/// five), so 64 is a generous cap, enforced by [`Alphabet::intern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EventSet(pub u64);

impl EventSet {
    /// The empty event set.
    pub const EMPTY: EventSet = EventSet(0);

    /// The singleton set `{e}`.
    #[must_use]
    pub fn singleton(e: EventId) -> EventSet {
        EventSet(1u64 << e.0)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `e` is a member.
    #[must_use]
    pub fn contains(self, e: EventId) -> bool {
        self.0 & (1u64 << e.0) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: EventSet) -> EventSet {
        EventSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: EventSet) -> EventSet {
        EventSet(self.0 & other.0)
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: EventSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Inserts `e`, returning the extended set.
    #[must_use]
    pub fn with(self, e: EventId) -> EventSet {
        EventSet(self.0 | (1u64 << e.0))
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the members in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = EventId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(EventId(i))
            }
        })
    }

    /// Renders the set with names from `alphabet`, e.g. `{next, update}`.
    #[must_use]
    pub fn display<'a>(self, alphabet: &'a Alphabet) -> DisplayEventSet<'a> {
        DisplayEventSet { set: self, alphabet }
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        iter.into_iter().fold(EventSet::EMPTY, EventSet::with)
    }
}

impl fmt::Debug for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Renders an [`EventSet`] with event names; created by [`EventSet::display`].
#[derive(Debug)]
pub struct DisplayEventSet<'a> {
    set: EventSet,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayEventSet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.alphabet.name(e))?;
        }
        write!(f, "}}")
    }
}

/// An interned, ordered set of event names — the `E` of Definition 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, EventId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    #[must_use]
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Creates an alphabet from a list of distinct names.
    ///
    /// # Panics
    ///
    /// Panics if names repeat or more than 64 are given.
    #[must_use]
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        let mut a = Alphabet::new();
        for n in names {
            let before = a.len();
            a.intern(n.as_ref());
            assert_eq!(a.len(), before + 1, "duplicate event name {:?}", n.as_ref());
        }
        a
    }

    /// Interns `name`, returning its id (existing or fresh).
    ///
    /// # Panics
    ///
    /// Panics if this would create a 65th event.
    pub fn intern(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        assert!(self.names.len() < 64, "alphabets are limited to 64 events");
        let id = EventId(self.names.len() as u16);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing event by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.index.get(name).copied()
    }

    /// The name of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not from this alphabet.
    #[must_use]
    pub fn name(&self, e: EventId) -> &str {
        &self.names[e.as_usize()]
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The full event set `E`.
    #[must_use]
    pub fn universe(&self) -> EventSet {
        if self.names.is_empty() {
            EventSet::EMPTY
        } else {
            EventSet((u64::MAX) >> (64 - self.names.len()))
        }
    }

    /// Iterates over all event ids.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.names.len()).map(|i| EventId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("next");
        let y = a.intern("next");
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
        assert_eq!(a.name(x), "next");
        assert_eq!(a.lookup("next"), Some(x));
        assert_eq!(a.lookup("absent"), None);
    }

    #[test]
    fn event_set_operations() {
        let a = EventId(0);
        let b = EventId(3);
        let s = EventSet::singleton(a).with(b);
        assert_eq!(s.len(), 2);
        assert!(s.contains(a) && s.contains(b));
        assert!(!s.contains(EventId(1)));
        assert!(EventSet::singleton(a).is_subset(s));
        assert!(!s.is_subset(EventSet::singleton(a)));
        assert_eq!(s.intersection(EventSet::singleton(b)), EventSet::singleton(b));
        let collected: Vec<EventId> = s.iter().collect();
        assert_eq!(collected, vec![a, b]);
    }

    #[test]
    fn universe_covers_all_events() {
        let a = Alphabet::from_names(&["create", "update", "next"]);
        let u = a.universe();
        assert_eq!(u.len(), 3);
        for e in a.iter() {
            assert!(u.contains(e));
        }
    }

    #[test]
    fn display_uses_names() {
        let a = Alphabet::from_names(&["create", "update", "next"]);
        let s: EventSet =
            [a.lookup("next").unwrap(), a.lookup("update").unwrap()].into_iter().collect();
        assert_eq!(s.display(&a).to_string(), "{update, next}");
    }

    #[test]
    #[should_panic(expected = "duplicate event name")]
    fn from_names_rejects_duplicates() {
        let _ = Alphabet::from_names(&["a", "a"]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: EventSet = (0..4).map(EventId).collect();
        assert_eq!(s.len(), 4);
    }
}
