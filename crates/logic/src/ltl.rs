//! The `ltl` plugin: linear temporal logic over finite (growing) traces,
//! with both future operators and the past operators used in the paper
//! (Figure 2's `[](next => (*)hasnexttrue)`).
//!
//! # Semantics and monitor construction
//!
//! Events are atomic propositions, true exactly at the step where the event
//! occurs. *Past* subformulas are evaluated eagerly with the classic
//! recursive-register scheme (one boolean per past subformula, updated each
//! step), so by the time the future part is considered, every past
//! subformula is a known boolean — a "past atom". The *future* part is
//! monitored by **formula progression**: consuming one event rewrites the
//! formula into the obligation that the rest of the trace must satisfy.
//! Residual obligations are positive boolean combinations of the finitely
//! many future subformulas, canonicalized as absorption-minimized DNF over
//! subformula indices — so the reachable state space is finite and the
//! whole monitor determinizes into the shared [`Dfa`] backbone.
//!
//! Verdicts: an empty DNF means no extension can satisfy the formula
//! ([`Verdict::Fail`] — the `@violation` handler's goal); a DNF containing
//! the empty clause means every extension satisfies it
//! ([`Verdict::Match`]); anything else is `?`. Both extremes are absorbing.
//!
//! # Restrictions
//!
//! Future operators may not appear *under* past operators (checked by
//! [`Ltl::compile`]); this is the usual monitorable fragment and covers
//! every specification in the paper.

use std::collections::BTreeMap;
use std::fmt;

use crate::dfa::{Dfa, DfaBuilder};
use crate::event::{Alphabet, EventId};
use crate::verdict::Verdict;

/// An LTL formula over event atoms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Ltl {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Atomic proposition: "the current event is `e`".
    Event(EventId),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Implication (sugar for `¬a ∨ b`).
    Implies(Box<Ltl>, Box<Ltl>),
    /// Strong next `()φ`.
    Next(Box<Ltl>),
    /// Until `φ U ψ`.
    Until(Box<Ltl>, Box<Ltl>),
    /// Release `φ R ψ`.
    Release(Box<Ltl>, Box<Ltl>),
    /// Always `[]φ`.
    Always(Box<Ltl>),
    /// Eventually `<>φ`.
    Eventually(Box<Ltl>),
    /// Previously `(*)φ`: φ held at the immediately preceding step (false
    /// at the first step).
    Prev(Box<Ltl>),
    /// Since `φ S ψ`.
    Since(Box<Ltl>, Box<Ltl>),
    /// Once `<*>φ`.
    Once(Box<Ltl>),
    /// Historically `[*]φ`.
    Historically(Box<Ltl>),
}

impl Ltl {
    /// `self ∧ rhs`.
    #[must_use]
    pub fn and(self, rhs: Ltl) -> Ltl {
        Ltl::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`.
    #[must_use]
    pub fn or(self, rhs: Ltl) -> Ltl {
        Ltl::Or(Box::new(self), Box::new(rhs))
    }

    /// `self ⇒ rhs`.
    #[must_use]
    pub fn implies(self, rhs: Ltl) -> Ltl {
        Ltl::Implies(Box::new(self), Box::new(rhs))
    }

    /// `¬self`.
    #[must_use]
    pub fn negated(self) -> Ltl {
        Ltl::Not(Box::new(self))
    }

    /// `[]self`.
    #[must_use]
    pub fn always(self) -> Ltl {
        Ltl::Always(Box::new(self))
    }

    /// `<>self`.
    #[must_use]
    pub fn eventually(self) -> Ltl {
        Ltl::Eventually(Box::new(self))
    }

    /// `(*)self` (immediately preceded by).
    #[must_use]
    pub fn prev(self) -> Ltl {
        Ltl::Prev(Box::new(self))
    }

    /// Whether the formula contains a future operator.
    fn has_future(&self) -> bool {
        match self {
            Ltl::True | Ltl::False | Ltl::Event(_) => false,
            Ltl::Not(a) | Ltl::Prev(a) | Ltl::Once(a) | Ltl::Historically(a) => a.has_future(),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Implies(a, b) | Ltl::Since(a, b) => {
                a.has_future() || b.has_future()
            }
            Ltl::Next(_)
            | Ltl::Until(_, _)
            | Ltl::Release(_, _)
            | Ltl::Always(_)
            | Ltl::Eventually(_) => true,
        }
    }

    /// Checks the monitorable-fragment restriction.
    fn check_no_future_under_past(&self) -> Result<(), LtlError> {
        match self {
            Ltl::Prev(a) | Ltl::Once(a) | Ltl::Historically(a) => {
                if a.has_future() {
                    return Err(LtlError::FutureUnderPast);
                }
                a.check_no_future_under_past()
            }
            Ltl::Since(a, b) => {
                if a.has_future() || b.has_future() {
                    return Err(LtlError::FutureUnderPast);
                }
                a.check_no_future_under_past()?;
                b.check_no_future_under_past()
            }
            Ltl::Not(a) => a.check_no_future_under_past(),
            Ltl::And(a, b)
            | Ltl::Or(a, b)
            | Ltl::Implies(a, b)
            | Ltl::Until(a, b)
            | Ltl::Release(a, b) => {
                a.check_no_future_under_past()?;
                b.check_no_future_under_past()
            }
            Ltl::Next(a) | Ltl::Always(a) | Ltl::Eventually(a) => a.check_no_future_under_past(),
            Ltl::True | Ltl::False | Ltl::Event(_) => Ok(()),
        }
    }

    /// Compiles the formula to a [`Dfa`] over `alphabet`.
    ///
    /// # Errors
    ///
    /// [`LtlError::FutureUnderPast`] if a future operator occurs under a
    /// past operator; [`LtlError::TooLarge`] if the formula has more than
    /// 64 future subformulas or 64 past subformulas;
    /// [`LtlError::TooManyStates`] if determinization exceeds `max_states`.
    pub fn compile(&self, alphabet: &Alphabet, max_states: usize) -> Result<Dfa, LtlError> {
        self.check_no_future_under_past()?;
        let mut ctx = CompileCtx::new(alphabet.len());
        let root = ctx.build_nnf(self, false)?;
        ctx.explore(alphabet, root, max_states)
    }
}

/// Errors from LTL compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LtlError {
    /// A future operator appeared under a past operator.
    FutureUnderPast,
    /// The formula exceeds the 64-subformula budget.
    TooLarge,
    /// Determinization exceeded the configured state budget.
    TooManyStates(usize),
}

impl fmt::Display for LtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LtlError::FutureUnderPast => {
                write!(f, "future operators may not occur under past operators")
            }
            LtlError::TooLarge => write!(f, "formula exceeds the 64-subformula budget"),
            LtlError::TooManyStates(n) => {
                write!(f, "formula produced more than {n} monitor states")
            }
        }
    }
}

impl std::error::Error for LtlError {}

// ---------------------------------------------------------------------------
// Internal compilation machinery.
// ---------------------------------------------------------------------------

/// A pure-past (or propositional) formula, arena-encoded with children
/// strictly below parents, so register evaluation is a single forward scan.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum PastNode {
    True,
    Event(EventId),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    /// Value of child at previous step.
    Prev(u32),
    /// `a S b`.
    Since(u32, u32),
    /// `<*> a`.
    Once(u32),
    /// `[*] a`.
    Historically(u32),
}

/// A future subformula in negation normal form. Leaves are event literals
/// and past atoms (indices into the past arena).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum FutureNode {
    True,
    False,
    /// Literal: current event equals/differs from `e`.
    Event {
        e: EventId,
        negated: bool,
    },
    /// Literal: past arena node value (possibly negated).
    PastAtom {
        node: u32,
        negated: bool,
    },
    And(u32, u32),
    Or(u32, u32),
    Next(u32),
    Until(u32, u32),
    Release(u32, u32),
    Always(u32),
    Eventually(u32),
}

/// An absorption-minimized DNF over future-subformula obligations. Each
/// clause is a bitset of arena indices; the clause set is sorted.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Dnf(Vec<u64>);

impl Dnf {
    fn fls() -> Dnf {
        Dnf(Vec::new())
    }

    fn tru() -> Dnf {
        Dnf(vec![0])
    }

    fn lit(i: u32) -> Dnf {
        Dnf(vec![1u64 << i])
    }

    fn is_false(&self) -> bool {
        self.0.is_empty()
    }

    fn is_true(&self) -> bool {
        self.0.first() == Some(&0)
    }

    fn normalize(mut clauses: Vec<u64>) -> Dnf {
        clauses.sort_unstable();
        clauses.dedup();
        // Absorption: drop clauses that are supersets of another clause.
        let keep: Vec<u64> = clauses
            .iter()
            .copied()
            .filter(|&c| !clauses.iter().any(|&d| d != c && d & !c == 0))
            .collect();
        Dnf(keep)
    }

    fn or(&self, other: &Dnf) -> Dnf {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Dnf::normalize(v)
    }

    fn and(&self, other: &Dnf) -> Dnf {
        let mut v = Vec::with_capacity(self.0.len() * other.0.len());
        for &a in &self.0 {
            for &b in &other.0 {
                v.push(a | b);
            }
        }
        Dnf::normalize(v)
    }
}

struct CompileCtx {
    n_events: usize,
    past: Vec<PastNode>,
    past_index: BTreeMap<PastNode, u32>,
    future: Vec<FutureNode>,
    future_index: BTreeMap<FutureNode, u32>,
}

impl CompileCtx {
    fn new(n_events: usize) -> Self {
        CompileCtx {
            n_events,
            past: Vec::new(),
            past_index: BTreeMap::new(),
            future: Vec::new(),
            future_index: BTreeMap::new(),
        }
    }

    fn intern_past(&mut self, node: PastNode) -> Result<u32, LtlError> {
        if let Some(&i) = self.past_index.get(&node) {
            return Ok(i);
        }
        if self.past.len() >= 64 {
            return Err(LtlError::TooLarge);
        }
        let i = self.past.len() as u32;
        self.past.push(node.clone());
        self.past_index.insert(node, i);
        Ok(i)
    }

    fn intern_future(&mut self, node: FutureNode) -> Result<u32, LtlError> {
        if let Some(&i) = self.future_index.get(&node) {
            return Ok(i);
        }
        if self.future.len() >= 64 {
            return Err(LtlError::TooLarge);
        }
        let i = self.future.len() as u32;
        self.future.push(node.clone());
        self.future_index.insert(node, i);
        Ok(i)
    }

    /// Encodes a pure-past formula into the past arena.
    fn build_past(&mut self, f: &Ltl) -> Result<u32, LtlError> {
        let node = match f {
            Ltl::True => PastNode::True,
            Ltl::False => {
                let t = self.intern_past(PastNode::True)?;
                PastNode::Not(t)
            }
            Ltl::Event(e) => PastNode::Event(*e),
            Ltl::Not(a) => PastNode::Not(self.build_past(a)?),
            Ltl::And(a, b) => PastNode::And(self.build_past(a)?, self.build_past(b)?),
            Ltl::Or(a, b) => PastNode::Or(self.build_past(a)?, self.build_past(b)?),
            Ltl::Implies(a, b) => {
                let na = self.build_past(a)?;
                let not_a = self.intern_past(PastNode::Not(na))?;
                PastNode::Or(not_a, self.build_past(b)?)
            }
            Ltl::Prev(a) => PastNode::Prev(self.build_past(a)?),
            Ltl::Since(a, b) => PastNode::Since(self.build_past(a)?, self.build_past(b)?),
            Ltl::Once(a) => PastNode::Once(self.build_past(a)?),
            Ltl::Historically(a) => PastNode::Historically(self.build_past(a)?),
            _ => unreachable!("future under past rejected earlier"),
        };
        self.intern_past(node)
    }

    /// Converts to NNF over the future arena; `neg` tracks a pending
    /// negation pushed inward.
    fn build_nnf(&mut self, f: &Ltl, neg: bool) -> Result<u32, LtlError> {
        let node = match (f, neg) {
            (Ltl::True, false) | (Ltl::False, true) => FutureNode::True,
            (Ltl::True, true) | (Ltl::False, false) => FutureNode::False,
            (Ltl::Event(e), _) => FutureNode::Event { e: *e, negated: neg },
            (Ltl::Not(a), _) => return self.build_nnf(a, !neg),
            (Ltl::And(a, b), false) | (Ltl::Or(a, b), true) => {
                FutureNode::And(self.build_nnf(a, neg)?, self.build_nnf(b, neg)?)
            }
            (Ltl::Or(a, b), false) | (Ltl::And(a, b), true) => {
                FutureNode::Or(self.build_nnf(a, neg)?, self.build_nnf(b, neg)?)
            }
            (Ltl::Implies(a, b), false) => {
                FutureNode::Or(self.build_nnf(a, true)?, self.build_nnf(b, false)?)
            }
            (Ltl::Implies(a, b), true) => {
                FutureNode::And(self.build_nnf(a, false)?, self.build_nnf(b, true)?)
            }
            (Ltl::Next(a), _) => FutureNode::Next(self.build_nnf(a, neg)?),
            (Ltl::Until(a, b), false) => {
                FutureNode::Until(self.build_nnf(a, false)?, self.build_nnf(b, false)?)
            }
            (Ltl::Until(a, b), true) => {
                FutureNode::Release(self.build_nnf(a, true)?, self.build_nnf(b, true)?)
            }
            (Ltl::Release(a, b), false) => {
                FutureNode::Release(self.build_nnf(a, false)?, self.build_nnf(b, false)?)
            }
            (Ltl::Release(a, b), true) => {
                FutureNode::Until(self.build_nnf(a, true)?, self.build_nnf(b, true)?)
            }
            (Ltl::Always(a), false) | (Ltl::Eventually(a), true) => {
                FutureNode::Always(self.build_nnf(a, neg)?)
            }
            (Ltl::Eventually(a), false) | (Ltl::Always(a), true) => {
                FutureNode::Eventually(self.build_nnf(a, neg)?)
            }
            // Past subformulas become atoms evaluated by registers.
            (Ltl::Prev(_) | Ltl::Since(_, _) | Ltl::Once(_) | Ltl::Historically(_), _) => {
                let p = self.build_past(f)?;
                FutureNode::PastAtom { node: p, negated: neg }
            }
        };
        self.intern_future(node)
    }

    /// Evaluates all past-arena nodes for the current event, given the
    /// previous step's values (`pre`) and whether this is the first step.
    fn eval_past(&self, event: EventId, pre: u64, first: bool) -> u64 {
        let mut now = 0u64;
        let get = |bits: u64, i: u32| bits & (1 << i) != 0;
        for (i, node) in self.past.iter().enumerate() {
            let v = match *node {
                PastNode::True => true,
                PastNode::Event(e) => e == event,
                PastNode::Not(a) => !get(now, a),
                PastNode::And(a, b) => get(now, a) && get(now, b),
                PastNode::Or(a, b) => get(now, a) || get(now, b),
                PastNode::Prev(a) => !first && get(pre, a),
                PastNode::Since(a, b) => {
                    get(now, b) || (get(now, a) && !first && get(pre, i as u32))
                }
                PastNode::Once(a) => get(now, a) || (!first && get(pre, i as u32)),
                PastNode::Historically(a) => get(now, a) && (first || get(pre, i as u32)),
            };
            if v {
                now |= 1 << i;
            }
        }
        now
    }

    /// Progression of one obligation through the letter
    /// `(event, past-values)`, as a DNF over next-step obligations.
    fn prog(&self, ob: u32, event: EventId, past_now: u64) -> Dnf {
        match self.future[ob as usize] {
            FutureNode::True => Dnf::tru(),
            FutureNode::False => Dnf::fls(),
            FutureNode::Event { e, negated } => {
                if (e == event) != negated {
                    Dnf::tru()
                } else {
                    Dnf::fls()
                }
            }
            FutureNode::PastAtom { node, negated } => {
                if (past_now & (1 << node) != 0) != negated {
                    Dnf::tru()
                } else {
                    Dnf::fls()
                }
            }
            FutureNode::And(a, b) => {
                self.prog(a, event, past_now).and(&self.prog(b, event, past_now))
            }
            FutureNode::Or(a, b) => {
                self.prog(a, event, past_now).or(&self.prog(b, event, past_now))
            }
            FutureNode::Next(a) => Dnf::lit(a),
            FutureNode::Until(a, b) => {
                // a U b = b ∨ (a ∧ X(a U b))
                let again = Dnf::lit(ob);
                self.prog(b, event, past_now).or(&self.prog(a, event, past_now).and(&again))
            }
            FutureNode::Release(a, b) => {
                // a R b = b ∧ (a ∨ X(a R b))
                let again = Dnf::lit(ob);
                self.prog(b, event, past_now).and(&self.prog(a, event, past_now).or(&again))
            }
            FutureNode::Always(a) => {
                let again = Dnf::lit(ob);
                self.prog(a, event, past_now).and(&again)
            }
            FutureNode::Eventually(a) => {
                let again = Dnf::lit(ob);
                self.prog(a, event, past_now).or(&again)
            }
        }
    }

    /// Progression of a whole DNF state.
    fn prog_dnf(&self, state: &Dnf, event: EventId, past_now: u64) -> Dnf {
        let mut out = Dnf::fls();
        for &clause in &state.0 {
            let mut acc = Dnf::tru();
            let mut bits = clause;
            while bits != 0 {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                acc = acc.and(&self.prog(i, event, past_now));
                if acc.is_false() {
                    break;
                }
            }
            out = out.or(&acc);
        }
        out
    }

    /// Explores the reachable `(DNF, past registers, first?)` states and
    /// builds the DFA.
    fn explore(&self, alphabet: &Alphabet, root: u32, max_states: usize) -> Result<Dfa, LtlError> {
        assert_eq!(alphabet.len(), self.n_events);
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone)]
        struct StateKey {
            dnf: Dnf,
            pre: u64,
            first: bool,
        }
        let initial = StateKey { dnf: Dnf(vec![1u64 << root]), pre: 0, first: true };
        let mut index: BTreeMap<StateKey, u32> = BTreeMap::new();
        let mut order: Vec<StateKey> = Vec::new();
        index.insert(initial.clone(), 0);
        order.push(initial);
        let mut trans: Vec<(u32, EventId, u32)> = Vec::new();
        let mut next = 0usize;
        while next < order.len() {
            let s = next as u32;
            next += 1;
            let key = order[s as usize].clone();
            for e in alphabet.iter() {
                let past_now = self.eval_past(e, key.pre, key.first);
                let dnf = self.prog_dnf(&key.dnf, e, past_now);
                // Once decided, the verdict is absorbing: collapse the past
                // registers so decided states merge.
                let succ = if dnf.is_false() || dnf.is_true() {
                    StateKey { dnf, pre: 0, first: false }
                } else {
                    StateKey { dnf, pre: past_now, first: false }
                };
                let t = match index.get(&succ) {
                    Some(&t) => t,
                    None => {
                        if order.len() >= max_states {
                            return Err(LtlError::TooManyStates(max_states));
                        }
                        let t = order.len() as u32;
                        index.insert(succ.clone(), t);
                        order.push(succ);
                        t
                    }
                };
                trans.push((s, e, t));
            }
        }
        let mut b = DfaBuilder::new(alphabet.clone());
        for key in &order {
            let v = if key.dnf.is_false() {
                Verdict::Fail
            } else if key.dnf.is_true() {
                Verdict::Match
            } else {
                Verdict::Unknown
            };
            b.add_state(v);
        }
        for (s, e, t) in trans {
            b.set_transition(s, e, t);
        }
        Ok(b.finish(0))
    }
}

/// Builds the paper's Figure 2 LTL property
/// `[](next => (*)hasnexttrue)` over the given alphabet.
///
/// # Panics
///
/// Panics if `alphabet` lacks `hasnexttrue` or `next`.
#[must_use]
pub fn has_next_ltl(alphabet: &Alphabet) -> Ltl {
    let ev = |n: &str| {
        Ltl::Event(alphabet.lookup(n).unwrap_or_else(|| panic!("alphabet lacks event `{n}`")))
    };
    ev("next").implies(ev("hasnexttrue").prev()).always()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::GoalSet;

    fn hasnext_alphabet() -> Alphabet {
        Alphabet::from_names(&["hasnexttrue", "hasnextfalse", "next"])
    }

    #[test]
    fn figure_2_ltl_flags_unchecked_next() {
        let a = hasnext_alphabet();
        let d = has_next_ltl(&a).compile(&a, 10_000).unwrap();
        let e = |n: &str| a.lookup(n).unwrap();
        // next with no preceding hasnexttrue: violation.
        assert_eq!(d.classify(&[e("next")]), Verdict::Fail);
        // hasnexttrue next: fine so far.
        assert_eq!(d.classify(&[e("hasnexttrue"), e("next")]), Verdict::Unknown);
        // hasnexttrue next next: second next unchecked — violation.
        assert_eq!(d.classify(&[e("hasnexttrue"), e("next"), e("next")]), Verdict::Fail);
        // hasnextfalse then next: violation.
        assert_eq!(d.classify(&[e("hasnextfalse"), e("next")]), Verdict::Fail);
        // hasnexttrue hasnextfalse next: the *immediately* preceding call
        // returned false — violation (matches (*) semantics).
        assert_eq!(d.classify(&[e("hasnexttrue"), e("hasnextfalse"), e("next")]), Verdict::Fail);
        // Violations are permanent.
        assert_eq!(d.classify(&[e("next"), e("hasnexttrue"), e("next")]), Verdict::Fail);
    }

    #[test]
    fn ltl_and_fsm_agree_on_hasnext_traces() {
        // The FSM of Figure 1 reaches `error` exactly when the LTL of
        // Figure 2 is violated (on traces without hasnextfalse-after-true
        // subtleties the two formulations coincide; we check exhaustively
        // on all traces up to length 6 that FSM-match implies LTL-fail).
        let a = hasnext_alphabet();
        let ltl = has_next_ltl(&a).compile(&a, 10_000).unwrap();
        let (fa, fsm) = crate::fsm::has_next_fsm();
        let fsm = fsm.compile(&fa).unwrap();
        let events: Vec<EventId> = a.iter().collect();
        let mut traces: Vec<Vec<EventId>> = vec![vec![]];
        for _ in 0..6 {
            let mut next_traces = Vec::new();
            for t in &traces {
                for &e in &events {
                    let mut t2 = t.clone();
                    t2.push(e);
                    next_traces.push(t2);
                }
            }
            for t in &next_traces {
                let fsm_v = fsm.classify(t);
                let ltl_v = ltl.classify(t);
                if fsm_v == Verdict::Match {
                    assert_eq!(ltl_v, Verdict::Fail, "trace {t:?}");
                }
            }
            traces = next_traces;
        }
    }

    #[test]
    fn until_progression() {
        let a = Alphabet::from_names(&["p", "q"]);
        let p = Ltl::Event(a.lookup("p").unwrap());
        let q = Ltl::Event(a.lookup("q").unwrap());
        let d = Ltl::Until(Box::new(p), Box::new(q)).compile(&a, 1000).unwrap();
        let ep = a.lookup("p").unwrap();
        let eq = a.lookup("q").unwrap();
        assert_eq!(d.classify(&[eq]), Verdict::Match);
        assert_eq!(d.classify(&[ep, ep, eq]), Verdict::Match);
        assert_eq!(d.classify(&[ep]), Verdict::Unknown);
        // Match is absorbing.
        assert_eq!(d.classify(&[eq, ep, ep]), Verdict::Match);
    }

    #[test]
    fn eventually_never_fails_and_always_never_matches() {
        let a = Alphabet::from_names(&["p", "q"]);
        let ep = a.lookup("p").unwrap();
        let eq = a.lookup("q").unwrap();
        let f = Ltl::Event(ep).eventually().compile(&a, 1000).unwrap();
        assert_eq!(f.classify(&[eq, eq, eq]), Verdict::Unknown);
        assert_eq!(f.classify(&[eq, ep]), Verdict::Match);
        let g = Ltl::Event(ep).always().compile(&a, 1000).unwrap();
        assert_eq!(g.classify(&[ep, ep]), Verdict::Unknown);
        assert_eq!(g.classify(&[ep, eq]), Verdict::Fail);
    }

    #[test]
    fn next_is_strong() {
        let a = Alphabet::from_names(&["p", "q"]);
        let ep = a.lookup("p").unwrap();
        let eq = a.lookup("q").unwrap();
        let d = Ltl::Next(Box::new(Ltl::Event(eq))).compile(&a, 1000).unwrap();
        assert_eq!(d.classify(&[ep, eq]), Verdict::Match);
        assert_eq!(d.classify(&[ep, ep]), Verdict::Fail);
        assert_eq!(d.classify(&[ep]), Verdict::Unknown);
    }

    #[test]
    fn since_and_once_registers() {
        let a = Alphabet::from_names(&["p", "q", "r"]);
        let ep = a.lookup("p").unwrap();
        let eq = a.lookup("q").unwrap();
        let er = a.lookup("r").unwrap();
        // [](r => <*>q): every r must be preceded (inclusively) by some q.
        let f = Ltl::Event(er)
            .implies(Ltl::Once(Box::new(Ltl::Event(eq))))
            .always()
            .compile(&a, 1000)
            .unwrap();
        assert_eq!(f.classify(&[ep, er]), Verdict::Fail);
        assert_eq!(f.classify(&[eq, ep, er]), Verdict::Unknown);
        // [](r => (p S q)): p continuously since a q.
        let g = Ltl::Event(er)
            .implies(Ltl::Since(Box::new(Ltl::Event(ep)), Box::new(Ltl::Event(eq))))
            .always()
            .compile(&a, 1000)
            .unwrap();
        assert_eq!(g.classify(&[eq, ep, er]), Verdict::Fail, "r itself breaks the p-chain");
        // q p r: S is evaluated at r's step: r is not p and not q → false.
        // Use the prev-shifted variant instead for a passing case:
        let h = Ltl::Event(er)
            .implies(Ltl::Since(Box::new(Ltl::Event(ep)), Box::new(Ltl::Event(eq))).prev())
            .always()
            .compile(&a, 1000)
            .unwrap();
        assert_eq!(h.classify(&[eq, ep, er]), Verdict::Unknown);
        assert_eq!(h.classify(&[ep, ep, er]), Verdict::Fail);
    }

    #[test]
    fn future_under_past_is_rejected() {
        let a = Alphabet::from_names(&["p"]);
        let p = Ltl::Event(a.lookup("p").unwrap());
        let bad = Ltl::Prev(Box::new(p.eventually()));
        assert_eq!(bad.compile(&a, 1000).unwrap_err(), LtlError::FutureUnderPast);
    }

    #[test]
    fn coenable_on_ltl_dfa_with_fail_goal() {
        // For HASNEXT-as-LTL with goal {fail}: from any *undecided* state,
        // reaching a violation requires a next, so the coenable sets of
        // hasnexttrue/hasnextfalse all mention next. After next itself the
        // monitor may already sit in the absorbing fail state, whose
        // post-goal continuations (Definition 10 traces keep going) yield
        // sets without next — the engine handles those by terminating
        // verdict-constant monitors instead.
        let a = hasnext_alphabet();
        let d = has_next_ltl(&a).compile(&a, 10_000).unwrap();
        let co = d.coenable(GoalSet::FAIL);
        let next = a.lookup("next").unwrap();
        for e in [a.lookup("hasnexttrue").unwrap(), a.lookup("hasnextfalse").unwrap()] {
            assert!(!co.of(e).is_empty());
            for s in co.of(e).sets() {
                assert!(s.contains(next), "coenable set {s:?} for {e:?} lacks next");
            }
        }
        assert!(!co.of(next).is_empty());
        // The absorbing fail state is verdict-constant: the engine will
        // terminate monitors there rather than rely on coenable GC.
        let constant = d.constant_verdict_states();
        let e = |n: &str| a.lookup(n).unwrap();
        let s = d.step(d.initial(), e("next"));
        assert_eq!(d.verdict(s), Verdict::Fail);
        assert!(constant[s as usize]);
        assert!(!constant[d.initial() as usize]);
    }

    #[test]
    fn release_is_dual_of_until() {
        let a = Alphabet::from_names(&["p", "q"]);
        let ep = a.lookup("p").unwrap();
        let eq = a.lookup("q").unwrap();
        let p = Ltl::Event(ep);
        let q = Ltl::Event(eq);
        // ¬(p U q) ≡ ¬p R ¬q: compare verdicts on all traces ≤ 5.
        let lhs = Ltl::Until(Box::new(p.clone()), Box::new(q.clone())).negated();
        let rhs = Ltl::Release(Box::new(p.negated()), Box::new(q.negated()));
        let dl = lhs.compile(&a, 1000).unwrap();
        let dr = rhs.compile(&a, 1000).unwrap();
        let mut traces = vec![vec![]];
        for _ in 0..5 {
            let mut nt = Vec::new();
            for t in &traces {
                for e in [ep, eq] {
                    let mut t2 = t.clone();
                    t2.push(e);
                    nt.push(t2);
                }
            }
            for t in &nt {
                assert_eq!(dl.classify(t), dr.classify(t), "trace {t:?}");
            }
            traces = nt;
        }
    }
}
