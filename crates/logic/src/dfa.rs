//! The deterministic finite-state backbone shared by the FSM, ERE and LTL
//! plugins, together with the paper's SEEABLE/COENABLE fixpoint (§3, "FSM
//! Example") and the state-indexed variant used by the Tracematches-style
//! baseline.

use std::fmt;

use crate::coenable::{CoenableSets, SetFamily};
use crate::event::{Alphabet, EventId, EventSet};
use crate::param::{EventDef, ParamSet};
use crate::verdict::{GoalSet, Verdict};

/// Sentinel for a missing transition: the monitor falls into an implicit
/// permanent-fail sink (the paper's partial `σ`).
pub const DEAD: u32 = u32::MAX;

/// A deterministic finite-state monitor in the spirit of Definition 8:
/// `(S, E, C, ı, σ, γ)` with partial `σ` and verdict function `γ`.
#[derive(Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Alphabet,
    initial: u32,
    n_states: u32,
    /// Row-major: `trans[state * |E| + event]`, `DEAD` when undefined.
    trans: Vec<u32>,
    /// `γ`: verdict per state.
    verdicts: Vec<Verdict>,
    /// Optional human-readable state names (FSM specs keep theirs).
    state_names: Vec<String>,
    /// Cached constant-verdict analysis (see
    /// [`Dfa::constant_verdict_states`]); computed once at construction so
    /// the per-event terminality check is an array load.
    constant: Vec<bool>,
    /// Cached: can a `Match`-verdict state be reached in ≥ 1 steps?
    future_match: Vec<bool>,
    /// Cached: can a `Fail`-verdict state (or the dead sink) be reached in
    /// ≥ 1 steps?
    future_fail: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA.
    ///
    /// # Panics
    ///
    /// Panics if the table dimensions are inconsistent, the initial state is
    /// out of range, or a transition targets a state out of range.
    #[must_use]
    pub fn new(
        alphabet: Alphabet,
        initial: u32,
        trans: Vec<u32>,
        verdicts: Vec<Verdict>,
        state_names: Vec<String>,
    ) -> Self {
        let n_states = verdicts.len() as u32;
        assert!(initial < n_states, "initial state out of range");
        assert_eq!(trans.len(), verdicts.len() * alphabet.len(), "transition table shape");
        assert_eq!(state_names.len(), verdicts.len(), "one name per state");
        for &t in &trans {
            assert!(t == DEAD || t < n_states, "transition target out of range");
        }
        let mut dfa = Dfa {
            alphabet,
            initial,
            n_states,
            trans,
            verdicts,
            state_names,
            constant: Vec::new(),
            future_match: Vec::new(),
            future_fail: Vec::new(),
        };
        dfa.constant = dfa.compute_constant_verdicts();
        dfa.future_match = dfa.compute_future(Verdict::Match);
        dfa.future_fail = dfa.compute_future(Verdict::Fail);
        dfa
    }

    /// For each state: is a state with verdict `v` reachable in one or more
    /// steps? The implicit dead sink counts as a `Fail` state.
    fn compute_future(&self, v: Verdict) -> Vec<bool> {
        let n = self.n_states as usize;
        let mut fut = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                if fut[s] {
                    continue;
                }
                for e in self.alphabet.iter() {
                    let t = self.step(s as u32, e);
                    let hit = if t == DEAD {
                        v == Verdict::Fail
                    } else {
                        self.verdicts[t as usize] == v || fut[t as usize]
                    };
                    if hit {
                        fut[s] = true;
                        changed = true;
                        break;
                    }
                }
            }
        }
        fut
    }

    /// Whether a monitor sitting in `state` can be *terminated* for `goal`:
    /// either its verdict can never change again (constant-verdict state),
    /// or no goal verdict can be produced by any future event — "there is
    /// no reason to maintain the monitor instance after it has executed the
    /// proper handler" (§3). The dead sink is always terminal.
    #[must_use]
    pub fn is_terminal_state(&self, state: u32, goal: GoalSet) -> bool {
        if state == DEAD {
            return true;
        }
        let s = state as usize;
        if self.constant[s] {
            return true;
        }
        (!goal.contains(Verdict::Match) || !self.future_match[s])
            && (!goal.contains(Verdict::Fail) || !self.future_fail[s])
    }

    /// The alphabet `E`.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The initial state `ı`.
    #[must_use]
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Number of states (not counting the implicit dead sink).
    #[must_use]
    pub fn state_count(&self) -> u32 {
        self.n_states
    }

    /// `σ(state, e)`, or [`DEAD`] when undefined or already dead.
    #[must_use]
    pub fn step(&self, state: u32, e: EventId) -> u32 {
        if state == DEAD {
            DEAD
        } else {
            self.trans[state as usize * self.alphabet.len() + e.as_usize()]
        }
    }

    /// `γ(state)`; the dead sink reports [`Verdict::Fail`].
    #[must_use]
    pub fn verdict(&self, state: u32) -> Verdict {
        if state == DEAD {
            Verdict::Fail
        } else {
            self.verdicts[state as usize]
        }
    }

    /// The name of `state` (empty for generated DFAs without names).
    ///
    /// # Panics
    ///
    /// Panics if `state` is [`DEAD`] or out of range.
    #[must_use]
    pub fn state_name(&self, state: u32) -> &str {
        &self.state_names[state as usize]
    }

    /// Runs the DFA over a trace from the initial state, returning the final
    /// verdict — the property `P_M` of Definition 8.
    #[must_use]
    pub fn classify(&self, trace: &[EventId]) -> Verdict {
        let mut s = self.initial;
        for &e in trace {
            s = self.step(s, e);
        }
        self.verdict(s)
    }

    /// The set of states reachable from the initial state.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.n_states as usize];
        let mut stack = vec![self.initial];
        seen[self.initial as usize] = true;
        while let Some(s) = stack.pop() {
            for e in self.alphabet.iter() {
                let t = self.step(s, e);
                if t != DEAD && !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// For each state, whether some goal verdict is reachable from it (in
    /// zero or more steps). The implicit dead sink carries
    /// [`Verdict::Fail`], so a missing transition counts as reaching the
    /// goal when `fail ∈ G`.
    #[must_use]
    pub fn can_reach_goal(&self, goal: GoalSet) -> Vec<bool> {
        // Backward closure over the transition relation.
        let n = self.n_states as usize;
        let fail_goal = goal.contains(Verdict::Fail);
        let mut can = vec![false; n];
        for s in 0..n {
            can[s] = goal.contains(self.verdicts[s]);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                if can[s] {
                    continue;
                }
                for e in self.alphabet.iter() {
                    let t = self.step(s as u32, e);
                    let hit = if t == DEAD { fail_goal } else { can[t as usize] };
                    if hit {
                        can[s] = true;
                        changed = true;
                        break;
                    }
                }
            }
        }
        can
    }

    /// For each state, whether every state reachable from it (including
    /// itself) carries the *same* verdict. A monitor that enters such a
    /// state can be terminated: its verdict will never change, so after
    /// firing the handler (if any) it is pure overhead. This is how the
    /// engine retires monitors stuck in absorbing `match`/`fail` states,
    /// complementing the coenable-set collection.
    ///
    /// The analysis is precomputed at construction; this accessor is free.
    #[must_use]
    pub fn constant_verdict_states(&self) -> &[bool] {
        &self.constant
    }

    /// Whether `state` is verdict-constant (`DEAD` always is).
    #[must_use]
    pub fn is_constant_verdict(&self, state: u32) -> bool {
        state == DEAD || self.constant[state as usize]
    }

    fn compute_constant_verdicts(&self) -> Vec<bool> {
        let n = self.n_states as usize;
        // constant[s] starts true and is cleared when s can reach a state
        // with a different verdict (the implicit dead sink counts as Fail).
        let mut constant = vec![true; n];
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                if !constant[s] {
                    continue;
                }
                for e in self.alphabet.iter() {
                    let t = self.step(s as u32, e);
                    let breaks = if t == DEAD {
                        self.verdicts[s] != Verdict::Fail
                    } else {
                        self.verdicts[t as usize] != self.verdicts[s] || !constant[t as usize]
                    };
                    if breaks {
                        constant[s] = false;
                        changed = true;
                        break;
                    }
                }
            }
        }
        constant
    }

    /// The SEEABLE fixpoint of §3: for every state `s`, the family of event
    /// sets `{e₁,…,eₙ}` occurring along some path from `s` to a goal state.
    /// Goal states additionally see the empty continuation `∅` (represented
    /// here by an explicit flag, since [`SetFamily`] drops `∅`).
    ///
    /// Families are kept *exact* (no absorption) so the paper's worked
    /// examples can be asserted verbatim; callers wanting the minimized form
    /// use [`SetFamily::minimized`] or go through
    /// [`crate::coenable::ParamCoenable::aliveness`].
    ///
    /// Transitions *out of verdict-constant states* do not contribute: a
    /// monitor entering such a state is terminated by the engine (its
    /// verdict can never change), so continuations past it never occur.
    /// This matches the paper's reading — the trailing events of a goal
    /// trace after the verdict is sealed are not reasons to keep a monitor
    /// — and is what keeps absorbing-`fail` LTL automata collectable.
    ///
    /// # Panics
    ///
    /// Panics if the alphabet has more than 16 events (the exact fixpoint is
    /// exponential in `|E|`; real properties have ≤ 6 events).
    #[must_use]
    pub fn seeable(&self, goal: GoalSet) -> Vec<(SetFamily, bool)> {
        assert!(
            self.alphabet.len() <= 16,
            "exact SEEABLE fixpoint limited to 16 events; property alphabets are small"
        );
        let n = self.n_states as usize;
        let constant = self.constant_verdict_states();
        // (family of non-empty continuations, sees-empty-continuation flag)
        let mut seeable: Vec<(SetFamily, bool)> =
            (0..n).map(|s| (SetFamily::new(), goal.contains(self.verdicts[s]))).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                if constant[s] {
                    continue;
                }
                for e in self.alphabet.iter() {
                    let t = self.step(s as u32, e);
                    if t == DEAD {
                        // The dead sink is a verdict-constant fail state:
                        // when fail ∈ G, taking this transition reaches the
                        // goal with an empty continuation.
                        if goal.contains(Verdict::Fail)
                            && seeable[s].0.insert(EventSet::singleton(e))
                        {
                            changed = true;
                        }
                        continue;
                    }
                    // {e} ∪ T for every continuation T of t, including ∅.
                    let (succ_family, succ_empty) = {
                        let entry = &seeable[t as usize];
                        (entry.0.sets().to_vec(), entry.1)
                    };
                    if succ_empty && seeable[s].0.insert(EventSet::singleton(e)) {
                        changed = true;
                    }
                    for set in succ_family {
                        if seeable[s].0.insert(set.with(e)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        seeable
    }

    /// The ENABLE sets of Chen et al. \[19\], the *dual* of the coenable
    /// sets: `ENABLE_{P,G}(e)` collects, over goal traces containing `e`,
    /// the sets of events occurring *before* `e`. The paper's RV system
    /// uses them to avoid needlessly *creating* monitors (§1 cites \[19\]),
    /// complementing coenable-based collection.
    ///
    /// Returns, per event, the family of non-empty before-sets plus a flag
    /// for whether `e` can be the first event of a goal trace (`∅ ∈
    /// ENABLE(e)`).
    ///
    /// # Panics
    ///
    /// Panics if the alphabet has more than 16 events.
    #[must_use]
    pub fn enable(&self, goal: GoalSet) -> Vec<(SetFamily, bool)> {
        assert!(
            self.alphabet.len() <= 16,
            "exact ENABLE fixpoint limited to 16 events; property alphabets are small"
        );
        let n = self.n_states as usize;
        // BEFORE(s): event sets along paths initial → s (∅ at the initial
        // state), restricted to the forward-reachable part.
        let mut before: Vec<(SetFamily, bool)> = vec![(SetFamily::new(), false); n];
        before[self.initial as usize].1 = true;
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                let (family, has_empty) = {
                    let entry = &before[s];
                    (entry.0.sets().to_vec(), entry.1)
                };
                if family.is_empty() && !has_empty {
                    continue; // not reached yet
                }
                for e in self.alphabet.iter() {
                    let t = self.step(s as u32, e);
                    if t == DEAD {
                        continue;
                    }
                    if has_empty && before[t as usize].0.insert(EventSet::singleton(e)) {
                        changed = true;
                    }
                    for &set in &family {
                        if before[t as usize].0.insert(set.with(e)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        let can = self.can_reach_goal(goal);
        let mut out: Vec<(SetFamily, bool)> = vec![(SetFamily::new(), false); self.alphabet.len()];
        for s in 0..n {
            let reached = before[s].1 || !before[s].0.is_empty();
            if !reached {
                continue;
            }
            for e in self.alphabet.iter() {
                let t = self.step(s as u32, e);
                let counts = if t == DEAD {
                    // Falling off the machine *is* the fail verdict.
                    goal.contains(Verdict::Fail)
                } else {
                    can[t as usize]
                };
                if !counts {
                    continue;
                }
                let slot = &mut out[e.as_usize()];
                if before[s].1 {
                    slot.1 = true;
                }
                let sets: Vec<EventSet> = before[s].0.sets().to_vec();
                for set in sets {
                    slot.0.insert(set);
                }
            }
        }
        out
    }

    /// `COENABLE_{P,G}(e) = ⋃_{σ(s,e)=s'} SEEABLE(s')` over *reachable*
    /// states `s` (traces in Definition 10 start at the initial state),
    /// with `∅` dropped per the paper.
    #[must_use]
    pub fn coenable(&self, goal: GoalSet) -> CoenableSets {
        let seeable = self.seeable(goal);
        let reachable = self.reachable();
        let constant = self.constant_verdict_states();
        let mut per_event: Vec<SetFamily> = vec![SetFamily::new(); self.alphabet.len()];
        for s in 0..self.n_states as usize {
            if !reachable[s] || constant[s] {
                continue;
            }
            for e in self.alphabet.iter() {
                let t = self.step(s as u32, e);
                if t == DEAD {
                    continue;
                }
                for &set in seeable[t as usize].0.sets() {
                    per_event[e.as_usize()].insert(set);
                }
                // ∅ members are dropped (Definition 10 discussion).
            }
        }
        CoenableSets::new(per_event)
    }

    /// The *state-indexed* aliveness used by the Tracematches-style baseline
    /// ("coenable sets indexed by state rather than events", §3 Discussion):
    /// for each state, the minimized parameter-set disjunction that must
    /// have all members alive for the goal to remain reachable.
    ///
    /// A binding sitting in state `s` is collectable iff every disjunct of
    /// `state s` contains a dead parameter (and `s` is not itself a goal
    /// state that still needs reporting).
    #[must_use]
    pub fn state_aliveness(&self, goal: GoalSet, def: &EventDef) -> StateAliveness {
        let seeable = self.seeable(goal);
        let per_state = seeable
            .iter()
            .map(|(family, _sees_empty)| {
                let mut masks: Vec<ParamSet> =
                    family.minimized().sets().iter().map(|&s| def.params_of_set(s)).collect();
                masks.sort_unstable();
                masks.dedup();
                // Absorption at the parameter level.
                let keep: Vec<ParamSet> = masks
                    .iter()
                    .copied()
                    .filter(|&s| !masks.iter().any(|&t| t != s && t.is_subset(s)))
                    .collect();
                keep
            })
            .collect();
        StateAliveness { per_state }
    }
}

/// State-indexed aliveness disjuncts (see [`Dfa::state_aliveness`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateAliveness {
    per_state: Vec<Vec<ParamSet>>,
}

impl StateAliveness {
    /// Whether a binding in `state` can still reach the goal given `dead`
    /// parameters. The dead sink is never necessary.
    #[must_use]
    pub fn is_necessary(&self, state: u32, dead: ParamSet) -> bool {
        if state == DEAD {
            return false;
        }
        self.per_state[state as usize].iter().any(|&m| m.intersection(dead).is_empty())
    }

    /// The disjunct masks for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is [`DEAD`] or out of range.
    #[must_use]
    pub fn masks(&self, state: u32) -> &[ParamSet] {
        &self.per_state[state as usize]
    }
}

impl fmt::Debug for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dfa")
            .field("states", &self.n_states)
            .field("events", &self.alphabet.len())
            .field("initial", &self.initial)
            .finish()
    }
}

impl fmt::Display for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dfa with {} states over {} events", self.n_states, self.alphabet.len())?;
        for s in 0..self.n_states {
            let name = if self.state_names[s as usize].is_empty() {
                format!("s{s}")
            } else {
                self.state_names[s as usize].clone()
            };
            let marker = if s == self.initial { "->" } else { "  " };
            writeln!(f, "{marker} {name} [{}]", self.verdicts[s as usize])?;
            for e in self.alphabet.iter() {
                let t = self.step(s, e);
                if t != DEAD {
                    writeln!(f, "     {} -> s{t}", self.alphabet.name(e))?;
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Dfa`], used by the FSM front-end and by the
/// ERE/LTL determinizers.
#[derive(Debug)]
pub struct DfaBuilder {
    alphabet: Alphabet,
    trans: Vec<u32>,
    verdicts: Vec<Verdict>,
    state_names: Vec<String>,
}

impl DfaBuilder {
    /// Starts a builder over `alphabet`.
    #[must_use]
    pub fn new(alphabet: Alphabet) -> Self {
        DfaBuilder { alphabet, trans: Vec::new(), verdicts: Vec::new(), state_names: Vec::new() }
    }

    /// Adds a state with the given verdict, returning its id.
    pub fn add_state(&mut self, verdict: Verdict) -> u32 {
        self.add_named_state(verdict, "")
    }

    /// Adds a named state.
    pub fn add_named_state(&mut self, verdict: Verdict, name: &str) -> u32 {
        let id = self.verdicts.len() as u32;
        self.verdicts.push(verdict);
        self.state_names.push(name.to_owned());
        self.trans.extend(std::iter::repeat_n(DEAD, self.alphabet.len()));
        id
    }

    /// Sets `σ(from, e) = to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range.
    pub fn set_transition(&mut self, from: u32, e: EventId, to: u32) {
        assert!((from as usize) < self.verdicts.len(), "from-state out of range");
        assert!((to as usize) < self.verdicts.len(), "to-state out of range");
        self.trans[from as usize * self.alphabet.len() + e.as_usize()] = to;
    }

    /// Overrides a state's verdict (used when fail-state inference runs
    /// after construction).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn set_verdict(&mut self, state: u32, verdict: Verdict) {
        self.verdicts[state as usize] = verdict;
    }

    /// Number of states added so far.
    #[must_use]
    pub fn state_count(&self) -> u32 {
        self.verdicts.len() as u32
    }

    /// Finishes the DFA with `initial` as start state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range or no state was added.
    #[must_use]
    pub fn finish(self, initial: u32) -> Dfa {
        Dfa::new(self.alphabet, initial, self.trans, self.verdicts, self.state_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamId;

    /// The UNSAFEITER pattern `update* create next* update+ next` as a DFA,
    /// hand-built (the ERE module derives the same machine automatically).
    ///
    /// States: 0 = before create, 1 = created (iterating), 2 = updated
    /// after create, 3 = match.
    pub(crate) fn unsafe_iter_dfa() -> Dfa {
        let a = Alphabet::from_names(&["create", "update", "next"]);
        let create = a.lookup("create").unwrap();
        let update = a.lookup("update").unwrap();
        let next = a.lookup("next").unwrap();
        let mut b = DfaBuilder::new(a);
        let s0 = b.add_state(Verdict::Unknown);
        let s1 = b.add_state(Verdict::Unknown);
        let s2 = b.add_state(Verdict::Unknown);
        let s3 = b.add_state(Verdict::Match);
        b.set_transition(s0, update, s0);
        b.set_transition(s0, create, s1);
        b.set_transition(s1, next, s1);
        b.set_transition(s1, update, s2);
        b.set_transition(s2, update, s2);
        b.set_transition(s2, next, s3);
        b.finish(s0)
    }

    fn ids(a: &Alphabet, names: &[&str]) -> EventSet {
        names.iter().map(|n| a.lookup(n).unwrap()).collect()
    }

    #[test]
    fn classify_runs_the_machine() {
        let d = unsafe_iter_dfa();
        let a = d.alphabet().clone();
        let ev = |n: &str| a.lookup(n).unwrap();
        assert_eq!(d.classify(&[]), Verdict::Unknown);
        assert_eq!(d.classify(&[ev("update"), ev("create")]), Verdict::Unknown);
        assert_eq!(
            d.classify(&[ev("create"), ev("next"), ev("update"), ev("next")]),
            Verdict::Match
        );
        // next before create falls off the machine: permanent fail.
        assert_eq!(d.classify(&[ev("next")]), Verdict::Fail);
        assert_eq!(d.classify(&[ev("next"), ev("create")]), Verdict::Fail);
    }

    #[test]
    fn coenable_matches_the_papers_unsafeiter_sets() {
        let d = unsafe_iter_dfa();
        let a = d.alphabet().clone();
        let co = d.coenable(GoalSet::MATCH);
        let create = a.lookup("create").unwrap();
        let update = a.lookup("update").unwrap();
        let next = a.lookup("next").unwrap();
        // COENABLE(create) = {{next, update}}
        assert_eq!(co.of(create).sets(), &[ids(&a, &["update", "next"])]);
        // COENABLE(update) = {{next}, {next,update}, {next,create,update}} —
        // except: via this DFA create never occurs after update on a goal
        // path... it does: trace update create next* update+ next has
        // create after the first update.
        assert!(co.of(update).contains(ids(&a, &["next"])));
        assert!(co.of(update).contains(ids(&a, &["update", "next"])));
        assert!(co.of(update).contains(ids(&a, &["create", "update", "next"])));
        assert_eq!(co.of(update).len(), 3);
        // COENABLE(next) = {{next, update}} — and nothing else: after the
        // final (matching) next the continuation is empty, which is dropped.
        assert_eq!(co.of(next).sets(), &[ids(&a, &["update", "next"])]);
    }

    #[test]
    fn enable_sets_for_unsafeiter() {
        let d = unsafe_iter_dfa();
        let a = d.alphabet().clone();
        let en = d.enable(GoalSet::MATCH);
        let e = |n: &str| a.lookup(n).unwrap();
        // create can be first (∅) or preceded by updates only.
        let (family, can_start) = &en[e("create").as_usize()];
        assert!(*can_start);
        assert_eq!(family.sets(), &[ids(&a, &["update"])]);
        // next is never first and always preceded by a create.
        let (family, can_start) = &en[e("next").as_usize()];
        assert!(!*can_start);
        for s in family.sets() {
            assert!(s.contains(e("create")));
        }
        // update can be first.
        assert!(en[e("update").as_usize()].1);
        // Parameter-level: creating a monitor at `next` requires a {c,i}
        // source — bare-iterator events never create monitors, which is
        // what keeps Fig. 10's monitor counts below the event counts.
        let c = ParamId(0);
        let i = ParamId(1);
        let def = EventDef::new(
            &a,
            &["c", "i"],
            vec![ParamSet::singleton(c).with(i), ParamSet::singleton(c), ParamSet::singleton(i)],
        );
        let param_sets: Vec<ParamSet> =
            en[e("next").as_usize()].0.sets().iter().map(|&s| def.params_of_set(s)).collect();
        assert!(param_sets.iter().all(|&p| p == ParamSet::singleton(c).with(i)));
    }

    #[test]
    fn can_reach_goal_identifies_doomed_states() {
        let d = unsafe_iter_dfa();
        let reach = d.can_reach_goal(GoalSet::MATCH);
        assert!(reach.iter().all(|&b| b), "all named states can still match");
        // The machine is partial, and falling off it is the fail verdict:
        // every state can reach fail (e.g. s3 has no transitions at all).
        let fail_goal = d.can_reach_goal(GoalSet::FAIL);
        assert!(fail_goal.iter().all(|&b| b), "partial σ makes fail reachable everywhere");
    }

    #[test]
    fn unreachable_states_do_not_contribute_to_coenable() {
        let a = Alphabet::from_names(&["x", "y"]);
        let x = a.lookup("x").unwrap();
        let y = a.lookup("y").unwrap();
        let mut b = DfaBuilder::new(a.clone());
        let s0 = b.add_state(Verdict::Unknown);
        let s1 = b.add_state(Verdict::Match);
        let orphan = b.add_state(Verdict::Unknown);
        b.set_transition(s0, x, s1);
        b.set_transition(orphan, y, s1);
        let d = b.finish(s0);
        let co = d.coenable(GoalSet::MATCH);
        assert!(co.of(y).is_empty(), "y only fires from an unreachable state");
        assert!(co.of(x).is_empty(), "x reaches the goal with empty continuation");
    }

    #[test]
    fn state_aliveness_is_state_indexed() {
        let d = unsafe_iter_dfa();
        let a = d.alphabet().clone();
        let c = ParamId(0);
        let i = ParamId(1);
        let def = EventDef::new(
            &a,
            &["c", "i"],
            vec![ParamSet::singleton(c).with(i), ParamSet::singleton(c), ParamSet::singleton(i)],
        );
        let sa = d.state_aliveness(GoalSet::MATCH, &def);
        // In state 1 (created), the future needs update (c) and next (i).
        assert!(!sa.is_necessary(1, ParamSet::singleton(i)));
        assert!(!sa.is_necessary(1, ParamSet::singleton(c)));
        // In state 2 (updated), only next (i) is needed.
        assert!(sa.is_necessary(2, ParamSet::singleton(c)));
        assert!(!sa.is_necessary(2, ParamSet::singleton(i)));
        // In state 0, create needs both alive... but c is needed for create
        // itself; the minimized mask is {c, i}.
        assert_eq!(sa.masks(0), &[ParamSet::singleton(c).with(i)]);
        // The dead sink is never necessary.
        assert!(!sa.is_necessary(DEAD, ParamSet::EMPTY));
        // Match state 3: no further goal reachable, never necessary.
        assert!(!sa.is_necessary(3, ParamSet::EMPTY));
    }

    #[test]
    fn display_lists_states_and_transitions() {
        let d = unsafe_iter_dfa();
        let s = d.to_string();
        assert!(s.contains("-> s0"), "{s}");
        assert!(s.contains("create -> s1"), "{s}");
    }

    #[test]
    #[should_panic(expected = "transition table shape")]
    fn new_validates_shape() {
        let a = Alphabet::from_names(&["x"]);
        let _ = Dfa::new(a, 0, vec![], vec![Verdict::Unknown], vec![String::new()]);
    }
}
