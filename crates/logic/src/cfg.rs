//! The `cfg` plugin: context-free patterns (paper Figure 4's SAFELOCK),
//! monitored by an incremental Earley recognizer, with coenable sets
//! computed by the paper's `G`/`C` least-fixpoint equations.
//!
//! Context-free properties are why the coenable technique matters: the
//! Tracematches-style *state-indexed* garbage collection "could not be used
//! for context-free properties because the state space is unbounded" (§3
//! Discussion), while the event-indexed coenable sets below are computed
//! from the grammar alone.
//!
//! # Verdicts
//!
//! After each event: [`Verdict::Match`] if the trace so far is in the
//! grammar's language, [`Verdict::Fail`] if the trace is not a *viable
//! prefix* (no extension is in the language), `?` otherwise. The monitor
//! reduces the grammar first (dropping non-generating and unreachable
//! symbols), which makes "current Earley set empty" exactly the viable-
//! prefix test.

use std::collections::BTreeSet;
use std::fmt;

use crate::coenable::{CoenableSets, SetFamily};
use crate::event::{Alphabet, EventId, EventSet};
use crate::verdict::Verdict;

/// A grammar symbol: terminal (event) or nonterminal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Symbol {
    /// A terminal — one of the property's base events.
    T(EventId),
    /// A nonterminal, by index into [`Grammar::nonterminal_names`].
    Nt(u32),
}

/// One production `lhs → rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    /// The nonterminal being defined.
    pub lhs: u32,
    /// The replacement (empty for `ε`).
    pub rhs: Vec<Symbol>,
}

/// A context-free grammar over the property's events.
///
/// Per the paper, "the first symbol seen is always assumed the start
/// symbol": [`Grammar::new`] takes the start nonterminal explicitly, and
/// the spec front-end passes the first nonterminal of the block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grammar {
    names: Vec<String>,
    start: u32,
    productions: Vec<Production>,
}

/// Errors detected while validating a [`Grammar`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// A production references a nonterminal index out of range.
    UnknownNonterminal(u32),
    /// The start symbol index is out of range.
    BadStart(u32),
    /// The grammar's language is empty (the start symbol generates no
    /// terminal string), so the property could never match.
    EmptyLanguage,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnknownNonterminal(i) => write!(f, "unknown nonterminal index {i}"),
            CfgError::BadStart(i) => write!(f, "start symbol index {i} out of range"),
            CfgError::EmptyLanguage => write!(f, "grammar generates no terminal string"),
        }
    }
}

impl std::error::Error for CfgError {}

impl Grammar {
    /// Builds and validates a grammar.
    ///
    /// # Errors
    ///
    /// See [`CfgError`]. The language-emptiness check runs on construction
    /// so monitors never operate on vacuous properties.
    pub fn new<S: AsRef<str>>(
        nonterminal_names: &[S],
        start: u32,
        productions: Vec<Production>,
    ) -> Result<Self, CfgError> {
        let n = nonterminal_names.len() as u32;
        if start >= n {
            return Err(CfgError::BadStart(start));
        }
        for p in &productions {
            if p.lhs >= n {
                return Err(CfgError::UnknownNonterminal(p.lhs));
            }
            for s in &p.rhs {
                if let Symbol::Nt(i) = s {
                    if *i >= n {
                        return Err(CfgError::UnknownNonterminal(*i));
                    }
                }
            }
        }
        let g = Grammar {
            names: nonterminal_names.iter().map(|s| s.as_ref().to_owned()).collect(),
            start,
            productions,
        };
        if !g.generating()[start as usize] {
            return Err(CfgError::EmptyLanguage);
        }
        Ok(g)
    }

    /// The nonterminal names.
    #[must_use]
    pub fn nonterminal_names(&self) -> &[String] {
        &self.names
    }

    /// The start nonterminal.
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The productions.
    #[must_use]
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Which nonterminals generate at least one terminal string.
    fn generating(&self) -> Vec<bool> {
        let mut gen = vec![false; self.names.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.productions {
                if gen[p.lhs as usize] {
                    continue;
                }
                let all = p.rhs.iter().all(|s| match s {
                    Symbol::T(_) => true,
                    Symbol::Nt(i) => gen[*i as usize],
                });
                if all {
                    gen[p.lhs as usize] = true;
                    changed = true;
                }
            }
        }
        gen
    }

    /// Which nonterminals are reachable from the start symbol.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.names.len()];
        seen[self.start as usize] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.productions {
                if !seen[p.lhs as usize] {
                    continue;
                }
                for s in &p.rhs {
                    if let Symbol::Nt(i) = s {
                        if !seen[*i as usize] {
                            seen[*i as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        seen
    }

    /// The *reduced* grammar: only productions whose left side is reachable
    /// and whose symbols are all generating. Language-preserving, and it
    /// gives the Earley monitor the viable-prefix property.
    #[must_use]
    pub fn reduced(&self) -> Grammar {
        let gen = self.generating();
        let reach = self.reachable();
        let productions = self
            .productions
            .iter()
            .filter(|p| {
                reach[p.lhs as usize]
                    && gen[p.lhs as usize]
                    && p.rhs.iter().all(|s| match s {
                        Symbol::T(_) => true,
                        Symbol::Nt(i) => gen[*i as usize] && reach[*i as usize],
                    })
            })
            .cloned()
            .collect();
        Grammar { names: self.names.clone(), start: self.start, productions }
    }

    /// Which nonterminals derive `ε`.
    #[must_use]
    pub fn nullable(&self) -> Vec<bool> {
        let mut nul = vec![false; self.names.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.productions {
                if nul[p.lhs as usize] {
                    continue;
                }
                let all = p.rhs.iter().all(|s| match s {
                    Symbol::T(_) => false,
                    Symbol::Nt(i) => nul[*i as usize],
                });
                if all {
                    nul[p.lhs as usize] = true;
                    changed = true;
                }
            }
        }
        nul
    }

    /// The paper's `G` fixpoint: for every nonterminal, the family of event
    /// sets of terminal strings it generates (`G(A)`), *including* `∅` for
    /// nullable nonterminals. Families are capped at all subsets of the
    /// events occurring in the grammar, so the fixpoint terminates.
    fn g_sets(&self, alphabet: &Alphabet) -> Vec<BTreeSet<EventSet>> {
        assert!(alphabet.len() <= 16, "exact CFG coenable limited to 16 events");
        let mut g: Vec<BTreeSet<EventSet>> = vec![BTreeSet::new(); self.names.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.productions {
                for set in g_of_rhs(&p.rhs, &g) {
                    if g[p.lhs as usize].insert(set) {
                        changed = true;
                    }
                }
            }
        }
        g
    }

    /// The paper's CFG coenable computation (`C` fixpoint, §3 "CFG
    /// Example"): `COENABLE_{P,{match}}(e) = C(e)` with
    /// `C(x) = { T1 ∪ T2 | A → β1 x β2, T1 ∈ C(A), T2 ∈ G(β2) }` and the
    /// start symbol seeded with the empty continuation.
    ///
    /// # Panics
    ///
    /// Panics if the alphabet has more than 16 events.
    #[must_use]
    pub fn coenable(&self, alphabet: &Alphabet) -> CoenableSets {
        let reduced = self.reduced();
        let g = reduced.g_sets(alphabet);
        // C over all symbols: nonterminal index or terminal (event).
        let n_nt = reduced.names.len();
        let n_ev = alphabet.len();
        let mut c: Vec<BTreeSet<EventSet>> = vec![BTreeSet::new(); n_nt + n_ev];
        // Seed: after a complete start-symbol derivation nothing follows.
        c[reduced.start as usize].insert(EventSet::EMPTY);
        let mut changed = true;
        while changed {
            changed = false;
            for p in &reduced.productions {
                let ca: Vec<EventSet> = c[p.lhs as usize].iter().copied().collect();
                if ca.is_empty() {
                    continue;
                }
                for (i, sym) in p.rhs.iter().enumerate() {
                    // G(β2) for the suffix after this occurrence.
                    let tail = g_of_rhs(&p.rhs[i + 1..], &g);
                    let idx = match sym {
                        Symbol::Nt(j) => *j as usize,
                        Symbol::T(e) => n_nt + e.as_usize(),
                    };
                    for &t1 in &ca {
                        for &t2 in &tail {
                            if c[idx].insert(t1.union(t2)) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        // Restrict to events, dropping ∅ (SetFamily does this).
        let per_event =
            (0..n_ev).map(|e| SetFamily::from_sets(c[n_nt + e].iter().copied())).collect();
        CoenableSets::new(per_event)
    }
}

/// `G(β)` for a sentential form: the family of event sets of terminal
/// strings derivable from `β`, given current per-nonterminal families.
fn g_of_rhs(rhs: &[Symbol], g: &[BTreeSet<EventSet>]) -> Vec<EventSet> {
    let mut acc: Vec<EventSet> = vec![EventSet::EMPTY];
    for sym in rhs {
        let options: Vec<EventSet> = match sym {
            Symbol::T(e) => vec![EventSet::singleton(*e)],
            Symbol::Nt(i) => g[*i as usize].iter().copied().collect(),
        };
        if options.is_empty() {
            return Vec::new();
        }
        let mut next = Vec::with_capacity(acc.len() * options.len());
        for &a in &acc {
            for &o in &options {
                next.push(a.union(o));
            }
        }
        next.sort_unstable();
        next.dedup();
        acc = next;
    }
    acc
}

// ---------------------------------------------------------------------------
// Incremental Earley recognition.
// ---------------------------------------------------------------------------

/// An Earley item `A → α • β` with its origin set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Item {
    production: u32,
    dot: u32,
    origin: u32,
}

/// The per-monitor state of an incremental Earley recognition.
///
/// Clones are deep; the chart grows linearly with the slice length (the
/// price of full context-free generality — the paper's CFG plugin pays the
/// same asymptotics).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EarleyState {
    /// All Earley sets `S₀ … Sₖ` (completion looks back at origin sets).
    sets: Vec<Vec<Item>>,
    verdict: Verdict,
}

impl EarleyState {
    /// Number of events consumed so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.sets.len() - 1
    }

    /// Total chart items across all Earley sets.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Estimated heap bytes held by the chart (for memory accounting).
    #[must_use]
    pub fn chart_bytes(&self) -> usize {
        self.sets.len() * std::mem::size_of::<Vec<Item>>()
            + self.item_count() * std::mem::size_of::<Item>()
    }

    /// Serializes the chart into `out` (little-endian, self-delimiting):
    /// verdict byte, set count, then per set an item count followed by
    /// `(production, dot, origin)` triples. Used by the engine snapshot
    /// layer; the layout is versioned by the snapshot container, not here.
    pub fn encode_chart(&self, out: &mut Vec<u8>) {
        out.push(self.verdict.to_byte());
        out.extend_from_slice(&(u32::try_from(self.sets.len()).unwrap_or(u32::MAX)).to_le_bytes());
        for set in &self.sets {
            out.extend_from_slice(&(u32::try_from(set.len()).unwrap_or(u32::MAX)).to_le_bytes());
            for item in set {
                out.extend_from_slice(&item.production.to_le_bytes());
                out.extend_from_slice(&item.dot.to_le_bytes());
                out.extend_from_slice(&item.origin.to_le_bytes());
            }
        }
    }

    /// Whether every chart item references a production id below `n` —
    /// the validity check a decoder runs against its own grammar.
    #[must_use]
    pub fn production_ids_below(&self, n: u32) -> bool {
        self.sets.iter().all(|set| set.iter().all(|item| item.production < n))
    }

    /// Decodes an [`EarleyState::encode_chart`] buffer. Returns `None` if
    /// the bytes are truncated or malformed — callers treat that as a
    /// corrupt snapshot, never a panic.
    #[must_use]
    pub fn decode_chart(bytes: &[u8]) -> Option<EarleyState> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let u32_at = |pos: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(pos, 4)?.try_into().ok()?))
        };
        let verdict = Verdict::from_byte(*bytes.first()?)?;
        pos += 1;
        let nsets = u32_at(&mut pos)? as usize;
        // A chart always holds at least S₀; each item is 12 bytes, so a
        // length claim beyond the buffer is rejected before allocating.
        if nsets == 0 || nsets > bytes.len() {
            return None;
        }
        let mut sets = Vec::with_capacity(nsets);
        for _ in 0..nsets {
            let nitems = u32_at(&mut pos)? as usize;
            if nitems > bytes.len() / 12 + 1 {
                return None;
            }
            let mut set = Vec::with_capacity(nitems);
            for _ in 0..nitems {
                let production = u32_at(&mut pos)?;
                let dot = u32_at(&mut pos)?;
                let origin = u32_at(&mut pos)?;
                set.push(Item { production, dot, origin });
            }
            sets.push(set);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(EarleyState { sets, verdict })
    }
}

/// A compiled CFG monitor: the reduced grammar plus recognition tables.
#[derive(Clone, Debug)]
pub struct CfgMonitor {
    grammar: Grammar,
    /// Productions indexed by lhs, for prediction.
    by_lhs: Vec<Vec<u32>>,
    nullable: Vec<bool>,
    alphabet: Alphabet,
}

impl CfgMonitor {
    /// Compiles `grammar` (reducing it first) for monitoring over
    /// `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::EmptyLanguage`] if reduction empties the
    /// language.
    pub fn compile(grammar: &Grammar, alphabet: &Alphabet) -> Result<Self, CfgError> {
        let reduced = grammar.reduced();
        if !reduced.generating().get(reduced.start as usize).copied().unwrap_or(false) {
            return Err(CfgError::EmptyLanguage);
        }
        let mut by_lhs = vec![Vec::new(); reduced.names.len()];
        for (i, p) in reduced.productions.iter().enumerate() {
            by_lhs[p.lhs as usize].push(i as u32);
        }
        let nullable = reduced.nullable();
        Ok(CfgMonitor { grammar: reduced, by_lhs, nullable, alphabet: alphabet.clone() })
    }

    /// The reduced grammar in use.
    #[must_use]
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The initial state (before any event). Its verdict is `Match` iff
    /// `ε` is in the language.
    #[must_use]
    pub fn initial_state(&self) -> EarleyState {
        let mut s0: Vec<Item> = Vec::new();
        for &p in &self.by_lhs[self.grammar.start as usize] {
            s0.push(Item { production: p, dot: 0, origin: 0 });
        }
        let mut state = EarleyState { sets: vec![s0], verdict: Verdict::Unknown };
        self.closure(&mut state, 0);
        state.verdict = self.verdict_of(&state);
        state
    }

    /// Prediction/completion closure of set `k`.
    fn closure(&self, state: &mut EarleyState, k: usize) {
        let mut i = 0;
        while i < state.sets[k].len() {
            let item = state.sets[k][i];
            i += 1;
            let prod = &self.grammar.productions[item.production as usize];
            if (item.dot as usize) < prod.rhs.len() {
                if let Symbol::Nt(nt) = prod.rhs[item.dot as usize] {
                    // Predict.
                    for &p in &self.by_lhs[nt as usize] {
                        let new = Item { production: p, dot: 0, origin: k as u32 };
                        if !state.sets[k].contains(&new) {
                            state.sets[k].push(new);
                        }
                    }
                    // Nullable shortcut (Aycock–Horspool): advance over a
                    // nullable nonterminal directly, so same-set empty
                    // completions are never missed.
                    if self.nullable[nt as usize] {
                        let adv = Item { dot: item.dot + 1, ..item };
                        if !state.sets[k].contains(&adv) {
                            state.sets[k].push(adv);
                        }
                    }
                }
            } else {
                // Complete: advance items in the origin set waiting on lhs.
                let lhs = prod.lhs;
                let origin = item.origin as usize;
                let mut to_add = Vec::new();
                for j in 0..state.sets[origin].len() {
                    let wait = state.sets[origin][j];
                    let wp = &self.grammar.productions[wait.production as usize];
                    if (wait.dot as usize) < wp.rhs.len()
                        && wp.rhs[wait.dot as usize] == Symbol::Nt(lhs)
                    {
                        to_add.push(Item { dot: wait.dot + 1, ..wait });
                    }
                }
                for new in to_add {
                    if !state.sets[k].contains(&new) {
                        state.sets[k].push(new);
                    }
                }
            }
        }
    }

    fn verdict_of(&self, state: &EarleyState) -> Verdict {
        let k = state.sets.len() - 1;
        if state.sets[k].is_empty() {
            return Verdict::Fail;
        }
        let complete = state.sets[k].iter().any(|item| {
            let p = &self.grammar.productions[item.production as usize];
            item.origin == 0 && p.lhs == self.grammar.start && item.dot as usize == p.rhs.len()
        });
        if complete {
            Verdict::Match
        } else {
            Verdict::Unknown
        }
    }

    /// Consumes one event, returning the verdict for the extended trace.
    pub fn step(&self, state: &mut EarleyState, e: EventId) -> Verdict {
        let k = state.sets.len() - 1;
        if state.sets[k].is_empty() {
            // Already failed: stay failed without growing the chart.
            state.verdict = Verdict::Fail;
            return Verdict::Fail;
        }
        // Scan.
        let mut next: Vec<Item> = Vec::new();
        for item in &state.sets[k] {
            let p = &self.grammar.productions[item.production as usize];
            if (item.dot as usize) < p.rhs.len() && p.rhs[item.dot as usize] == Symbol::T(e) {
                next.push(Item { dot: item.dot + 1, ..*item });
            }
        }
        state.sets.push(next);
        self.closure(state, k + 1);
        state.verdict = self.verdict_of(state);
        state.verdict
    }

    /// The verdict of `state` without consuming an event.
    #[must_use]
    pub fn verdict(&self, state: &EarleyState) -> Verdict {
        state.verdict
    }

    /// Classifies a whole trace from scratch.
    #[must_use]
    pub fn classify(&self, trace: &[EventId]) -> Verdict {
        let mut st = self.initial_state();
        for &e in trace {
            self.step(&mut st, e);
        }
        self.verdict(&st)
    }
}

/// Builds the paper's Figure 4 SAFELOCK grammar
/// `S → S begin S end | S acquire S release | ε` over the given alphabet.
///
/// # Panics
///
/// Panics if `alphabet` lacks `begin`/`end`/`acquire`/`release`.
#[must_use]
pub fn safe_lock_grammar(alphabet: &Alphabet) -> Grammar {
    let t = |n: &str| {
        Symbol::T(alphabet.lookup(n).unwrap_or_else(|| panic!("alphabet lacks event `{n}`")))
    };
    let s = Symbol::Nt(0);
    Grammar::new(
        &["S"],
        0,
        vec![
            Production { lhs: 0, rhs: vec![s, t("begin"), s, t("end")] },
            Production { lhs: 0, rhs: vec![s, t("acquire"), s, t("release")] },
            Production { lhs: 0, rhs: vec![] },
        ],
    )
    .expect("SAFELOCK grammar is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_alphabet() -> Alphabet {
        Alphabet::from_names(&["acquire", "release", "begin", "end"])
    }

    fn ev(a: &Alphabet, n: &str) -> EventId {
        a.lookup(n).unwrap()
    }

    #[test]
    fn safelock_balanced_traces_match() {
        let a = lock_alphabet();
        let m = CfgMonitor::compile(&safe_lock_grammar(&a), &a).unwrap();
        let e = |n: &str| ev(&a, n);
        assert_eq!(m.classify(&[]), Verdict::Match, "ε is balanced");
        assert_eq!(m.classify(&[e("acquire"), e("release")]), Verdict::Match);
        assert_eq!(m.classify(&[e("begin"), e("acquire"), e("release"), e("end")]), Verdict::Match);
        assert_eq!(
            m.classify(&[e("begin"), e("acquire"), e("end")]),
            Verdict::Fail,
            "improperly nested: acquire closed by end"
        );
        assert_eq!(m.classify(&[e("acquire")]), Verdict::Unknown);
        assert_eq!(m.classify(&[e("release")]), Verdict::Fail);
        // Deep nesting.
        assert_eq!(
            m.classify(&[
                e("begin"),
                e("begin"),
                e("acquire"),
                e("acquire"),
                e("release"),
                e("release"),
                e("end"),
                e("end"),
            ]),
            Verdict::Match
        );
    }

    #[test]
    fn fail_is_sticky_and_cheap() {
        let a = lock_alphabet();
        let m = CfgMonitor::compile(&safe_lock_grammar(&a), &a).unwrap();
        let mut st = m.initial_state();
        m.step(&mut st, ev(&a, "release"));
        assert_eq!(m.verdict(&st), Verdict::Fail);
        let sets_before = st.sets.len();
        m.step(&mut st, ev(&a, "acquire"));
        assert_eq!(m.verdict(&st), Verdict::Fail);
        assert_eq!(st.sets.len(), sets_before, "failed charts stop growing");
    }

    #[test]
    fn match_reports_at_every_balanced_point() {
        let a = lock_alphabet();
        let m = CfgMonitor::compile(&safe_lock_grammar(&a), &a).unwrap();
        let mut st = m.initial_state();
        assert_eq!(m.verdict(&st), Verdict::Match);
        assert_eq!(m.step(&mut st, ev(&a, "acquire")), Verdict::Unknown);
        assert_eq!(m.step(&mut st, ev(&a, "release")), Verdict::Match);
        assert_eq!(m.step(&mut st, ev(&a, "begin")), Verdict::Unknown);
        assert_eq!(m.step(&mut st, ev(&a, "end")), Verdict::Match);
    }

    #[test]
    fn safelock_coenable_sets() {
        let a = lock_alphabet();
        let g = safe_lock_grammar(&a);
        let co = g.coenable(&a);
        let acquire = ev(&a, "acquire");
        let release = ev(&a, "release");
        let end = ev(&a, "end");
        // Every continuation after acquire must contain release.
        for s in co.of(acquire).sets() {
            assert!(s.contains(release), "{s:?}");
        }
        assert!(!co.of(acquire).is_empty());
        // After the final end/release a match closes: ∅ dropped, but other
        // continuations exist (further balanced segments).
        assert!(co.of(end).sets().iter().all(|s| !s.is_empty()));
        // release can be followed by nothing (∅, dropped) or more balanced
        // pieces; every non-empty continuation with acquire has release.
        for s in co.of(release).sets() {
            if s.contains(acquire) {
                assert!(s.contains(release));
            }
        }
    }

    #[test]
    fn reduction_drops_useless_symbols() {
        let a = Alphabet::from_names(&["x"]);
        let g = Grammar::new(
            &["S", "Dead", "Unreach"],
            0,
            vec![
                Production { lhs: 0, rhs: vec![Symbol::T(ev(&a, "x"))] },
                // Dead never terminates.
                Production { lhs: 1, rhs: vec![Symbol::Nt(1)] },
                // Unreach is generating but unreachable.
                Production { lhs: 2, rhs: vec![Symbol::T(ev(&a, "x"))] },
                // S → Dead would make S's alternative useless.
                Production { lhs: 0, rhs: vec![Symbol::Nt(1)] },
            ],
        )
        .unwrap();
        let r = g.reduced();
        assert_eq!(r.productions().len(), 1);
        assert_eq!(r.productions()[0].lhs, 0);
    }

    #[test]
    fn empty_language_is_rejected() {
        let err = Grammar::new(&["S"], 0, vec![Production { lhs: 0, rhs: vec![Symbol::Nt(0)] }])
            .unwrap_err();
        assert_eq!(err, CfgError::EmptyLanguage);
    }

    #[test]
    fn bad_indices_are_rejected() {
        assert_eq!(Grammar::new(&["S"], 3, vec![]).unwrap_err(), CfgError::BadStart(3));
        assert_eq!(
            Grammar::new(&["S"], 0, vec![Production { lhs: 5, rhs: vec![] }]).unwrap_err(),
            CfgError::UnknownNonterminal(5)
        );
    }

    #[test]
    fn nullable_analysis() {
        let a = Alphabet::from_names(&["x"]);
        let g = Grammar::new(
            &["S", "A"],
            0,
            vec![
                Production { lhs: 0, rhs: vec![Symbol::Nt(1), Symbol::Nt(1)] },
                Production { lhs: 1, rhs: vec![] },
                Production { lhs: 1, rhs: vec![Symbol::T(ev(&a, "x"))] },
            ],
        )
        .unwrap();
        assert_eq!(g.nullable(), vec![true, true]);
    }

    #[test]
    fn nullable_completion_is_not_missed() {
        // S → A A x ; A → ε. Classic Aycock–Horspool pitfall: recognizing
        // "x" requires advancing over two nullable As in the same set.
        let a = Alphabet::from_names(&["x"]);
        let g = Grammar::new(
            &["S", "A"],
            0,
            vec![
                Production {
                    lhs: 0,
                    rhs: vec![Symbol::Nt(1), Symbol::Nt(1), Symbol::T(ev(&a, "x"))],
                },
                Production { lhs: 1, rhs: vec![] },
            ],
        )
        .unwrap();
        let m = CfgMonitor::compile(&g, &a).unwrap();
        assert_eq!(m.classify(&[ev(&a, "x")]), Verdict::Match);
    }

    #[test]
    fn viable_prefix_property_after_reduction() {
        // Balanced parens: a^n b^n. Prefixes of the language are exactly
        // a^i b^j with j ≤ i; anything else must fail immediately.
        let al = Alphabet::from_names(&["a", "b"]);
        let g = Grammar::new(
            &["S"],
            0,
            vec![
                Production {
                    lhs: 0,
                    rhs: vec![Symbol::T(ev(&al, "a")), Symbol::Nt(0), Symbol::T(ev(&al, "b"))],
                },
                Production { lhs: 0, rhs: vec![] },
            ],
        )
        .unwrap();
        let m = CfgMonitor::compile(&g, &al).unwrap();
        let a = ev(&al, "a");
        let b = ev(&al, "b");
        assert_eq!(m.classify(&[a, a, b, b]), Verdict::Match);
        assert_eq!(m.classify(&[a, a, b]), Verdict::Unknown);
        assert_eq!(m.classify(&[b]), Verdict::Fail);
        assert_eq!(m.classify(&[a, b, b]), Verdict::Fail);
        assert_eq!(m.classify(&[a, b, a]), Verdict::Fail, "aba is not a viable prefix");
    }

    #[test]
    fn chart_codec_round_trips_mid_recognition() {
        let al = Alphabet::from_names(&["acquire", "release", "begin", "end"]);
        let m = CfgMonitor::compile(&safe_lock_grammar(&al), &al).unwrap();
        let mut s = m.initial_state();
        for name in ["acquire", "acquire", "release"] {
            let _ = m.step(&mut s, al.lookup(name).unwrap());
        }
        let mut bytes = Vec::new();
        s.encode_chart(&mut bytes);
        let back = EarleyState::decode_chart(&bytes).expect("decodes");
        assert_eq!(back, s);
        // Decoding must keep stepping identically to the original.
        let mut a = s.clone();
        let mut b = back;
        let e = al.lookup("release").unwrap();
        assert_eq!(m.step(&mut a, e), m.step(&mut b, e));
        assert_eq!(a, b);
    }

    #[test]
    fn chart_codec_rejects_corrupt_bytes() {
        let al = Alphabet::from_names(&["acquire", "release", "begin", "end"]);
        let m = CfgMonitor::compile(&safe_lock_grammar(&al), &al).unwrap();
        let mut bytes = Vec::new();
        m.initial_state().encode_chart(&mut bytes);
        assert!(EarleyState::decode_chart(&[]).is_none(), "empty");
        assert!(EarleyState::decode_chart(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        let mut bad_verdict = bytes.clone();
        bad_verdict[0] = 0xff;
        assert!(EarleyState::decode_chart(&bad_verdict).is_none(), "bad verdict byte");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(EarleyState::decode_chart(&trailing).is_none(), "trailing garbage");
        // A huge claimed set count must be rejected without allocating.
        let mut huge = bytes;
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(EarleyState::decode_chart(&huge).is_none(), "oversized length claim");
    }
}
