//! Property parameters and the event definition `D`.
//!
//! Definition 4: a *parametric event definition* `D : E → P(X)` maps each
//! base event to the set of parameters it instantiates at runtime (e.g.
//! `D(create) = {c, i}`, `D(update) = {c}`, `D(next) = {i}` for
//! `UnsafeIter`).

use std::fmt;

use crate::event::{Alphabet, EventId};

/// A dense identifier for a property parameter (the `x ∈ X` of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u8);

impl ParamId {
    /// The raw index.
    #[must_use]
    pub fn as_usize(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Debug for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A set of parameters, as a 32-bit bitset. Real properties bind at most a
/// few parameters (the paper's largest has two plus a thread).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ParamSet(pub u32);

impl ParamSet {
    /// The empty parameter set.
    pub const EMPTY: ParamSet = ParamSet(0);

    /// The singleton `{p}`.
    #[must_use]
    pub fn singleton(p: ParamId) -> ParamSet {
        ParamSet(1u32 << p.0)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `p` is a member.
    #[must_use]
    pub fn contains(self, p: ParamId) -> bool {
        self.0 & (1u32 << p.0) != 0
    }

    /// Inserts `p`.
    #[must_use]
    pub fn with(self, p: ParamId) -> ParamSet {
        ParamSet(self.0 | (1u32 << p.0))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ParamSet) -> ParamSet {
        ParamSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ParamSet) -> ParamSet {
        ParamSet(self.0 & other.0)
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: ParamSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over members in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = ParamId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(ParamId(i))
            }
        })
    }
}

impl FromIterator<ParamId> for ParamSet {
    fn from_iter<I: IntoIterator<Item = ParamId>>(iter: I) -> Self {
        iter.into_iter().fold(ParamSet::EMPTY, ParamSet::with)
    }
}

impl fmt::Debug for ParamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The event definition `D : E → P(X)` together with parameter names.
///
/// Invariant: every event of the alphabet has an entry; parameter ids are
/// dense in `0..param_names.len()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventDef {
    param_names: Vec<String>,
    /// Indexed by `EventId`.
    params_of: Vec<ParamSet>,
}

impl EventDef {
    /// Builds an event definition.
    ///
    /// `params_of[e]` is `D(e)`, indexed by event id of `alphabet`.
    ///
    /// # Panics
    ///
    /// Panics if `params_of.len() != alphabet.len()`, if more than 32
    /// parameters are named, or if some `D(e)` mentions an out-of-range
    /// parameter.
    #[must_use]
    pub fn new<S: AsRef<str>>(
        alphabet: &Alphabet,
        param_names: &[S],
        params_of: Vec<ParamSet>,
    ) -> Self {
        assert!(param_names.len() <= 32, "at most 32 parameters supported");
        assert_eq!(params_of.len(), alphabet.len(), "every event needs a D(e) entry");
        let universe = ParamSet((1u64.wrapping_shl(param_names.len() as u32) - 1) as u32);
        for (i, &ps) in params_of.iter().enumerate() {
            assert!(
                ps.is_subset(universe),
                "D({}) mentions an undeclared parameter",
                EventId(i as u16)
            );
        }
        EventDef {
            param_names: param_names.iter().map(|s| s.as_ref().to_owned()).collect(),
            params_of,
        }
    }

    /// `D(e)`: the parameters instantiated by `e`.
    #[must_use]
    pub fn params_of(&self, e: EventId) -> ParamSet {
        self.params_of[e.as_usize()]
    }

    /// Number of parameters `|X|`.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.param_names.len()
    }

    /// The name of parameter `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn param_name(&self, p: ParamId) -> &str {
        &self.param_names[p.as_usize()]
    }

    /// Looks up a parameter by name.
    #[must_use]
    pub fn lookup_param(&self, name: &str) -> Option<ParamId> {
        self.param_names.iter().position(|n| n == name).map(|i| ParamId(i as u8))
    }

    /// The full parameter set `X`.
    #[must_use]
    pub fn universe(&self) -> ParamSet {
        ParamSet((1u64.wrapping_shl(self.param_names.len() as u32) - 1) as u32)
    }

    /// `D` extended to event sets (Definition 4): the union of `D(e)` over
    /// `e ∈ events`.
    #[must_use]
    pub fn params_of_set(&self, events: crate::event::EventSet) -> ParamSet {
        events.iter().fold(ParamSet::EMPTY, |acc, e| acc.union(self.params_of(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventSet;

    fn unsafe_iter_def() -> (Alphabet, EventDef) {
        let a = Alphabet::from_names(&["create", "update", "next"]);
        let c = ParamId(0);
        let i = ParamId(1);
        let def = EventDef::new(
            &a,
            &["c", "i"],
            vec![
                ParamSet::singleton(c).with(i), // create
                ParamSet::singleton(c),         // update
                ParamSet::singleton(i),         // next
            ],
        );
        (a, def)
    }

    #[test]
    fn d_maps_events_to_params() {
        let (a, def) = unsafe_iter_def();
        let create = a.lookup("create").unwrap();
        let update = a.lookup("update").unwrap();
        assert_eq!(def.params_of(create).len(), 2);
        assert_eq!(def.params_of(update), ParamSet::singleton(ParamId(0)));
        assert_eq!(def.param_count(), 2);
        assert_eq!(def.param_name(ParamId(1)), "i");
        assert_eq!(def.lookup_param("i"), Some(ParamId(1)));
        assert_eq!(def.lookup_param("z"), None);
    }

    #[test]
    fn d_extends_to_event_sets() {
        let (a, def) = unsafe_iter_def();
        let update = a.lookup("update").unwrap();
        let next = a.lookup("next").unwrap();
        let s: EventSet = [update, next].into_iter().collect();
        assert_eq!(def.params_of_set(s), def.universe());
        assert_eq!(def.params_of_set(EventSet::EMPTY), ParamSet::EMPTY);
    }

    #[test]
    fn param_set_operations() {
        let p = ParamId(0);
        let q = ParamId(5);
        let s = ParamSet::singleton(p).with(q);
        assert_eq!(s.len(), 2);
        assert!(s.contains(q));
        assert!(ParamSet::singleton(p).is_subset(s));
        assert_eq!(s.intersection(ParamSet::singleton(q)), ParamSet::singleton(q));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![p, q]);
        let collected: ParamSet = [p, q].into_iter().collect();
        assert_eq!(collected, s);
    }

    #[test]
    #[should_panic(expected = "every event needs a D(e) entry")]
    fn event_def_validates_arity() {
        let a = Alphabet::from_names(&["a", "b"]);
        let _ = EventDef::new(&a, &["p"], vec![ParamSet::EMPTY]);
    }

    #[test]
    #[should_panic(expected = "undeclared parameter")]
    fn event_def_validates_param_range() {
        let a = Alphabet::from_names(&["a"]);
        let _ = EventDef::new(&a, &["p"], vec![ParamSet::singleton(ParamId(3))]);
    }
}
