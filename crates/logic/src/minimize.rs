//! DFA minimization (Hopcroft's algorithm), verdict-aware.
//!
//! The ERE and LTL determinizers can produce distinguishable-by-nothing
//! states (different derivatives/residuals with the same behavior).
//! Minimizing before the engine runs shrinks the transition tables and —
//! more interestingly for this reproduction — can only *improve* the
//! precision of the state-indexed analysis used by the Tracematches
//! baseline, while the event-indexed coenable sets are invariant under
//! minimization (a property checked by the crate tests).
//!
//! States are partitioned by verdict (the monitor's observable output),
//! then refined by transition behavior over the *total* automaton (the
//! implicit dead sink participates as its own class).

use crate::dfa::{Dfa, DfaBuilder, DEAD};
use crate::verdict::Verdict;

/// Returns an equivalent DFA with the minimum number of states, preserving
/// verdicts on every trace. Unreachable states are dropped first.
///
/// State names are discarded (classes merge differently-named states);
/// callers needing names should minimize before naming or keep the
/// original machine.
#[must_use]
pub fn minimize(dfa: &Dfa) -> Dfa {
    let alphabet = dfa.alphabet().clone();
    let n_events = alphabet.len();
    // 1. Restrict to reachable states.
    let reachable = dfa.reachable();
    let states: Vec<u32> = (0..dfa.state_count()).filter(|&s| reachable[s as usize]).collect();
    // Map original → dense index; DEAD and unreachable map to the sink.
    let sink = states.len(); // class index for the implicit dead sink
    let mut dense = vec![sink; dfa.state_count() as usize];
    for (i, &s) in states.iter().enumerate() {
        dense[s as usize] = i;
    }
    let total = states.len() + 1;
    let step = |i: usize, e: crate::event::EventId| -> usize {
        if i == sink {
            sink
        } else {
            let t = dfa.step(states[i], e);
            if t == DEAD {
                sink
            } else {
                dense[t as usize]
            }
        }
    };
    let verdict_of = |i: usize| -> Verdict {
        if i == sink {
            Verdict::Fail
        } else {
            dfa.verdict(states[i])
        }
    };

    // 2. Initial partition by verdict.
    let mut class_of: Vec<usize> = (0..total)
        .map(|i| match verdict_of(i) {
            Verdict::Match => 0,
            Verdict::Fail => 1,
            Verdict::Unknown => 2,
        })
        .collect();
    // 3. Refine: split classes whose members have different successor
    //    class signatures (Moore-style refinement; Hopcroft's worklist
    //    optimization is unnecessary at property-automaton sizes).
    loop {
        let mut signature: Vec<(usize, Vec<usize>)> = Vec::with_capacity(total);
        for i in 0..total {
            let mut sig = Vec::with_capacity(n_events);
            for e in alphabet.iter() {
                sig.push(class_of[step(i, e)]);
            }
            signature.push((class_of[i], sig));
        }
        // Renumber classes by signature.
        let mut table: std::collections::HashMap<&(usize, Vec<usize>), usize> =
            std::collections::HashMap::new();
        let mut next_class = 0;
        let mut new_class: Vec<usize> = Vec::with_capacity(total);
        for sig in &signature {
            let c = *table.entry(sig).or_insert_with(|| {
                let c = next_class;
                next_class += 1;
                c
            });
            new_class.push(c);
        }
        if new_class == class_of {
            break;
        }
        class_of = new_class;
    }

    // 4. Build the quotient, dropping the sink's class (its transitions
    //    become DEAD again). Note: a live state may share the sink's class
    //    (a reachable state behaviorally identical to permanent fail);
    //    such states also map to DEAD.
    let sink_class = class_of[sink];
    let mut repr: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    let mut b = DfaBuilder::new(alphabet.clone());
    // Allocate quotient states in order of first appearance (initial first).
    let order: Vec<usize> = {
        let mut seen = std::collections::HashSet::new();
        let mut v = Vec::new();
        // Initial state's class first so the new initial id is 0.
        let init_dense = dense[dfa.initial() as usize];
        for i in std::iter::once(init_dense).chain(0..total) {
            let c = class_of[i];
            if c != sink_class && seen.insert(c) {
                v.push(i);
            }
        }
        v
    };
    for &i in &order {
        let id = b.add_state(verdict_of(i));
        repr.insert(class_of[i], id);
    }
    for &i in &order {
        let from = repr[&class_of[i]];
        for e in alphabet.iter() {
            let t = step(i, e);
            let tc = class_of[t];
            if tc != sink_class {
                b.set_transition(from, e, repr[&tc]);
            }
        }
    }
    let init_class = class_of[dense[dfa.initial() as usize]];
    if init_class == sink_class {
        // Degenerate: the whole language is empty; a single fail state.
        let mut b = DfaBuilder::new(alphabet);
        let s = b.add_state(Verdict::Fail);
        return b.finish(s);
    }
    b.finish(repr[&init_class])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ere::unsafe_iter_ere;
    use crate::event::{Alphabet, EventId};
    use crate::verdict::GoalSet;

    #[test]
    fn minimization_preserves_classification_exhaustively() {
        let al = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&al).compile(&al, 1_000).unwrap();
        let min = minimize(&dfa);
        assert!(min.state_count() <= dfa.state_count());
        // All traces up to length 6.
        let mut traces: Vec<Vec<EventId>> = vec![vec![]];
        for _ in 0..6 {
            let mut next = Vec::new();
            for t in &traces {
                assert_eq!(dfa.classify(t), min.classify(t), "trace {t:?}");
                for e in al.iter() {
                    let mut t2 = t.clone();
                    t2.push(e);
                    next.push(t2);
                }
            }
            traces = next;
        }
    }

    #[test]
    fn minimization_is_idempotent() {
        let al = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&al).compile(&al, 1_000).unwrap();
        let once = minimize(&dfa);
        let twice = minimize(&once);
        assert_eq!(once.state_count(), twice.state_count());
    }

    #[test]
    fn coenable_sets_are_invariant_under_minimization() {
        let al = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&al).compile(&al, 1_000).unwrap();
        let min = minimize(&dfa);
        assert_eq!(dfa.coenable(GoalSet::MATCH), min.coenable(GoalSet::MATCH));
    }

    #[test]
    fn merges_equivalent_states() {
        // a | b over {a, b}: the two accepting states are equivalent, and
        // a minimal machine has exactly 2 states (start, accept).
        let al = Alphabet::from_names(&["a", "b"]);
        let r = crate::ere::Ere::union([
            crate::ere::Ere::event(EventId(0)),
            crate::ere::Ere::event(EventId(1)),
        ]);
        let dfa = r.compile(&al, 1_000).unwrap();
        let min = minimize(&dfa);
        assert_eq!(min.state_count(), 2, "{min}");
    }

    #[test]
    fn empty_language_minimizes_to_one_fail_state() {
        let al = Alphabet::from_names(&["a"]);
        let dfa = crate::ere::Ere::empty().compile(&al, 1_000).unwrap();
        let min = minimize(&dfa);
        assert_eq!(min.state_count(), 1);
        assert_eq!(min.classify(&[]), Verdict::Fail);
        assert_eq!(min.classify(&[EventId(0)]), Verdict::Fail);
    }
}
