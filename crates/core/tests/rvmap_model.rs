//! Model-based testing of the weak-keyed `RvMap`: against a plain
//! `HashMap` + explicit liveness model, under random interleavings of
//! inserts, lookups, removals, object deaths, collections, and
//! maintenance scans.
//!
//! Invariants:
//! * live-keyed entries are never lost and always retrievable;
//! * dead-keyed entries are (a) never visible once the maintainer has
//!   reported them, (b) reported *exactly once*, and (c) all reported by a
//!   full sweep;
//! * maintenance never touches entries the model says are live (unless the
//!   maintainer's live hook asked for removal — not used here).

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use std::collections::HashMap;

use proptest::prelude::*;
use rv_core::trees::{DeadOnly, RvMap};
use rv_core::Binding;
use rv_heap::{Heap, HeapConfig, ObjId};
use rv_logic::ParamId;

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert { slot: usize, value: u32 },
    Get { slot: usize },
    Remove { slot: usize },
    Kill { slot: usize },
    Collect,
    Scan { n: usize },
    SweepAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<usize>(), any::<u32>()).prop_map(|(slot, value)| Op::Insert { slot, value }),
        3 => any::<usize>().prop_map(|slot| Op::Get { slot }),
        1 => any::<usize>().prop_map(|slot| Op::Remove { slot }),
        2 => any::<usize>().prop_map(|slot| Op::Kill { slot }),
        2 => Just(Op::Collect),
        2 => (1usize..8).prop_map(|n| Op::Scan { n }),
        1 => Just(Op::SweepAll),
    ]
}

const POOL: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rvmap_agrees_with_the_model(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        // Allocate in a frame that exits immediately: liveness is governed
        // solely by the pins, so Kill + Collect really reclaims.
        let frame = heap.enter_frame();
        let pool: Vec<ObjId> = (0..POOL)
            .map(|_| {
                let o = heap.alloc(cls);
                heap.pin(o);
                o
            })
            .collect();
        heap.exit_frame(frame);
        let key = |slot: usize| Binding::from_pairs(&[(ParamId(0), pool[slot % POOL])]);

        let mut map: RvMap<u32> = RvMap::new();
        // Model: slot → value for entries the map should still hold, plus
        // liveness and a kill/collect phase tracker.
        let mut model: HashMap<usize, u32> = HashMap::new();
        let mut alive = [true; POOL];
        let mut collected = [false; POOL]; // actually swept (post-Collect)
        let mut reported: Vec<usize> = Vec::new();

        for op in ops {
            match op {
                Op::Insert { slot, value } => {
                    let s = slot % POOL;
                    // Only live objects can key new entries (the engine
                    // inserts at event time, when objects are live).
                    if alive[s] && !collected[s] {
                        // Dead discoveries during the insert's window scan
                        // are legitimate; record and validate them below.
                        let mut found: Vec<Binding> = Vec::new();
                        let mut rec = DeadOnly(|b: Binding, _v: u32| found.push(b));
                        map.insert(&heap, key(s), value, &mut rec);
                        model.insert(s, value);
                        for b in found {
                            let dead_slot = pool
                                .iter()
                                .position(|&o| Some(o) == b.get(ParamId(0)))
                                .expect("key from pool");
                            prop_assert!(collected[dead_slot]);
                            prop_assert!(model.remove(&dead_slot).is_some());
                            reported.push(dead_slot);
                        }
                    }
                }
                Op::Get { slot } => {
                    let s = slot % POOL;
                    let mut found: Vec<Binding> = Vec::new();
                    let mut rec = DeadOnly(|b: Binding, _v: u32| found.push(b));
                    let got = map.get_mut(&heap, key(s), &mut rec).copied();
                    for b in &found {
                        let dead_slot = pool
                            .iter()
                            .position(|&o| Some(o) == b.get(ParamId(0)))
                            .expect("key from pool");
                        prop_assert!(collected[dead_slot]);
                        prop_assert!(model.remove(&dead_slot).is_some());
                        reported.push(dead_slot);
                    }
                    // The lookup itself: if the model holds the slot and it
                    // was not just reported, values must agree.
                    if !collected[s] {
                        prop_assert_eq!(got, model.get(&s).copied());
                    }
                }
                Op::Remove { slot } => {
                    let s = slot % POOL;
                    let removed = map.remove(&key(s));
                    prop_assert_eq!(removed, model.remove(&s));
                }
                Op::Kill { slot } => {
                    let s = slot % POOL;
                    if alive[s] {
                        alive[s] = false;
                        heap.unpin(pool[s]);
                    }
                }
                Op::Collect => {
                    heap.collect();
                    for s in 0..POOL {
                        if !alive[s] {
                            collected[s] = true;
                        }
                    }
                }
                Op::Scan { n } => {
                    let mut found: Vec<Binding> = Vec::new();
                    let mut rec = DeadOnly(|b: Binding, _v: u32| found.push(b));
                    map.expunge(&heap, n, &mut rec);
                    for b in found {
                        let dead_slot = pool
                            .iter()
                            .position(|&o| Some(o) == b.get(ParamId(0)))
                            .expect("key from pool");
                        prop_assert!(collected[dead_slot], "reported a live key");
                        prop_assert!(
                            model.remove(&dead_slot).is_some(),
                            "reported an entry the model does not hold"
                        );
                        reported.push(dead_slot);
                    }
                }
                Op::SweepAll => {
                    let mut found: Vec<Binding> = Vec::new();
                    let mut rec = DeadOnly(|b: Binding, _v: u32| found.push(b));
                    map.expunge_all(&heap, &mut rec);
                    for b in found {
                        let dead_slot = pool
                            .iter()
                            .position(|&o| Some(o) == b.get(ParamId(0)))
                            .expect("key from pool");
                        prop_assert!(collected[dead_slot]);
                        prop_assert!(model.remove(&dead_slot).is_some());
                        reported.push(dead_slot);
                    }
                    // After a full sweep, no dead-keyed entries remain.
                    for (s, _) in model.iter() {
                        prop_assert!(!collected[*s], "dead entry survived a full sweep");
                    }
                }
            }
            // Global invariant: map size equals the model's entries minus
            // any dead-keyed ones not yet swept… the model removes entries
            // on report, so map.len() == model.len().
            prop_assert_eq!(map.len(), model.len());
        }
    }
}
