//! Algebraic laws of the parameter-instance lattice (Definition 5): `⊔`
//! is a partial commutative, associative, idempotent join; `⊑` is the
//! induced partial order; restriction is monotone and interacts with `⊔`
//! as expected.

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_core::Binding;
use rv_heap::{Heap, HeapConfig, ObjId};
use rv_logic::{ParamId, ParamSet};

const PARAMS: u8 = 4;
const OBJS: usize = 3;

/// A binding described by an assignment array: `assign[p]` = object index
/// + 1, or 0 for unbound.
fn binding_strategy() -> impl Strategy<Value = [u8; PARAMS as usize]> {
    proptest::array::uniform4(0u8..=OBJS as u8)
}

fn materialize(assign: &[u8; PARAMS as usize], pool: &[ObjId]) -> Binding {
    let pairs: Vec<(ParamId, ObjId)> = assign
        .iter()
        .enumerate()
        .filter_map(|(p, &v)| (v > 0).then(|| (ParamId(p as u8), pool[(v - 1) as usize])))
        .collect();
    Binding::from_pairs(&pairs)
}

fn pool() -> (Heap, Vec<ObjId>) {
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let frame = heap.enter_frame();
    let pool = (0..OBJS).map(|_| heap.alloc(cls)).collect();
    let _keep_rooted = frame;
    (heap, pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lub_is_commutative(a in binding_strategy(), b in binding_strategy()) {
        let (_heap, objs) = pool();
        let (a, b) = (materialize(&a, &objs), materialize(&b, &objs));
        prop_assert_eq!(a.lub(b), b.lub(a));
    }

    #[test]
    fn lub_is_idempotent_and_reflexive(a in binding_strategy()) {
        let (_heap, objs) = pool();
        let a = materialize(&a, &objs);
        prop_assert_eq!(a.lub(a), Some(a));
        prop_assert!(a.less_informative(a));
        prop_assert!(a.compatible(a));
        prop_assert!(Binding::BOTTOM.less_informative(a));
        prop_assert_eq!(a.lub(Binding::BOTTOM), Some(a));
    }

    #[test]
    fn lub_is_associative_when_defined(
        a in binding_strategy(),
        b in binding_strategy(),
        c in binding_strategy()
    ) {
        let (_heap, objs) = pool();
        let (a, b, c) =
            (materialize(&a, &objs), materialize(&b, &objs), materialize(&c, &objs));
        let left = a.lub(b).and_then(|ab| ab.lub(c));
        let right = b.lub(c).and_then(|bc| a.lub(bc));
        // When both sides are defined they agree; one side may be defined
        // while the other is not only if some pair is incompatible — in a
        // *pairwise compatible* triple both are defined and equal.
        if a.compatible(b) && b.compatible(c) && a.compatible(c) {
            prop_assert!(left.is_some() && right.is_some());
            prop_assert_eq!(left, right);
        }
    }

    #[test]
    fn lub_is_the_least_upper_bound(a in binding_strategy(), b in binding_strategy()) {
        let (_heap, objs) = pool();
        let (a, b) = (materialize(&a, &objs), materialize(&b, &objs));
        if let Some(j) = a.lub(b) {
            prop_assert!(a.less_informative(j));
            prop_assert!(b.less_informative(j));
            prop_assert_eq!(j.domain(), a.domain().union(b.domain()));
        } else {
            prop_assert!(!a.compatible(b));
        }
    }

    #[test]
    fn less_informative_is_a_partial_order(
        a in binding_strategy(),
        b in binding_strategy(),
        c in binding_strategy()
    ) {
        let (_heap, objs) = pool();
        let (a, b, c) =
            (materialize(&a, &objs), materialize(&b, &objs), materialize(&c, &objs));
        // Antisymmetry.
        if a.less_informative(b) && b.less_informative(a) {
            prop_assert_eq!(a, b);
        }
        // Transitivity.
        if a.less_informative(b) && b.less_informative(c) {
            prop_assert!(a.less_informative(c));
        }
    }

    #[test]
    fn restriction_is_monotone_and_projective(
        a in binding_strategy(),
        mask in 0u32..16
    ) {
        let (_heap, objs) = pool();
        let a = materialize(&a, &objs);
        let p = ParamSet(mask);
        let r = a.restrict(p);
        prop_assert!(r.less_informative(a));
        prop_assert!(r.domain().is_subset(p));
        // Restriction is idempotent.
        prop_assert_eq!(r.restrict(p), r);
        // Restricting to the full domain is the identity.
        prop_assert_eq!(a.restrict(a.domain()), a);
    }

    #[test]
    fn compatibility_is_witnessed_by_a_common_upper_bound(
        a in binding_strategy(),
        b in binding_strategy()
    ) {
        let (_heap, objs) = pool();
        let (a, b) = (materialize(&a, &objs), materialize(&b, &objs));
        prop_assert_eq!(a.compatible(b), a.lub(b).is_some());
    }

    #[test]
    fn dead_params_is_monotone_in_the_binding(
        a in binding_strategy(),
        b in binding_strategy(),
        kill in 0usize..OBJS
    ) {
        // If a ⊑ b then dead(a) ⊆ dead(b), whatever died.
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let frame = heap.enter_frame();
        let objs: Vec<ObjId> = (0..OBJS)
            .map(|_| {
                let o = heap.alloc(cls);
                heap.pin(o);
                o
            })
            .collect();
        heap.exit_frame(frame);
        let (a, b) = (materialize(&a, &objs), materialize(&b, &objs));
        heap.unpin(objs[kill]);
        heap.collect();
        if a.less_informative(b) {
            prop_assert!(a.dead_params(&heap).is_subset(b.dead_params(&heap)));
        }
    }
}
