//! The slab of monitor instances.
//!
//! Monitor instances are shared between several indexing structures (the
//! exact-instance table plus one tree per event parameter subset), so each
//! carries a reference count of its containers. An instance is *collected*
//! — in the paper's sense of finally being reclaimed by the JVM — when the
//! last container releases it (or drops it wholesale with its own death).

use rv_logic::EventId;

use crate::binding::Binding;

/// A handle into a [`MonitorStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MonitorId(u32);

impl MonitorId {
    /// The raw slot index.
    #[must_use]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Fabricates an id from a raw slot index — for snapshot restoration
    /// and observer tests that need ids without a store.
    #[must_use]
    pub(crate) fn from_raw(index: u32) -> MonitorId {
        MonitorId(index)
    }
}

/// One monitor instance: the base-monitor state for one parameter
/// instance, plus the bookkeeping the GC scheme needs (§4.2.2: the last
/// event received, flags).
#[derive(Debug)]
pub struct Instance<S> {
    /// The parameter instance `θ` this monitor tracks.
    pub binding: Binding,
    /// The base monitor state.
    pub state: S,
    /// The most recent event dispatched to this instance — the `e` whose
    /// `ALIVENESS(e)` is checked on notification.
    pub last_event: EventId,
    /// Flagged unnecessary by a GC policy (the FM of Fig. 10).
    pub flagged: bool,
    /// Reached a terminal state (verdict can never become a goal again).
    pub terminated: bool,
    /// Quarantined after its handler panicked: the instance receives no
    /// further events and is dropped by the next compaction pass, while the
    /// rest of the engine keeps processing.
    pub quarantined: bool,
    /// Number of containers (maps/sets/trees) holding this instance.
    refs: u32,
}

impl<S> Instance<S> {
    /// Number of containers currently holding this instance.
    #[must_use]
    pub fn refs(&self) -> u32 {
        self.refs
    }

    /// Rebuilds an instance from snapshot fields (restore path).
    #[allow(clippy::fn_params_excessive_bools)]
    pub(crate) fn from_parts(
        binding: Binding,
        state: S,
        last_event: EventId,
        flagged: bool,
        terminated: bool,
        quarantined: bool,
        refs: u32,
    ) -> Instance<S> {
        Instance { binding, state, last_event, flagged, terminated, quarantined, refs }
    }
}

/// Statistics mirroring Figure 10's per-property columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Monitors created (M).
    pub created: u64,
    /// Monitors flagged unnecessary by the GC policy (FM).
    pub flagged: u64,
    /// Monitors fully reclaimed (CM).
    pub collected: u64,
    /// Monitors quarantined after a handler panic.
    pub quarantined: u64,
    /// Peak simultaneously-live monitors.
    pub peak_live: usize,
}

/// A slab allocator for monitor instances with container reference counts.
#[derive(Debug)]
pub struct MonitorStore<S> {
    slots: Vec<Option<Instance<S>>>,
    free: Vec<u32>,
    live: usize,
    stats: StoreStats,
    state_bytes: usize,
    /// When set, ids whose last reference was just released are appended
    /// to `collected_log` so the engine can notify its observer. Off by
    /// default: the no-op observer pays nothing.
    log_collected: bool,
    collected_log: Vec<MonitorId>,
}

impl<S> Default for MonitorStore<S> {
    fn default() -> Self {
        MonitorStore::new()
    }
}

impl<S> MonitorStore<S> {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        MonitorStore {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            stats: StoreStats::default(),
            state_bytes: 0,
            log_collected: false,
            collected_log: Vec::new(),
        }
    }

    /// Enables (or disables) collected-id logging for observer delivery.
    pub fn set_collected_log(&mut self, enabled: bool) {
        self.log_collected = enabled;
    }

    /// Drains the ids collected since the last drain. Empty unless
    /// [`set_collected_log`](MonitorStore::set_collected_log) was enabled.
    pub fn drain_collected(&mut self) -> Vec<MonitorId> {
        std::mem::take(&mut self.collected_log)
    }

    /// Creates an instance with zero references; callers [`retain`] it once
    /// per container they add it to.
    ///
    /// [`retain`]: MonitorStore::retain
    pub fn create(&mut self, binding: Binding, state: S, last_event: EventId) -> MonitorId {
        self.stats.created += 1;
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        let instance = Instance {
            binding,
            state,
            last_event,
            flagged: false,
            terminated: false,
            quarantined: false,
            refs: 0,
        };
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none());
                self.slots[i as usize] = Some(instance);
                MonitorId(i)
            }
            None => {
                self.slots.push(Some(instance));
                MonitorId((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Accesses a live instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already collected. Fallible callers should use
    /// [`try_get`](MonitorStore::try_get) instead; this entry point is for
    /// sites where liveness is a checked invariant (the caller holds a
    /// container reference).
    #[must_use]
    pub fn get(&self, id: MonitorId) -> &Instance<S> {
        self.slots[id.as_usize()].as_ref().expect("monitor already collected")
    }

    /// Mutably accesses a live instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already collected. Fallible callers should use
    /// [`try_get_mut`](MonitorStore::try_get_mut) instead.
    #[must_use]
    pub fn get_mut(&mut self, id: MonitorId) -> &mut Instance<S> {
        self.slots[id.as_usize()].as_mut().expect("monitor already collected")
    }

    /// Accesses an instance if it is still live.
    #[must_use]
    pub fn try_get(&self, id: MonitorId) -> Option<&Instance<S>> {
        self.slots.get(id.as_usize()).and_then(Option::as_ref)
    }

    /// Mutably accesses an instance if it is still live.
    #[must_use]
    pub fn try_get_mut(&mut self, id: MonitorId) -> Option<&mut Instance<S>> {
        self.slots.get_mut(id.as_usize()).and_then(Option::as_mut)
    }

    /// Whether `id` still points at a live instance.
    #[must_use]
    pub fn contains(&self, id: MonitorId) -> bool {
        self.slots.get(id.as_usize()).is_some_and(Option::is_some)
    }

    /// Adds one container reference.
    pub fn retain(&mut self, id: MonitorId) {
        self.get_mut(id).refs += 1;
    }

    /// Releases one container reference, reclaiming the instance when the
    /// count reaches zero (counted as *collected*, Fig. 10's CM).
    pub fn release(&mut self, id: MonitorId) {
        let instance = self.get_mut(id);
        debug_assert!(instance.refs > 0, "release without retain");
        instance.refs -= 1;
        if instance.refs == 0 {
            self.slots[id.as_usize()] = None;
            self.free.push(id.as_usize() as u32);
            self.live -= 1;
            self.stats.collected += 1;
            if self.log_collected {
                self.collected_log.push(id);
            }
        }
    }

    /// Marks an instance unnecessary (FM). Idempotent; returns `true` the
    /// first time, so callers can notify observers exactly once.
    pub fn flag(&mut self, id: MonitorId) -> bool {
        let instance = self.get_mut(id);
        if !instance.flagged {
            instance.flagged = true;
            self.stats.flagged += 1;
            true
        } else {
            false
        }
    }

    /// Marks an instance terminated (absorbing verdict reached and
    /// handled). Idempotent; not counted as FM — termination is a verdict-
    /// driven retirement, not a GC flag.
    pub fn terminate(&mut self, id: MonitorId) {
        self.get_mut(id).terminated = true;
    }

    /// Quarantines an instance whose handler panicked: it receives no
    /// further events and becomes collectable. Idempotent; returns `true`
    /// the first time (and `false` for already-collected ids), so callers
    /// can notify observers exactly once.
    pub fn quarantine(&mut self, id: MonitorId) -> bool {
        let Some(instance) = self.try_get_mut(id) else { return false };
        if instance.quarantined {
            return false;
        }
        instance.quarantined = true;
        self.stats.quarantined += 1;
        true
    }

    /// Whether compaction should drop this member (flagged, terminated,
    /// quarantined, or already gone).
    #[must_use]
    pub fn is_collectable(&self, id: MonitorId) -> bool {
        match self.slots.get(id.as_usize()).and_then(Option::as_ref) {
            Some(i) => i.flagged || i.terminated || i.quarantined,
            None => false, // already released by every other holder
        }
    }

    /// Iterates every live instance with its id — the walk
    /// [`Engine::check_invariants`](crate::Engine::check_invariants) uses
    /// to cross-check container reference counts.
    pub fn iter(&self) -> impl Iterator<Item = (MonitorId, &Instance<S>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|inst| (MonitorId(i as u32), inst)))
    }

    /// Number of live instances.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Lifetime statistics (M / FM / CM / peak).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Monitors collected so far (CM).
    #[must_use]
    pub fn collected(&self) -> u64 {
        self.stats.collected
    }

    /// Records extra per-state heap bytes (CFG charts); paired with
    /// [`MonitorStore::estimated_bytes`].
    pub fn add_state_bytes(&mut self, delta: isize) {
        self.state_bytes = self.state_bytes.saturating_add_signed(delta);
    }

    /// Estimated heap bytes held by live instances. Counts *live* slots
    /// rather than the slab capacity: the paper's metric is the JVM heap,
    /// where collected monitors return their memory.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.live * std::mem::size_of::<Option<Instance<S>>>() + self.state_bytes
    }

    // --- Snapshot access (crate-internal) --------------------------------

    /// The slot array, positionally (snapshot path: slot indices are part
    /// of the on-disk identity of a monitor).
    pub(crate) fn snapshot_slots(&self) -> &[Option<Instance<S>>] {
        &self.slots
    }

    /// The free list, in its LIFO order (preserved verbatim so restored
    /// runs reuse slots in the same order the original would have).
    pub(crate) fn snapshot_free(&self) -> &[u32] {
        &self.free
    }

    /// Extra per-state heap bytes (CFG charts).
    pub(crate) fn snapshot_state_bytes(&self) -> usize {
        self.state_bytes
    }

    /// Replaces the store's dynamic state wholesale (restore path). The
    /// collected-id log is cleared; `log_collected` keeps its configured
    /// value.
    pub(crate) fn restore_parts(
        &mut self,
        slots: Vec<Option<Instance<S>>>,
        free: Vec<u32>,
        stats: StoreStats,
        state_bytes: usize,
    ) {
        self.live = slots.iter().filter(|s| s.is_some()).count();
        self.slots = slots;
        self.free = free;
        self.stats = stats;
        self.state_bytes = state_bytes;
        self.collected_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_retain_release_lifecycle() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let id = store.create(Binding::BOTTOM, 5, EventId(0));
        store.retain(id);
        store.retain(id);
        assert_eq!(store.live(), 1);
        store.release(id);
        assert!(store.contains(id));
        store.release(id);
        assert!(!store.contains(id));
        assert_eq!(store.live(), 0);
        let s = store.stats();
        assert_eq!(s.created, 1);
        assert_eq!(s.collected, 1);
        assert_eq!(s.peak_live, 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let a = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(a);
        store.release(a);
        let b = store.create(Binding::BOTTOM, 2, EventId(0));
        assert_eq!(a.as_usize(), b.as_usize(), "slot reused");
        assert_eq!(store.get(b).state, 2);
    }

    #[test]
    fn flagging_is_idempotent_and_counted_once() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let id = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(id);
        assert!(store.flag(id), "first flag reports a transition");
        assert!(!store.flag(id), "second flag is a no-op");
        assert_eq!(store.stats().flagged, 1);
        assert!(store.is_collectable(id));
    }

    #[test]
    fn collected_log_captures_reclaimed_ids_only_when_enabled() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let a = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(a);
        store.release(a);
        assert!(store.drain_collected().is_empty(), "logging off by default");
        store.set_collected_log(true);
        let b = store.create(Binding::BOTTOM, 2, EventId(0));
        store.retain(b);
        store.release(b);
        assert_eq!(store.drain_collected(), vec![b]);
        assert!(store.drain_collected().is_empty(), "drain empties the log");
    }

    #[test]
    fn terminated_instances_are_collectable_but_not_flagged() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let id = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(id);
        store.terminate(id);
        assert!(store.is_collectable(id));
        assert_eq!(store.stats().flagged, 0);
    }

    #[test]
    fn quarantine_is_idempotent_counted_and_collectable() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let id = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(id);
        assert!(store.quarantine(id), "first quarantine reports a transition");
        assert!(!store.quarantine(id), "second quarantine is a no-op");
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.stats().flagged, 0, "quarantine is not an FM flag");
        assert!(store.is_collectable(id));
        store.release(id);
        assert!(!store.quarantine(id), "collected ids cannot be quarantined");
        assert_eq!(store.stats().quarantined, 1);
    }

    #[test]
    fn try_get_returns_none_for_stale_ids() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let id = store.create(Binding::BOTTOM, 7, EventId(0));
        store.retain(id);
        assert_eq!(store.try_get(id).map(|i| i.state), Some(7));
        store.release(id);
        assert!(store.try_get(id).is_none());
        assert!(store.try_get_mut(id).is_none());
    }

    #[test]
    fn iter_visits_live_instances_with_refs() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let a = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(a);
        store.retain(a);
        let b = store.create(Binding::BOTTOM, 2, EventId(0));
        store.retain(b);
        store.release(b);
        let seen: Vec<_> = store.iter().map(|(id, i)| (id, i.state, i.refs())).collect();
        assert_eq!(seen, vec![(a, 1, 2)]);
    }

    #[test]
    #[should_panic(expected = "monitor already collected")]
    fn stale_access_panics() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let id = store.create(Binding::BOTTOM, 1, EventId(0));
        store.retain(id);
        store.release(id);
        let _ = store.get(id);
    }
}
