//! The parametric monitoring engine: indexing trees, enable-set monitor
//! creation, and the paper's lazy monitor garbage collection.
//!
//! # Event dispatch (§4.1)
//!
//! For an event `e⟨θ⟩`, the engine looks `θ` up in the `⟨D(e)⟩`-tree of
//! Figure 6, obtaining the set of monitor instances whose bindings are
//! more informative than `θ`; each is stepped in place. Monitor *creation*
//! follows the enable-set discipline of Chen et al. \[19\] (which the paper's
//! RV builds on): a new instance for `θ ⊔ θ''` is created only when
//! `dom(θ'')` is an enable parameter set of `e`, inheriting the source's
//! state, and only when no event relevant to the new slice has been missed
//! (checked against the *disable* table, the analogue of JavaMOP's disable
//! stamps).
//!
//! # Garbage collection (§4.2)
//!
//! Three policies are provided:
//!
//! * [`GcPolicy::None`] — monitors live until their containers die.
//! * [`GcPolicy::AllParamsDead`] — the JavaMOP baseline: a monitor is
//!   flagged only when *every* bound parameter object is dead.
//! * [`GcPolicy::CoenableLazy`] — the paper's contribution: when an
//!   indexing structure discovers a dead parameter object, the monitors
//!   beneath it evaluate `ALIVENESS(last_event)` against their dead
//!   parameter set and flag themselves when no goal remains reachable
//!   (§4.2.2); flagged monitors are physically removed later, when a
//!   containing structure is next touched (Figures 7–8).
//!
//! Independently of the policy, monitors whose verdict can never become a
//! goal again (terminal states) are retired after reporting.
//!
//! # Robustness
//!
//! [`EngineConfig`] optionally carries resource budgets
//! (`max_live_monitors`, `max_tracked_bytes`, `max_work_per_event`); when
//! one trips, the engine walks the [`DegradationPolicy`] ladder — forced
//! safepoint sweeps, then exhaustive per-event tree maintenance, then
//! shedding new monitor creations — and steps back down once pressure
//! clears. Internal inconsistencies surface as recoverable
//! [`EngineError`]s via [`Engine::try_process`]; handler callbacks run
//! under `catch_unwind`, so a panicking handler quarantines only its own
//! monitor instance.

use rv_heap::Heap;
use rv_logic::{Aliveness, EventDef, EventId, Formalism, GoalSet, ParamSet, Verdict};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::binding::Binding;
use crate::error::EngineError;
use crate::obs::{EngineObserver, FlagCause, GcCycleRecord, GcKind, GcReason, NoopObserver, Phase};
use crate::reference::Trigger;
use crate::stats::EngineStats;
use crate::store::{Instance, MonitorId, MonitorStore};
use crate::trees::{Maintainer, RvMap, RvSet};

/// Pressure-free events required before the engine leaves degradation.
const DEGRADATION_COOLDOWN: u32 = 16;

/// How often (in events) the tracked-bytes budget is re-measured — sizing
/// every structure is itself O(structures), so it is amortized.
const BYTE_CHECK_PERIOD: u64 = 32;

/// The monitor garbage-collection policy (§5 compares these head to head).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GcPolicy {
    /// Never flag monitors (structures still shed entries whose keys die).
    None,
    /// JavaMOP: flag when all bound parameter objects are dead.
    AllParamsDead,
    /// RV: flag when the coenable-set ALIVENESS formula fails (falls back
    /// to [`GcPolicy::AllParamsDead`] behaviour for properties without
    /// coenable sets, e.g. CFG properties with a `fail` goal).
    #[default]
    CoenableLazy,
}

/// Which resource budget tripped (reported via
/// [`EngineObserver::budget_tripped`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    /// [`EngineConfig::max_live_monitors`].
    LiveMonitors,
    /// [`EngineConfig::max_tracked_bytes`].
    TrackedBytes,
    /// [`EngineConfig::max_work_per_event`].
    WorkPerEvent,
}

impl BudgetKind {
    /// The snake_case label used in traces and snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BudgetKind::LiveMonitors => "live_monitors",
            BudgetKind::TrackedBytes => "tracked_bytes",
            BudgetKind::WorkPerEvent => "work_per_event",
        }
    }
}

/// A rung of the graceful-degradation ladder, ordered by severity.
///
/// The value in [`EngineConfig::degradation`] is a *ceiling*: under
/// sustained budget pressure the engine escalates `ForcedSweep` →
/// `EagerCollect` → `ShedNewMonitors` but never past the ceiling, and it
/// steps back to normal operation after a run of pressure-free events.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum DegradationPolicy {
    /// Run a safepoint [`Engine::full_sweep`] when a budget trips.
    ForcedSweep,
    /// Additionally switch from lazy windowed expunging to exhaustive tree
    /// maintenance after every event.
    EagerCollect,
    /// Additionally refuse monitor creations while pressure persists
    /// (counted in [`EngineStats::shed`]), making the live-monitor budget
    /// a hard cap.
    #[default]
    ShedNewMonitors,
}

impl DegradationPolicy {
    /// The snake_case label used in traces and snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DegradationPolicy::ForcedSweep => "forced_sweep",
            DegradationPolicy::EagerCollect => "eager_collect",
            DegradationPolicy::ShedNewMonitors => "shed_new_monitors",
        }
    }
}

/// Configuration for an [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The GC policy.
    pub policy: GcPolicy,
    /// Record every trigger (tests) or only count them (benchmarks).
    pub record_triggers: bool,
    /// Expunge window for the weak maps (entries inspected per access).
    pub expunge_window: usize,
    /// Disable the ALIVENESS minimization (ablation: evaluate the raw
    /// Definition 11 disjunction instead of the minimized formula).
    pub minimize_aliveness: bool,
    /// Enable the monomorphic lookup cache: consecutive events on the same
    /// parameter instance (the ubiquitous `hasNext()`/`next()` loop) reuse
    /// the previous tree lookup so long as no monitor was created, flagged
    /// or collected in between. This is this reproduction's stand-in for
    /// the "staged/decentralized indexing" optimizations the paper cites
    /// as orthogonal (\[6, 8, 17\]) and disables in its own evaluation; the
    /// ablation bench measures it separately.
    pub lookup_cache: bool,
    /// Budget on live monitor instances (`None` = unbounded). With the
    /// full degradation ladder this is a hard cap: creations are shed
    /// rather than let the population exceed it.
    pub max_live_monitors: Option<usize>,
    /// Budget on [`Engine::estimated_bytes`] (`None` = unbounded; checked
    /// every few events).
    pub max_tracked_bytes: Option<usize>,
    /// Budget on monitors stepped plus created per event (`None` =
    /// unbounded).
    pub max_work_per_event: Option<usize>,
    /// Ceiling of the [`DegradationPolicy`] ladder: how far the engine may
    /// escalate when a budget trips.
    pub degradation: DegradationPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: GcPolicy::CoenableLazy,
            record_triggers: false,
            expunge_window: crate::trees::DEFAULT_EXPUNGE_WINDOW,
            minimize_aliveness: true,
            lookup_cache: true,
            max_live_monitors: None,
            max_tracked_bytes: None,
            max_work_per_event: None,
            degradation: DegradationPolicy::ShedNewMonitors,
        }
    }
}

/// A monitoring engine for one parametric property.
///
/// The second type parameter is the [`EngineObserver`] receiving lifecycle
/// callbacks; it defaults to [`NoopObserver`], whose callbacks are empty
/// inlined functions, so unobserved engines pay nothing. Attach a real
/// observer with [`Engine::with_observer`].
#[derive(Debug)]
pub struct Engine<F: Formalism, O: EngineObserver = NoopObserver> {
    formalism: F,
    event_def: EventDef,
    goal: GoalSet,
    aliveness: Option<Aliveness>,
    config: EngineConfig,
    /// Per event: enable parameter sets (creation sources), and whether the
    /// event may start a goal slice (`∅ ∈ ENABLEˣ(e)`).
    enable_sources: Vec<Vec<ParamSet>>,
    enable_bottom: Vec<bool>,
    /// All parameter subsets that ever serve as creation sources.
    source_domains: Vec<ParamSet>,
    store: MonitorStore<F::State>,
    /// Exact-instance table: `dom(θ)`-keyed family of maps `θ → monitor`.
    exact: HashMap<ParamSet, RvMap<MonitorId>>,
    /// Indexing trees (Figure 6): for each tracked subset `P`, a map from
    /// `θ|P` to the set of instances with binding ⊒ `θ|P`.
    trees: HashMap<ParamSet, RvMap<RvSet>>,
    /// Which subsets have trees: every `D(e)` plus every `Y ∩ D(e)` needed
    /// to locate join sources.
    tracked: Vec<ParamSet>,
    /// The *disable* table: event instances seen so far, used to refuse
    /// creating a monitor whose slice would be incomplete.
    disable: DisableTable,
    stats: EngineStats,
    /// Recorded triggers (when `record_triggers`).
    triggers: Vec<Trigger>,
    /// Scratch buffers reused across events.
    scratch_ids: Vec<MonitorId>,
    /// The monomorphic lookup cache (see [`EngineConfig::lookup_cache`]).
    cache: LookupCache,
    /// Active degradation rung (`None` = normal operation). `Option`
    /// ordering (`None < Some(_)`) matches ladder severity.
    degradation: Option<DegradationPolicy>,
    /// Consecutive pressure-free events; drives degradation recovery.
    clean_events: u32,
    /// Cached verdict of the last amortized tracked-bytes measurement.
    bytes_over: bool,
    /// Monitors stepped plus created while processing the current event.
    event_work: usize,
    /// Optional goal-report handler, run under `catch_unwind`.
    handler: HandlerSlot,
    /// The most recent error swallowed by the infallible [`Engine::process`]
    /// facade (sticky until [`Engine::take_last_error`]).
    last_error: Option<EngineError>,
    /// Construction instant: the time origin for [`GcCycleRecord::end_ns`]
    /// timestamps.
    epoch: Instant,
    /// The lifecycle observer (no-op by default).
    observer: O,
}

/// A goal-report handler: called with `(step, binding, verdict)` for each
/// trigger — the `@match`/`@fail` handler body of a spec.
pub type TriggerHandler = Box<dyn FnMut(usize, &Binding, Verdict)>;

/// Wrapper so [`Engine`] can keep deriving `Debug` around an opaque
/// closure.
#[derive(Default)]
struct HandlerSlot(Option<TriggerHandler>);

impl std::fmt::Debug for HandlerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "HandlerSlot(set)" } else { "HandlerSlot(none)" })
    }
}

/// The monomorphic lookup cache: remembers the member list of the last
/// `⟨D(e)⟩`-tree lookup. Valid while the *mutation signature* — monitors
/// created + flagged + collected — is unchanged: any set-membership change
/// or monitor-slot reuse moves one of those counters, so a matching
/// signature guarantees the cached ids are still exactly the live members
/// under the key (retired members are skipped by dispatch anyway).
#[derive(Debug, Default)]
struct LookupCache {
    key: Option<Binding>,
    signature: u64,
    members: Vec<MonitorId>,
    hits: u64,
}

/// The disable table with its own lazy weak pruning.
#[derive(Debug, Default)]
struct DisableTable {
    seen: HashSet<Binding>,
    ring: Vec<Binding>,
    cursor: usize,
}

impl DisableTable {
    fn insert(&mut self, b: Binding) {
        if self.seen.insert(b) {
            self.ring.push(b);
        }
    }

    fn contains(&self, b: &Binding) -> bool {
        self.seen.contains(b)
    }

    /// Drops a few entries whose objects died: such instances can never
    /// recur, and creation checks against them are settled by the weak
    /// keys of the exact table anyway.
    fn prune(&mut self, heap: &Heap, n: usize) {
        for _ in 0..n.min(self.ring.len()) {
            if self.cursor >= self.ring.len() {
                self.cursor = 0;
            }
            let b = self.ring[self.cursor];
            if b.iter().any(|(_, o)| !heap.is_alive(o)) {
                self.seen.remove(&b);
                self.ring.swap_remove(self.cursor);
            } else {
                self.cursor += 1;
            }
        }
    }

    fn bytes(&self) -> usize {
        (self.seen.capacity() + self.ring.capacity()) * std::mem::size_of::<Binding>()
    }
}

impl<F: Formalism> Engine<F> {
    /// Builds an engine for `formalism` with goal `goal` under `config`,
    /// with the zero-cost [`NoopObserver`].
    ///
    /// # Panics
    ///
    /// Panics if the event definition does not cover the formalism's
    /// alphabet.
    #[must_use]
    pub fn new(formalism: F, event_def: EventDef, goal: GoalSet, config: EngineConfig) -> Self {
        Engine::with_observer(formalism, event_def, goal, config, NoopObserver)
    }
}

impl<F: Formalism, O: EngineObserver> Engine<F, O> {
    /// Builds an engine whose lifecycle transitions are reported to
    /// `observer`.
    ///
    /// # Panics
    ///
    /// Panics if the event definition does not cover the formalism's
    /// alphabet.
    #[must_use]
    pub fn with_observer(
        formalism: F,
        event_def: EventDef,
        goal: GoalSet,
        config: EngineConfig,
        observer: O,
    ) -> Self {
        let alphabet = formalism.alphabet().clone();
        let n_events = alphabet.len();
        // ALIVENESS (§4.2.2), optionally unminimized for the ablation.
        let aliveness = formalism.coenable(goal).map(|co| {
            let lifted = co.lift(&event_def);
            if config.minimize_aliveness {
                lifted.aliveness()
            } else {
                lifted.aliveness_unminimized()
            }
        });
        // ENABLE sets → creation sources per event. Without enable sets
        // (CFG), creation is permissive: any existing domain can source a
        // join, and every event may start a slice.
        let (enable_sources, enable_bottom) = match formalism.enable(goal) {
            Some(en) => {
                let mut sources = Vec::with_capacity(n_events);
                let mut bottoms = Vec::with_capacity(n_events);
                for (family, has_empty) in &en {
                    let mut sets: Vec<ParamSet> =
                        family.sets().iter().map(|&s| event_def.params_of_set(s)).collect();
                    sets.sort_unstable_by_key(|s| std::cmp::Reverse(s.len()));
                    sets.dedup();
                    sources.push(sets);
                    bottoms.push(*has_empty);
                }
                (sources, bottoms)
            }
            None => {
                // All unions of event domains can be sources.
                let mut domains: Vec<ParamSet> = vec![ParamSet::EMPTY];
                for e in alphabet.iter() {
                    let d = event_def.params_of(e);
                    let mut extra: Vec<ParamSet> = domains.iter().map(|&x| x.union(d)).collect();
                    domains.append(&mut extra);
                    domains.sort_unstable();
                    domains.dedup();
                }
                domains.retain(|d| !d.is_empty());
                domains.sort_unstable_by_key(|s| std::cmp::Reverse(s.len()));
                (vec![domains; n_events], vec![true; n_events])
            }
        };
        let mut source_domains: Vec<ParamSet> = enable_sources.iter().flatten().copied().collect();
        source_domains.sort_unstable();
        source_domains.dedup();
        // Tracked tree subsets: every D(e), plus Y ∩ D(e) projections used
        // to locate join sources.
        let mut tracked: Vec<ParamSet> = alphabet.iter().map(|e| event_def.params_of(e)).collect();
        for e in alphabet.iter() {
            let d = event_def.params_of(e);
            for &y in &enable_sources[e.as_usize()] {
                let p = y.intersection(d);
                if !p.is_empty() {
                    tracked.push(p);
                }
            }
        }
        tracked.sort_unstable();
        tracked.dedup();
        let mut trees = HashMap::new();
        for &p in &tracked {
            let mut m = RvMap::new();
            m.set_window(config.expunge_window);
            trees.insert(p, m);
        }
        let mut store = MonitorStore::new();
        // Collected-id logging is what lets the engine deliver
        // `monitor_collected`; it is skipped entirely for the no-op.
        store.set_collected_log(O::ENABLED);
        Engine {
            formalism,
            event_def,
            goal,
            aliveness,
            config,
            enable_sources,
            enable_bottom,
            source_domains,
            store,
            exact: HashMap::new(),
            trees,
            tracked,
            disable: DisableTable::default(),
            stats: EngineStats::default(),
            triggers: Vec::new(),
            scratch_ids: Vec::new(),
            cache: LookupCache::default(),
            degradation: None,
            clean_events: 0,
            bytes_over: false,
            event_work: 0,
            handler: HandlerSlot::default(),
            last_error: None,
            epoch: Instant::now(),
            observer,
        }
    }

    /// The attached observer.
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer (e.g. to dump its trace).
    #[must_use]
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The property goal.
    #[must_use]
    pub fn goal(&self) -> GoalSet {
        self.goal
    }

    /// The underlying formalism.
    #[must_use]
    pub fn formalism(&self) -> &F {
        &self.formalism
    }

    /// The event definition `D`.
    #[must_use]
    pub fn event_def(&self) -> &EventDef {
        &self.event_def
    }

    /// Statistics so far (Fig. 10 columns and memory estimates).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        let ss = self.store.stats();
        s.monitors_created = ss.created;
        s.monitors_flagged = ss.flagged;
        s.monitors_collected = ss.collected;
        s.peak_live_monitors = ss.peak_live;
        s.live_monitors = self.store.live();
        s.quarantined = ss.quarantined;
        s
    }

    /// Triggers recorded so far (empty unless
    /// [`EngineConfig::record_triggers`]).
    #[must_use]
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Estimated bytes held by the engine's monitors and structures — the
    /// Fig. 9(B) metric.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        let mut bytes = self.store.estimated_bytes() + self.disable.bytes();
        for m in self.exact.values() {
            bytes += m.estimated_bytes();
        }
        for t in self.trees.values() {
            bytes += t.estimated_bytes();
            for (_, set) in t.iter() {
                bytes += set.estimated_bytes();
            }
        }
        bytes
    }

    /// Processes one parametric event `e⟨θ⟩` — the infallible facade over
    /// [`Engine::try_process`].
    ///
    /// This never panics: a monitoring layer that can abort the monitored
    /// program (or, sharded, poison a whole worker thread) is worse than no
    /// monitoring at all. Malformed events and internal inconsistencies are
    /// dropped and remembered — the typed [`EngineError`] stays readable
    /// via [`Engine::last_error`] / [`Engine::take_last_error`]. Callers
    /// that need per-event failure reporting use [`Engine::try_process`].
    pub fn process(&mut self, heap: &Heap, event: EventId, binding: Binding) {
        if let Err(e) = self.try_process(heap, event, binding) {
            self.last_error = Some(e);
        }
    }

    /// The most recent error the infallible [`Engine::process`] facade
    /// swallowed, if any. Sticky until [`Engine::take_last_error`].
    #[must_use]
    pub fn last_error(&self) -> Option<&EngineError> {
        self.last_error.as_ref()
    }

    /// Takes (and clears) the most recent swallowed error.
    pub fn take_last_error(&mut self) -> Option<EngineError> {
        self.last_error.take()
    }

    /// Processes one parametric event, reporting malformed input and
    /// internal inconsistencies as recoverable [`EngineError`]s.
    ///
    /// # Errors
    ///
    /// [`EngineError::EventOutOfAlphabet`] and
    /// [`EngineError::InconsistentEvent`] reject malformed input before any
    /// state changes; the remaining variants report a broken internal
    /// invariant (the offending event is abandoned midway, but the engine
    /// stays usable).
    pub fn try_process(
        &mut self,
        heap: &Heap,
        event: EventId,
        binding: Binding,
    ) -> Result<(), EngineError> {
        if event.as_usize() >= self.enable_sources.len() {
            return Err(EngineError::EventOutOfAlphabet(event));
        }
        let expected = self.event_def.params_of(event);
        if binding.domain() != expected {
            return Err(EngineError::InconsistentEvent { event, expected, got: binding.domain() });
        }
        let step = self.stats.events as usize;
        self.stats.events += 1;
        self.event_work = 0;
        // End-to-end dispatch latency: from here (post-validation) through
        // governance, trigger delivery, and the collected-id flush.
        let t_event = if O::ENABLED { Some(Instant::now()) } else { None };
        let domain = binding.domain();

        // --- update existing instances ⊒ θ (Figure 6 lookup) ------------
        let signature = {
            let ss = self.store.stats();
            ss.created
                .wrapping_mul(3)
                .wrapping_add(ss.flagged.wrapping_mul(5))
                .wrapping_add(ss.collected.wrapping_mul(7))
        };
        let t_lookup = if O::ENABLED { Some(Instant::now()) } else { None };
        if self.config.lookup_cache
            && self.cache.key == Some(binding)
            && self.cache.signature == signature
        {
            // Monomorphic hit: same instance, no monitor lifecycle change.
            self.stats.cache_hits += 1;
            self.cache.hits += 1;
            self.observer.cache_hit();
            self.scratch_ids.clear();
            let members = std::mem::take(&mut self.cache.members);
            self.scratch_ids.extend_from_slice(&members);
            self.cache.members = members;
            // Keep a trickle of lazy GC flowing even on hot loops.
            if self.cache.hits % 16 == 0 {
                let Some(mut tree) = self.trees.remove(&domain) else {
                    return Err(EngineError::MissingTree(domain));
                };
                let t_expunge = if O::ENABLED { Some(Instant::now()) } else { None };
                let mut sink = NotifySink::new(
                    &mut self.store,
                    &self.aliveness,
                    self.config.policy,
                    heap,
                    &mut self.stats,
                    &mut self.observer,
                );
                tree.expunge(heap, 1, &mut sink);
                self.trees.insert(domain, tree);
                if let Some(t) = t_expunge {
                    self.observer.phase_timed(Phase::DeadKeyExpunge, elapsed_nanos(t));
                }
            }
        } else {
            self.observer.cache_miss();
            // Take the tree out to appease the borrow checker; cheap move.
            let Some(mut tree) = self.trees.remove(&domain) else {
                return Err(EngineError::MissingTree(domain));
            };
            let mut sink = NotifySink::new(
                &mut self.store,
                &self.aliveness,
                self.config.policy,
                heap,
                &mut self.stats,
                &mut self.observer,
            );
            self.scratch_ids.clear();
            if let Some(set) = tree.get_mut(heap, binding, &mut sink) {
                // Figure 8: compact while touching the set.
                set.compact(sink.store);
                self.scratch_ids.extend_from_slice(set.members());
            }
            self.trees.insert(domain, tree);
            if self.config.lookup_cache {
                // The expunge above may itself have changed the signature.
                let ss = self.store.stats();
                self.cache.key = Some(binding);
                self.cache.signature = ss
                    .created
                    .wrapping_mul(3)
                    .wrapping_add(ss.flagged.wrapping_mul(5))
                    .wrapping_add(ss.collected.wrapping_mul(7));
                self.cache.members.clear();
                self.cache.members.extend_from_slice(&self.scratch_ids);
            }
        }
        if let Some(t) = t_lookup {
            self.observer.phase_timed(Phase::IndexLookup, elapsed_nanos(t));
        }
        self.observer.event_dispatched(event, &binding, self.scratch_ids.len());
        let t_step = if O::ENABLED { Some(Instant::now()) } else { None };
        let ids = std::mem::take(&mut self.scratch_ids);
        self.event_work += ids.len();
        let mut stepped = Ok(());
        for &id in &ids {
            if let Err(e) = self.step_instance(id, event, step) {
                stepped = Err(e);
                break;
            }
        }
        self.scratch_ids = ids;
        stepped?;
        if let Some(t) = t_step {
            self.observer.phase_timed(Phase::Transition, elapsed_nanos(t));
        }

        // --- create new instances (enable-set discipline) ----------------
        // Following JavaMOP's algorithm D: creation is attempted only when
        // the event's *own* binding has no instance yet (its first
        // relevant event). Joins with pre-existing instances are created
        // in the same step; later events find everything via the trees.
        // The exact table keeps even flagged/terminated instances until
        // they are swept, so this also prevents re-creating retired ones.
        let t_disable = if O::ENABLED { Some(Instant::now()) } else { None };
        let own_exists = self.exact.get(&domain).is_some_and(|m| m.peek(&binding).is_some());
        if !own_exists {
            self.try_create_own(heap, event, binding, step)?;
            self.try_create_joins(heap, event, binding, step)?;
        }

        // Record the event instance in the disable table, and do a little
        // lazy maintenance elsewhere.
        self.disable.insert(binding);
        self.disable.prune(heap, 2);
        if let Some(t) = t_disable {
            self.observer.phase_timed(Phase::DisableCheck, elapsed_nanos(t));
        }
        self.end_of_event_governance(heap);
        if O::ENABLED {
            self.flush_collected();
        }
        if let Some(t) = t_event {
            self.observer.event_latency(elapsed_nanos(t));
        }
        Ok(())
    }

    /// Delivers `monitor_collected` for every id the store reclaimed since
    /// the last flush. Called at the end of [`Engine::process`] and of
    /// sweeps, so observer collection counts match [`EngineStats`] at every
    /// API boundary.
    fn flush_collected(&mut self) {
        for id in self.store.drain_collected() {
            self.observer.monitor_collected(id);
        }
    }

    /// Steps one live instance in place, reporting and retiring as needed.
    fn step_instance(
        &mut self,
        id: MonitorId,
        event: EventId,
        step: usize,
    ) -> Result<(), EngineError> {
        // invariant: every dispatched id comes from a container that holds
        // a reference on the slot, and unflagged/unterminated monitors keep
        // their exact-table reference — so the slot must be live. A stale
        // id here is a refcount bug, not a normal state.
        let Some(instance) = self.store.try_get_mut(id) else {
            debug_assert!(false, "stale monitor id dispatched");
            return Err(EngineError::StaleMonitor(id));
        };
        if instance.flagged || instance.terminated || instance.quarantined {
            return Ok(());
        }
        let before = self.formalism.state_bytes(&instance.state);
        let verdict = self.formalism.step(&mut instance.state, event);
        instance.last_event = event;
        let after = self.formalism.state_bytes(&instance.state);
        let binding = instance.binding;
        let terminal = self.formalism.is_terminal(&instance.state, self.goal);
        self.store.add_state_bytes(after as isize - before as isize);
        if self.goal.contains(verdict) {
            self.report(id, step, binding, verdict);
        }
        if terminal {
            self.store.terminate(id);
        }
        Ok(())
    }

    fn report(&mut self, id: MonitorId, step: usize, binding: Binding, verdict: Verdict) {
        self.stats.triggers += 1;
        self.observer.trigger_fired(step, &binding, verdict);
        if self.config.record_triggers {
            self.triggers.push(Trigger { step, binding, verdict });
        }
        if let Some(handler) = self.handler.0.as_mut() {
            // A panicking handler must not take the engine down: quarantine
            // the reporting monitor and keep processing.
            let outcome = catch_unwind(AssertUnwindSafe(|| handler(step, &binding, verdict)));
            if outcome.is_err() && self.store.quarantine(id) {
                self.observer.monitor_quarantined(id, &binding);
            }
        }
    }

    /// Creates the instance for the event's own binding, if the enable
    /// discipline wants it: either the event can start a goal slice
    /// (`∅ ∈ ENABLEˣ(e)`), or `D(e)` serves as a creation source for some
    /// future event.
    fn try_create_own(
        &mut self,
        heap: &Heap,
        event: EventId,
        binding: Binding,
        step: usize,
    ) -> Result<(), EngineError> {
        let needed =
            self.enable_bottom[event.as_usize()] || self.source_domains.contains(&binding.domain());
        if !needed {
            self.stats.creations_skipped += 1;
            return Ok(());
        }
        // The resource gate goes first: it may run a sweep, which must
        // happen before a source instance is selected below.
        if !self.admit_creation(heap, &binding) {
            return Ok(());
        }
        // Inherit from the most informative existing sub-instance.
        let mut best: Option<(ParamSet, MonitorId)> = None;
        for &domain in &self.source_domains {
            if domain.is_subset(binding.domain())
                && domain != binding.domain()
                && best.is_none_or(|(b, _)| domain.len() > b.len())
            {
                let key = binding.restrict(domain);
                if let Some(&id) = self.exact.get(&domain).and_then(|m| m.peek(&key)) {
                    // invariant: the exact table holds a reference on the
                    // slot, so the id is live.
                    let source = self.store.try_get(id).ok_or(EngineError::StaleMonitor(id))?;
                    if !source.flagged && !source.terminated {
                        best = Some((domain, id));
                    }
                }
            }
        }
        let source_domain = best.map_or(ParamSet::EMPTY, |(d, _)| d);
        if !self.slice_complete(binding, source_domain) {
            self.stats.creations_skipped += 1;
            return Ok(());
        }
        let state = match best {
            Some((_, id)) => {
                self.store.try_get(id).ok_or(EngineError::StaleMonitor(id))?.state.clone()
            }
            None => self.formalism.initial_state(),
        };
        self.create_instance(heap, binding, state, event, step)?;
        Ok(())
    }

    /// Creates joins `θ ⊔ θ''` for sources `θ''` whose domain is an enable
    /// parameter set of `e`.
    fn try_create_joins(
        &mut self,
        heap: &Heap,
        event: EventId,
        binding: Binding,
        step: usize,
    ) -> Result<(), EngineError> {
        let domain = binding.domain();
        let sources = self.enable_sources[event.as_usize()].clone();
        for y in sources {
            if y.is_subset(domain) {
                continue; // covered by the ⊒ update / own creation
            }
            // Locate instances with domain exactly `y` compatible with θ.
            let p = y.intersection(domain);
            self.scratch_ids.clear();
            if p.is_empty() {
                // Disjoint domains: every instance of domain y is
                // compatible. Scan the exact table for y.
                if let Some(m) = self.exact.get(&y) {
                    self.scratch_ids.extend(m.iter().map(|(_, &id)| id));
                }
            } else {
                let key = binding.restrict(p);
                let mut tree = match self.trees.remove(&p) {
                    Some(t) => t,
                    None => continue,
                };
                let mut sink = NotifySink::new(
                    &mut self.store,
                    &self.aliveness,
                    self.config.policy,
                    heap,
                    &mut self.stats,
                    &mut self.observer,
                );
                if let Some(set) = tree.get_mut(heap, key, &mut sink) {
                    set.compact(sink.store);
                    for &id in set.members() {
                        self.scratch_ids.push(id);
                    }
                }
                self.trees.insert(p, tree);
            }
            let candidates = std::mem::take(&mut self.scratch_ids);
            for &id in &candidates {
                if !self.store.contains(id) {
                    continue;
                }
                let source = self.store.get(id);
                if source.flagged || source.terminated || source.binding.domain() != y {
                    continue;
                }
                let source_binding = source.binding;
                let Some(join) = binding.lub(source_binding) else { continue };
                if join == source_binding {
                    // The "join" is the source itself (θ ⊑ source): it was
                    // already stepped through the ⟨D(e)⟩-tree.
                    continue;
                }
                // Already exists?
                if self.exact.get(&join.domain()).is_some_and(|m| m.peek(&join).is_some()) {
                    continue;
                }
                if !self.slice_complete(join, y) {
                    self.stats.creations_skipped += 1;
                    continue;
                }
                // Born flagged: the GC policy would flag the new instance
                // right after its creating step — a needed parameter
                // object is already gone, or (empty ALIVENESS masks) no
                // event after this one is ever needed. The instance must
                // still be created and stepped, because the creating step
                // itself may reach the goal; it is flagged immediately
                // afterwards so the next sweep reclaims it.
                let dead = join.dead_params(heap);
                let born_flagged =
                    should_flag(self.config.policy, &self.aliveness, join.domain(), event, dead);
                if !self.admit_creation(heap, &join) {
                    continue;
                }
                // The admission gate may have swept; re-check the source.
                let state = match self.store.try_get(id) {
                    Some(s) if !s.flagged && !s.terminated => s.state.clone(),
                    _ => {
                        self.stats.creations_skipped += 1;
                        continue;
                    }
                };
                let new_id = match self.create_instance(heap, join, state, event, step) {
                    Ok(new_id) => new_id,
                    Err(e) => {
                        self.scratch_ids = candidates;
                        return Err(e);
                    }
                };
                if born_flagged && self.store.contains(new_id) {
                    let inst = self.store.get(new_id);
                    if !inst.terminated && !inst.flagged && self.store.flag(new_id) {
                        self.observer.monitor_flagged(
                            new_id,
                            &join,
                            event,
                            dead,
                            flag_cause(self.config.policy, &self.aliveness),
                        );
                    }
                }
            }
            self.scratch_ids = candidates;
        }
        Ok(())
    }

    /// The disable-table check: creating an instance for `target` from a
    /// source covering `source_domain` is exact iff no event instance
    /// `θ''' ⊑ target` with `dom(θ''') ⊄ source_domain` has occurred.
    fn slice_complete(&self, target: Binding, source_domain: ParamSet) -> bool {
        // Enumerate sub-domains of dom(target) not covered by the source.
        let dom = target.domain();
        let bits = dom.0;
        let mut sub = bits;
        loop {
            let s = ParamSet(sub);
            if !s.is_empty()
                && !s.is_subset(source_domain)
                && self.disable.contains(&target.restrict(s))
            {
                return false;
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & bits;
        }
        true
    }

    /// Registers a freshly created instance in the exact table and every
    /// relevant indexing tree, then steps it by the creating event.
    /// Returns the new instance's id.
    fn create_instance(
        &mut self,
        heap: &Heap,
        binding: Binding,
        state: F::State,
        event: EventId,
        step: usize,
    ) -> Result<MonitorId, EngineError> {
        let id = self.store.create(binding, state, event);
        self.event_work += 1;
        self.observer.monitor_created(id, &binding);
        // invariant: `id` was created two lines above; the slot is live.
        self.store.add_state_bytes(self.formalism.state_bytes(&self.store.get(id).state) as isize);
        // Exact table.
        {
            let mut map = self.exact.remove(&binding.domain()).unwrap_or_else(|| {
                let mut m = RvMap::new();
                m.set_window(self.config.expunge_window);
                m
            });
            let mut sink = ExactMaintainer {
                store: &mut self.store,
                aliveness: &self.aliveness,
                policy: self.config.policy,
                heap,
                observer: &mut self.observer,
            };
            map.insert(heap, binding, id, &mut sink);
            self.store.retain(id);
            self.exact.insert(binding.domain(), map);
        }
        // Trees: every tracked subset of the new binding's domain.
        for i in 0..self.tracked.len() {
            let p = self.tracked[i];
            if !p.is_subset(binding.domain()) {
                continue;
            }
            let key = binding.restrict(p);
            let Some(mut tree) = self.trees.remove(&p) else {
                return Err(EngineError::MissingTree(p));
            };
            let mut sink = NotifySink::new(
                &mut self.store,
                &self.aliveness,
                self.config.policy,
                heap,
                &mut self.stats,
                &mut self.observer,
            );
            match tree.get_mut(heap, key, &mut sink) {
                Some(set) => set.push(id),
                None => {
                    tree.insert(heap, key, RvSet::singleton(id), &mut sink);
                }
            }
            self.store.retain(id);
            self.trees.insert(p, tree);
        }
        // Step by the creating event.
        self.step_instance(id, event, step)?;
        Ok(id)
    }

    // --- resource governance (budgets + degradation ladder) -------------

    /// The degradation rung currently active, if any.
    #[must_use]
    pub fn degradation_level(&self) -> Option<DegradationPolicy> {
        self.degradation
    }

    /// Installs a handler invoked on every goal report (the spec's
    /// `@match`/`@fail` body). The handler runs under `catch_unwind`: if it
    /// panics, only the reporting monitor instance is quarantined (counted
    /// in [`EngineStats::quarantined`]) and the engine keeps processing.
    pub fn set_trigger_handler(&mut self, handler: impl FnMut(usize, &Binding, Verdict) + 'static) {
        self.handler = HandlerSlot(Some(Box::new(handler)));
    }

    /// Per-event budget evaluation and degradation bookkeeping, run at the
    /// end of [`Engine::try_process`]. Costs nothing when no budget is
    /// configured and the engine is not degraded.
    fn end_of_event_governance(&mut self, heap: &Heap) {
        let has_budgets = self.config.max_live_monitors.is_some()
            || self.config.max_tracked_bytes.is_some()
            || self.config.max_work_per_event.is_some();
        if !has_budgets && self.degradation.is_none() {
            return;
        }
        // EagerCollect and deeper: lazy windowed expunging is not keeping
        // up, so run exhaustive tree maintenance after every event.
        if self.degradation >= Some(DegradationPolicy::EagerCollect) {
            self.sweep_once_timed(heap);
        }
        let mut pressure = false;
        if let Some(max) = self.config.max_work_per_event {
            if self.event_work > max {
                pressure = true;
                self.trip(BudgetKind::WorkPerEvent, self.event_work as u64, max as u64, heap);
            }
        }
        if let Some(max) = self.config.max_tracked_bytes {
            if self.stats.events % BYTE_CHECK_PERIOD == 0 || self.bytes_over {
                let bytes = self.estimated_bytes();
                self.bytes_over = bytes > max;
                if self.bytes_over {
                    pressure = true;
                    self.trip(BudgetKind::TrackedBytes, bytes as u64, max as u64, heap);
                    self.bytes_over = self.estimated_bytes() > max;
                }
            }
            pressure |= self.bytes_over;
        }
        if let Some(max) = self.config.max_live_monitors {
            if self.store.live() > max {
                pressure = true;
                self.trip(BudgetKind::LiveMonitors, self.store.live() as u64, max as u64, heap);
            }
            pressure |= self.store.live() >= max;
        }
        if let Some(level) = self.degradation {
            if pressure {
                self.clean_events = 0;
            } else {
                self.clean_events += 1;
                if self.clean_events >= DEGRADATION_COOLDOWN {
                    self.degradation = None;
                    self.clean_events = 0;
                    self.bytes_over = false;
                    self.observer.degradation_exited(level);
                }
            }
        }
    }

    /// The budget gate run before each monitor creation. Returns `false`
    /// when the creation must be shed — which only happens at the
    /// [`DegradationPolicy::ShedNewMonitors`] rung.
    fn admit_creation(&mut self, heap: &Heap, binding: &Binding) -> bool {
        if let Some(max) = self.config.max_live_monitors {
            if self.store.live() >= max {
                self.trip(BudgetKind::LiveMonitors, self.store.live() as u64, max as u64, heap);
                if self.store.live() >= max
                    && self.degradation == Some(DegradationPolicy::ShedNewMonitors)
                {
                    self.shed(binding);
                    return false;
                }
            }
        }
        if self.bytes_over && self.degradation == Some(DegradationPolicy::ShedNewMonitors) {
            self.shed(binding);
            return false;
        }
        true
    }

    fn shed(&mut self, binding: &Binding) {
        self.stats.shed += 1;
        self.observer.monitor_shed(binding);
    }

    /// Handles one budget violation: record it, make sure a degradation
    /// rung is active, apply remedies, and escalate — never past the
    /// [`EngineConfig::degradation`] ceiling — while the pressure persists.
    fn trip(&mut self, kind: BudgetKind, observed: u64, limit: u64, heap: &Heap) {
        self.stats.budget_trips += 1;
        self.observer.budget_tripped(kind, observed, limit);
        self.clean_events = 0;
        // Sweeps run while already degraded are maintenance demanded by
        // the ladder; the first trip's sweep is charged to the budget.
        let sweep_reason = if self.degradation.is_some() {
            GcReason::Degradation
        } else {
            self.enter_degradation(DegradationPolicy::ForcedSweep);
            GcReason::Budget
        };
        if kind == BudgetKind::WorkPerEvent {
            // Work already spent this event cannot be re-measured, so a
            // satisfaction loop would spin: apply the current rung's remedy
            // and escalate exactly one rung per violation.
            let rung = self.degradation.unwrap_or(DegradationPolicy::ForcedSweep);
            if rung < DegradationPolicy::ShedNewMonitors {
                self.full_sweep_with(heap, sweep_reason);
            }
            let next = match rung {
                DegradationPolicy::ForcedSweep => DegradationPolicy::EagerCollect,
                _ => DegradationPolicy::ShedNewMonitors,
            };
            self.enter_degradation(next);
            return;
        }
        loop {
            let rung = self.degradation.unwrap_or(DegradationPolicy::ForcedSweep);
            if rung < DegradationPolicy::ShedNewMonitors {
                self.full_sweep_with(heap, sweep_reason);
            }
            let satisfied = match kind {
                BudgetKind::LiveMonitors => (self.store.live() as u64) < limit,
                BudgetKind::TrackedBytes => (self.estimated_bytes() as u64) <= limit,
                BudgetKind::WorkPerEvent => unreachable!("handled above"),
            };
            if satisfied || rung == DegradationPolicy::ShedNewMonitors {
                return;
            }
            let next = match rung {
                DegradationPolicy::ForcedSweep => DegradationPolicy::EagerCollect,
                _ => DegradationPolicy::ShedNewMonitors,
            };
            if self.config.degradation < next {
                // Ceiling reached; live with the violation at this rung.
                return;
            }
            self.enter_degradation(next);
        }
    }

    /// Raises the active rung to at least `level` (ceiling permitting),
    /// reporting the escalation. Never lowers the rung.
    fn enter_degradation(&mut self, level: DegradationPolicy) {
        if self.degradation < Some(level) && self.config.degradation >= level {
            self.degradation = Some(level);
            self.stats.degradations += 1;
            self.observer.degradation_entered(level);
        }
    }

    /// Validates store/tree/stats consistency, returning the first
    /// violation found. Intended for debug builds, chaos harnesses, and
    /// post-mortems — it walks every container, so it is O(monitors).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvariantViolation`] (or
    /// [`EngineError::StaleMonitor`]) describing the first inconsistency.
    pub fn check_invariants(&self, heap: &Heap) -> Result<(), EngineError> {
        fn err(msg: String) -> Result<(), EngineError> {
            Err(EngineError::InvariantViolation(msg))
        }
        let s = self.stats();
        if s.monitors_created - s.monitors_collected != s.live_monitors as u64 {
            return err(format!(
                "created ({}) - collected ({}) != live ({})",
                s.monitors_created, s.monitors_collected, s.live_monitors
            ));
        }
        if s.monitors_flagged > s.monitors_created {
            return err(format!(
                "flagged ({}) exceeds created ({})",
                s.monitors_flagged, s.monitors_created
            ));
        }
        if s.peak_live_monitors < s.live_monitors {
            return err(format!(
                "peak ({}) below live ({})",
                s.peak_live_monitors, s.live_monitors
            ));
        }
        // Count container memberships per monitor and check key shapes.
        let mut memberships: HashMap<MonitorId, u32> = HashMap::new();
        for (&domain, map) in &self.exact {
            for (key, &id) in map.iter() {
                if key.domain() != domain {
                    return err(format!("exact key {key:?} filed under domain {domain:?}"));
                }
                let Some(instance) = self.store.try_get(id) else {
                    return Err(EngineError::StaleMonitor(id));
                };
                if instance.binding != *key {
                    return err(format!(
                        "exact entry {key:?} maps to monitor with binding {:?}",
                        instance.binding
                    ));
                }
                *memberships.entry(id).or_insert(0) += 1;
            }
        }
        for (&p, tree) in &self.trees {
            for (key, set) in tree.iter() {
                if key.domain() != p {
                    return err(format!("tree ⟨{p:?}⟩ holds key {key:?}"));
                }
                for &id in set.members() {
                    let Some(instance) = self.store.try_get(id) else {
                        return Err(EngineError::StaleMonitor(id));
                    };
                    if instance.binding.restrict(p) != *key {
                        return err(format!(
                            "tree ⟨{p:?}⟩ key {key:?} holds monitor with binding {:?}",
                            instance.binding
                        ));
                    }
                    *memberships.entry(id).or_insert(0) += 1;
                }
            }
        }
        for (id, instance) in self.store.iter() {
            let held = memberships.get(&id).copied().unwrap_or(0);
            if held != instance.refs() {
                return err(format!(
                    "monitor #{} holds {} container refs but appears in {} containers",
                    id.as_usize(),
                    instance.refs(),
                    held
                ));
            }
        }
        // Heap-dependent check: under AllParamsDead a flagged monitor's
        // parameters must all be dead — ObjId generations make death
        // permanent, so this holds at any later time too.
        if self.config.policy == GcPolicy::AllParamsDead {
            for (id, instance) in self.store.iter() {
                if instance.flagged {
                    let domain = instance.binding.domain();
                    if domain.is_empty() || instance.binding.dead_params(heap) != domain {
                        return err(format!(
                            "monitor #{} flagged under AllParamsDead with live parameters",
                            id.as_usize()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs GC maintenance over every structure, fully expunging dead keys
    /// and compacting sets. Called by benchmarks at safepoints and by
    /// [`Engine::finish`]. Emits a [`GcReason::Forced`] cycle record (the
    /// caller asked for the sweep explicitly).
    pub fn full_sweep(&mut self, heap: &Heap) {
        self.full_sweep_with(heap, GcReason::Forced);
    }

    /// [`Engine::full_sweep`] with an explicit [`GcReason`], returning the
    /// per-cycle accounting delivered to the observer — or `None` when the
    /// observer is disabled, in which case no wall clock is read and no
    /// record is assembled at all (the structural zero-overhead guarantee).
    pub fn full_sweep_with(&mut self, heap: &Heap, reason: GcReason) -> Option<GcCycleRecord> {
        // Two passes: the first discovers dead keys and *flags* monitors
        // (Figure 7); the second compacts live-keyed structures, which can
        // only shed monitors once they are flagged (Figure 8). Incremental
        // operation interleaves these naturally; a safepoint sweep must
        // sequence them.
        let before = self.store.stats();
        let live_before = self.store.live() as u64;
        self.observer.sweep_started();
        let t_sweep = if O::ENABLED { Some(Instant::now()) } else { None };
        for _ in 0..2 {
            self.sweep_once(heap);
        }
        let pause_ns = t_sweep.map(elapsed_nanos);
        if let Some(ns) = pause_ns {
            self.observer.phase_timed(Phase::Sweep, ns);
        }
        if O::ENABLED {
            self.flush_collected();
        }
        let after = self.store.stats();
        self.observer
            .sweep_finished(after.flagged - before.flagged, after.collected - before.collected);
        let record = pause_ns.map(|ns| GcCycleRecord {
            kind: GcKind::MonitorSweep,
            reason,
            end_ns: elapsed_nanos(self.epoch),
            pause_ns: ns,
            scanned: live_before,
            reclaimed: after.collected - before.collected,
            flagged: after.flagged - before.flagged,
            occupancy_before: live_before,
            occupancy_after: self.store.live() as u64,
        });
        if let Some(rec) = &record {
            self.observer.gc_cycle(rec);
        }
        record
    }

    fn sweep_once_timed(&mut self, heap: &Heap) {
        let t = if O::ENABLED { Some(Instant::now()) } else { None };
        self.sweep_once(heap);
        if let Some(t) = t {
            self.observer.phase_timed(Phase::DeadKeyExpunge, elapsed_nanos(t));
        }
    }

    fn sweep_once(&mut self, heap: &Heap) {
        // Visit structures in domain order, not hash order: sweep-driven
        // releases determine slot reuse, and identical runs (original vs
        // crash-recovered) must release in the same order.
        let policy = self.config.policy;
        let mut domains: Vec<ParamSet> = self.trees.keys().copied().collect();
        domains.sort_unstable();
        for d in domains {
            let tree = self.trees.get_mut(&d).expect("domain from keys()");
            let mut sink = NotifySink::new(
                &mut self.store,
                &self.aliveness,
                policy,
                heap,
                &mut self.stats,
                &mut self.observer,
            );
            tree.expunge_all(heap, &mut sink);
        }
        let mut domains: Vec<ParamSet> = self.exact.keys().copied().collect();
        domains.sort_unstable();
        for d in domains {
            let map = self.exact.get_mut(&d).expect("domain from keys()");
            let mut sink = ExactMaintainer {
                store: &mut self.store,
                aliveness: &self.aliveness,
                policy,
                heap,
                observer: &mut self.observer,
            };
            map.expunge_all(heap, &mut sink);
        }
    }

    /// Final flush: sweeps everything and releases all containers, so CM
    /// reflects every monitor the engine let go of.
    pub fn finish(&mut self, heap: &Heap) {
        self.full_sweep(heap);
    }

    /// Drains the heap's completed-collection log and delivers each cycle
    /// to the observer as a [`GcKind::HeapCollect`] record. A no-op (the
    /// log is still drained, keeping it bounded) when the observer is
    /// disabled. Call once per heap per drain point: the heap log is
    /// consumed, so routing it through several engines would double-count.
    pub fn observe_heap_cycles(&mut self, heap: &mut Heap) {
        let cycles = heap.drain_cycles();
        if O::ENABLED {
            for c in &cycles {
                self.observer.gc_cycle(&GcCycleRecord::from_heap_cycle(c));
            }
        }
    }

    // --- Checkpoint/restore (crash consistency) --------------------------

    /// Serializes the engine's full dynamic state — monitor instances,
    /// indexing trees, GC flags, the disable table, statistics, recorded
    /// triggers, and degradation state — as a versioned, self-validating
    /// byte payload (the checkpoint body of `snapshot.rs`).
    ///
    /// The encoding is *canonical*: hash-map contents are sorted by
    /// binding, everything else keeps its in-memory order (slot positions,
    /// free-list LIFO order, set membership order, expunge rings), so
    /// `snapshot → restore → snapshot` is byte-identical and a restored
    /// engine replays future events exactly as the original would have.
    ///
    /// Returns `None` when the formalism has no state codec
    /// ([`Formalism::encode_state`] unsupported) — every formalism shipped
    /// with this reproduction has one.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        use crate::journal::encode_binding;
        use crate::snapshot::{put_bytes, put_u16, put_u32, put_u64};
        let mut out = Vec::with_capacity(256);
        out.push(ENGINE_SNAPSHOT_VERSION);
        // Fingerprint: restoring into an engine built for a different
        // policy or alphabet must fail loudly, not silently misbehave.
        out.push(policy_byte(self.config.policy));
        put_u16(&mut out, self.formalism.alphabet().len() as u16);
        // Monitor store, positionally: slot indices are the identity the
        // indexing structures reference.
        let slots = self.store.snapshot_slots();
        put_u64(&mut out, slots.len() as u64);
        let mut state_buf = Vec::new();
        for slot in slots {
            match slot {
                None => out.push(0),
                Some(inst) => {
                    out.push(1);
                    encode_binding(inst.binding, &mut out);
                    state_buf.clear();
                    if !self.formalism.encode_state(&inst.state, &mut state_buf) {
                        return None;
                    }
                    put_bytes(&mut out, &state_buf);
                    put_u16(&mut out, inst.last_event.0);
                    let flags = u8::from(inst.flagged)
                        | (u8::from(inst.terminated) << 1)
                        | (u8::from(inst.quarantined) << 2);
                    out.push(flags);
                    put_u32(&mut out, inst.refs());
                }
            }
        }
        let free = self.store.snapshot_free();
        put_u64(&mut out, free.len() as u64);
        for &i in free {
            put_u32(&mut out, i);
        }
        let ss = self.store.stats();
        put_u64(&mut out, ss.created);
        put_u64(&mut out, ss.flagged);
        put_u64(&mut out, ss.collected);
        put_u64(&mut out, ss.quarantined);
        put_u64(&mut out, ss.peak_live as u64);
        put_u64(&mut out, self.store.snapshot_state_bytes() as u64);
        // Exact-instance tables, sorted by domain.
        let mut domains: Vec<ParamSet> = self.exact.keys().copied().collect();
        domains.sort_unstable();
        put_u32(&mut out, domains.len() as u32);
        for d in domains {
            put_u32(&mut out, d.0);
            encode_rvmap(&self.exact[&d], &mut out, |&id, out| {
                put_u32(out, id.as_usize() as u32);
            });
        }
        // Indexing trees, sorted by tracked subset.
        let mut domains: Vec<ParamSet> = self.trees.keys().copied().collect();
        domains.sort_unstable();
        put_u32(&mut out, domains.len() as u32);
        for d in domains {
            put_u32(&mut out, d.0);
            encode_rvmap(&self.trees[&d], &mut out, |set: &RvSet, out| {
                put_u64(out, set.members().len() as u64);
                for &id in set.members() {
                    put_u32(out, id.as_usize() as u32);
                }
            });
        }
        // Disable table: seen sorted, prune ring verbatim.
        let mut seen: Vec<Binding> = self.disable.seen.iter().copied().collect();
        seen.sort_unstable();
        put_u64(&mut out, seen.len() as u64);
        for b in seen {
            encode_binding(b, &mut out);
        }
        put_u64(&mut out, self.disable.ring.len() as u64);
        for &b in &self.disable.ring {
            encode_binding(b, &mut out);
        }
        put_u64(&mut out, self.disable.cursor as u64);
        // Raw statistics field (the store-derived columns are recomputed
        // by `stats()`; serializing the raw field keeps round trips exact).
        let s = &self.stats;
        for v in [
            s.events,
            s.monitors_created,
            s.monitors_flagged,
            s.monitors_collected,
            s.peak_live_monitors as u64,
            s.live_monitors as u64,
            s.triggers,
            s.dead_keys,
            s.creations_skipped,
            s.cache_hits,
            s.shed,
            s.quarantined,
            s.budget_trips,
            s.degradations,
        ] {
            put_u64(&mut out, v);
        }
        // Recorded triggers.
        put_u64(&mut out, self.triggers.len() as u64);
        for t in &self.triggers {
            put_u64(&mut out, t.step as u64);
            out.push(t.verdict.to_byte());
            encode_binding(t.binding, &mut out);
        }
        // Degradation state.
        out.push(match self.degradation {
            None => 0,
            Some(DegradationPolicy::ForcedSweep) => 1,
            Some(DegradationPolicy::EagerCollect) => 2,
            Some(DegradationPolicy::ShedNewMonitors) => 3,
        });
        put_u32(&mut out, self.clean_events);
        out.push(u8::from(self.bytes_over));
        Some(out)
    }

    /// Restores a [`Engine::snapshot_bytes`] payload into this engine,
    /// replacing its dynamic state wholesale. The engine must have been
    /// constructed with the same formalism, event definition, goal, and
    /// configuration as the one that took the snapshot (checked via an
    /// embedded fingerprint).
    ///
    /// Restore is *pure*: it does not consult the heap and does not
    /// re-evaluate GC flags, so `snapshot → restore → snapshot` is
    /// byte-identical. Recovery orchestration follows it with
    /// [`Engine::reflag_dead_keys`] (the ALIVENESS re-flagging pass) and
    /// [`Engine::check_invariants`].
    ///
    /// # Errors
    ///
    /// [`EngineError::CorruptSnapshot`] (with `file` as context) on any
    /// malformed, truncated, or fingerprint-mismatched payload; the engine
    /// is left unmodified in that case.
    pub fn restore_snapshot(&mut self, bytes: &[u8], file: &str) -> Result<(), EngineError> {
        self.try_restore(bytes)
            .map_err(|detail| EngineError::CorruptSnapshot { file: file.to_owned(), detail })
    }

    #[allow(clippy::too_many_lines)]
    fn try_restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        use crate::snapshot::Cursor;
        fn need<T>(v: Option<T>, what: &str) -> Result<T, String> {
            v.ok_or_else(|| format!("truncated or malformed {what}"))
        }
        let mut c = Cursor::new(bytes);
        let version = need(c.u8(), "version byte")?;
        if version != ENGINE_SNAPSHOT_VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (expected {ENGINE_SNAPSHOT_VERSION})"
            ));
        }
        let policy = need(c.u8(), "policy byte")?;
        if policy != policy_byte(self.config.policy) {
            return Err(format!(
                "policy mismatch: snapshot has {policy}, engine runs {:?}",
                self.config.policy
            ));
        }
        let n_events = usize::from(need(c.u16(), "alphabet size")?);
        if n_events != self.formalism.alphabet().len() {
            return Err(format!(
                "alphabet mismatch: snapshot has {n_events} events, engine has {}",
                self.formalism.alphabet().len()
            ));
        }
        // Store.
        let nslots = need(c.count(), "slot count")?;
        let mut slots: Vec<Option<Instance<F::State>>> = Vec::with_capacity(nslots);
        for i in 0..nslots {
            match need(c.u8(), "slot presence byte")? {
                0 => slots.push(None),
                1 => {
                    let binding = need(c.binding(), "monitor binding")?;
                    let state_bytes = need(c.bytes(), "monitor state")?;
                    let state = self
                        .formalism
                        .decode_state(state_bytes)
                        .ok_or_else(|| format!("undecodable monitor state in slot {i}"))?;
                    let last_event = need(c.u16(), "last event")?;
                    if usize::from(last_event) >= n_events {
                        return Err(format!("slot {i}: last event {last_event} out of alphabet"));
                    }
                    let flags = need(c.u8(), "flag byte")?;
                    if flags > 0b111 {
                        return Err(format!("slot {i}: unknown flag bits {flags:#x}"));
                    }
                    let refs = need(c.u32(), "reference count")?;
                    slots.push(Some(Instance::from_parts(
                        binding,
                        state,
                        EventId(last_event),
                        flags & 1 != 0,
                        flags & 2 != 0,
                        flags & 4 != 0,
                        refs,
                    )));
                }
                b => return Err(format!("slot {i}: invalid presence byte {b}")),
            }
        }
        let nfree = need(c.count(), "free-list length")?;
        let mut free = Vec::with_capacity(nfree);
        let mut freed = vec![false; nslots];
        for _ in 0..nfree {
            let i = need(c.u32(), "free-list entry")? as usize;
            if i >= nslots || slots[i].is_some() || freed[i] {
                return Err(format!("free-list entry {i} does not name an empty slot"));
            }
            freed[i] = true;
            free.push(i as u32);
        }
        if free.len() != slots.iter().filter(|s| s.is_none()).count() {
            return Err("free list does not cover every empty slot".into());
        }
        let store_stats = crate::store::StoreStats {
            created: need(c.u64(), "created count")?,
            flagged: need(c.u64(), "flagged count")?,
            collected: need(c.u64(), "collected count")?,
            quarantined: need(c.u64(), "quarantined count")?,
            peak_live: need(c.u64(), "peak-live count")? as usize,
        };
        let state_extra = need(c.u64(), "state bytes")? as usize;
        // Exact tables.
        let live_slot = |id: u32| (id as usize) < nslots && slots[id as usize].is_some();
        let nexact = need(c.u32(), "exact-table count")? as usize;
        let mut exact: HashMap<ParamSet, RvMap<MonitorId>> = HashMap::new();
        for _ in 0..nexact {
            let domain = ParamSet(need(c.u32(), "exact-table domain")?);
            let (window, cursor, ring, entries) = decode_rvmap(&mut c, |c| {
                let id = c.u32()?;
                live_slot(id).then(|| MonitorId::from_raw(id))
            })
            .ok_or("malformed exact table")?;
            let mut m = RvMap::new();
            m.restore_parts(window, cursor, ring, entries);
            if exact.insert(domain, m).is_some() {
                return Err(format!("duplicate exact table for domain {domain:?}"));
            }
        }
        // Trees.
        let ntrees = need(c.u32(), "tree count")? as usize;
        if ntrees != self.trees.len() {
            return Err(format!(
                "tree count mismatch: snapshot has {ntrees}, engine tracks {}",
                self.trees.len()
            ));
        }
        let mut trees: HashMap<ParamSet, RvMap<RvSet>> = HashMap::new();
        for _ in 0..ntrees {
            let domain = ParamSet(need(c.u32(), "tree domain")?);
            if !self.trees.contains_key(&domain) {
                return Err(format!("snapshot tree domain {domain:?} is not tracked"));
            }
            let (window, cursor, ring, entries) = decode_rvmap(&mut c, |c| {
                let n = c.count()?;
                let mut set = RvSet::new();
                for _ in 0..n {
                    let id = c.u32()?;
                    if !live_slot(id) {
                        return None;
                    }
                    set.push(MonitorId::from_raw(id));
                }
                Some(set)
            })
            .ok_or("malformed indexing tree")?;
            let mut m = RvMap::new();
            m.restore_parts(window, cursor, ring, entries);
            if trees.insert(domain, m).is_some() {
                return Err(format!("duplicate tree for domain {domain:?}"));
            }
        }
        // Disable table.
        let nseen = need(c.count(), "disable-table size")?;
        let mut seen = HashSet::with_capacity(nseen);
        for _ in 0..nseen {
            if !seen.insert(need(c.binding(), "disable-table binding")?) {
                return Err("duplicate disable-table binding".into());
            }
        }
        let nring = need(c.count(), "disable-ring length")?;
        let mut ring = Vec::with_capacity(nring);
        for _ in 0..nring {
            ring.push(need(c.binding(), "disable-ring binding")?);
        }
        let cursor = need(c.u64(), "disable cursor")? as usize;
        let disable = DisableTable { seen, ring, cursor };
        // Statistics.
        let mut stat = |what| need(c.u64(), what);
        let stats = EngineStats {
            events: stat("events stat")?,
            monitors_created: stat("created stat")?,
            monitors_flagged: stat("flagged stat")?,
            monitors_collected: stat("collected stat")?,
            peak_live_monitors: stat("peak-live stat")? as usize,
            live_monitors: stat("live stat")? as usize,
            triggers: stat("triggers stat")?,
            dead_keys: stat("dead-keys stat")?,
            creations_skipped: stat("skipped stat")?,
            cache_hits: stat("cache stat")?,
            shed: stat("shed stat")?,
            quarantined: stat("quarantined stat")?,
            budget_trips: stat("budget stat")?,
            degradations: stat("degradations stat")?,
        };
        // Recorded triggers.
        let ntriggers = need(c.count(), "trigger count")?;
        let mut triggers = Vec::with_capacity(ntriggers);
        for _ in 0..ntriggers {
            let step = need(c.u64(), "trigger step")? as usize;
            let verdict = Verdict::from_byte(need(c.u8(), "trigger verdict")?)
                .ok_or("invalid trigger verdict byte")?;
            let binding = need(c.binding(), "trigger binding")?;
            triggers.push(Trigger { step, binding, verdict });
        }
        // Degradation state.
        let degradation = match need(c.u8(), "degradation rung")? {
            0 => None,
            1 => Some(DegradationPolicy::ForcedSweep),
            2 => Some(DegradationPolicy::EagerCollect),
            3 => Some(DegradationPolicy::ShedNewMonitors),
            b => return Err(format!("invalid degradation rung {b}")),
        };
        let clean_events = need(c.u32(), "clean-event count")?;
        let bytes_over = match need(c.u8(), "bytes-over flag")? {
            0 => false,
            1 => true,
            b => return Err(format!("invalid bytes-over flag {b}")),
        };
        if !c.finished() {
            return Err("trailing bytes after snapshot payload".into());
        }
        // Commit: nothing above touched `self`, so a failed decode leaves
        // the engine untouched.
        self.store.restore_parts(slots, free, store_stats, state_extra);
        self.exact = exact;
        self.trees = trees;
        self.disable = disable;
        self.stats = stats;
        self.triggers = triggers;
        self.scratch_ids.clear();
        self.cache = LookupCache::default();
        self.event_work = 0;
        self.degradation = degradation;
        self.clean_events = clean_events;
        self.bytes_over = bytes_over;
        Ok(())
    }

    /// Re-evaluates the GC flag of every live monitor against the current
    /// heap through the regular ALIVENESS path — the post-restore pass
    /// that re-discovers dead keys the snapshot stored as plain object
    /// ids. Returns how many monitors were newly flagged. Sound for the
    /// same reason lazy flagging is (Theorem 2): flags only say "no goal
    /// reachable", and dead objects stay dead.
    pub fn reflag_dead_keys(&mut self, heap: &Heap) -> u64 {
        let cause = flag_cause(self.config.policy, &self.aliveness);
        let mut candidates: Vec<MonitorId> = Vec::new();
        for (id, inst) in self.store.iter() {
            if inst.flagged {
                continue;
            }
            let dead = inst.binding.dead_params(heap);
            if dead.is_empty() {
                continue;
            }
            if should_flag(
                self.config.policy,
                &self.aliveness,
                inst.binding.domain(),
                inst.last_event,
                dead,
            ) {
                candidates.push(id);
            }
        }
        let mut newly = 0u64;
        for id in candidates {
            let (binding, last_event) = {
                let inst = self.store.get(id);
                (inst.binding, inst.last_event)
            };
            if self.store.flag(id) {
                newly += 1;
                let dead = binding.dead_params(heap);
                self.observer.monitor_flagged(id, &binding, last_event, dead, cause);
            }
        }
        newly
    }
}

/// Version byte of the engine snapshot payload (bumped on any layout
/// change; see DESIGN.md §10 for the version history).
pub(crate) const ENGINE_SNAPSHOT_VERSION: u8 = 1;

/// The stable one-byte encoding of a [`GcPolicy`] used in snapshot
/// fingerprints.
fn policy_byte(policy: GcPolicy) -> u8 {
    match policy {
        GcPolicy::None => 0,
        GcPolicy::AllParamsDead => 1,
        GcPolicy::CoenableLazy => 2,
    }
}

/// Serializes one weak map: expunge schedule verbatim (window, cursor,
/// ring), then the live entries sorted by binding for a canonical byte
/// stream.
fn encode_rvmap<V>(map: &RvMap<V>, out: &mut Vec<u8>, mut enc_value: impl FnMut(&V, &mut Vec<u8>)) {
    use crate::journal::encode_binding;
    use crate::snapshot::put_u64;
    let (window, cursor, ring) = map.snapshot_schedule();
    put_u64(out, window as u64);
    put_u64(out, cursor as u64);
    put_u64(out, ring.len() as u64);
    for &b in ring {
        encode_binding(b, out);
    }
    let mut entries: Vec<(&Binding, &V)> = map.snapshot_entries().iter().collect();
    entries.sort_unstable_by_key(|(b, _)| **b);
    put_u64(out, entries.len() as u64);
    for (b, v) in entries {
        encode_binding(*b, out);
        enc_value(v, out);
    }
}

/// Decodes [`encode_rvmap`]; `None` on malformed bytes.
#[allow(clippy::type_complexity)]
fn decode_rvmap<V>(
    c: &mut crate::snapshot::Cursor<'_>,
    mut dec_value: impl FnMut(&mut crate::snapshot::Cursor<'_>) -> Option<V>,
) -> Option<(usize, usize, Vec<Binding>, Vec<(Binding, V)>)> {
    let window = usize::try_from(c.u64()?).ok()?;
    let cursor = usize::try_from(c.u64()?).ok()?;
    let nring = c.count()?;
    let mut ring = Vec::with_capacity(nring);
    for _ in 0..nring {
        ring.push(c.binding()?);
    }
    let nentries = c.count()?;
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        let b = c.binding()?;
        let v = dec_value(c)?;
        entries.push((b, v));
    }
    Some((window, cursor, ring, entries))
}

/// Nanoseconds since `t`, saturating.
fn elapsed_nanos(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Which [`FlagCause`] the active policy reports when it flags.
fn flag_cause(policy: GcPolicy, aliveness: &Option<Aliveness>) -> FlagCause {
    match policy {
        GcPolicy::CoenableLazy if aliveness.is_some() => FlagCause::Aliveness,
        _ => FlagCause::AllParamsDead,
    }
}

/// Shared flagging rule.
fn should_flag(
    policy: GcPolicy,
    aliveness: &Option<Aliveness>,
    domain: ParamSet,
    last_event: EventId,
    dead: ParamSet,
) -> bool {
    match policy {
        GcPolicy::None => false,
        GcPolicy::AllParamsDead => !domain.is_empty() && dead == domain,
        GcPolicy::CoenableLazy => match aliveness {
            Some(a) => !a.is_necessary(last_event, dead),
            None => !domain.is_empty() && dead == domain,
        },
    }
}

/// Tree maintenance: notification of monitors under dead keys (Figure 7)
/// plus Figure 8 set compaction for live keys.
struct NotifySink<'a, S, O: EngineObserver> {
    store: &'a mut MonitorStore<S>,
    aliveness: &'a Option<Aliveness>,
    policy: GcPolicy,
    heap: &'a Heap,
    stats: &'a mut EngineStats,
    observer: &'a mut O,
}

impl<'a, S, O: EngineObserver> NotifySink<'a, S, O> {
    fn new(
        store: &'a mut MonitorStore<S>,
        aliveness: &'a Option<Aliveness>,
        policy: GcPolicy,
        heap: &'a Heap,
        stats: &'a mut EngineStats,
        observer: &'a mut O,
    ) -> Self {
        NotifySink { store, aliveness, policy, heap, stats, observer }
    }
}

impl<S, O: EngineObserver> Maintainer<RvSet> for NotifySink<'_, S, O> {
    /// Figure 7 (A): the key died; notify all monitors below, then drop the
    /// subtree (B).
    fn on_dead(&mut self, key: Binding, mut set: RvSet) {
        self.stats.dead_keys += 1;
        self.observer.dead_key_discovered(&key);
        let t = if O::ENABLED { Some(Instant::now()) } else { None };
        for &id in set.members() {
            if !self.store.contains(id) {
                continue;
            }
            let instance = self.store.get(id);
            if instance.flagged || instance.terminated {
                continue;
            }
            let binding = instance.binding;
            let last_event = instance.last_event;
            let dead = binding.dead_params(self.heap);
            if should_flag(self.policy, self.aliveness, binding.domain(), last_event, dead)
                && self.store.flag(id)
            {
                self.observer.monitor_flagged(
                    id,
                    &binding,
                    last_event,
                    dead,
                    flag_cause(self.policy, self.aliveness),
                );
            }
        }
        if let Some(t) = t {
            self.observer.phase_timed(Phase::Aliveness, elapsed_nanos(t));
        }
        set.release_all(self.store);
    }

    /// §5.1.1: live-keyed sets are compacted in passing; empty sets are
    /// unlinked.
    fn on_live(&mut self, _key: &Binding, set: &mut RvSet) -> bool {
        set.compact(self.store);
        set.is_empty()
    }
}

/// Exact-table maintenance: "if the value is a flagged monitor instance
/// ... it removes the mapping" (§5.1.1).
struct ExactMaintainer<'a, S, O: EngineObserver> {
    store: &'a mut MonitorStore<S>,
    aliveness: &'a Option<Aliveness>,
    policy: GcPolicy,
    heap: &'a Heap,
    observer: &'a mut O,
}

impl<S, O: EngineObserver> Maintainer<MonitorId> for ExactMaintainer<'_, S, O> {
    fn on_dead(&mut self, _key: Binding, id: MonitorId) {
        if !self.store.contains(id) {
            return;
        }
        let instance = self.store.get(id);
        if !instance.flagged && !instance.terminated {
            let binding = instance.binding;
            let last_event = instance.last_event;
            let dead = binding.dead_params(self.heap);
            if should_flag(self.policy, self.aliveness, binding.domain(), last_event, dead)
                && self.store.flag(id)
            {
                self.observer.monitor_flagged(
                    id,
                    &binding,
                    last_event,
                    dead,
                    flag_cause(self.policy, self.aliveness),
                );
            }
        }
        self.store.release(id);
    }

    fn on_live(&mut self, _key: &Binding, id: &mut MonitorId) -> bool {
        if self.store.is_collectable(*id) {
            self.store.release(*id);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_heap::{HeapConfig, ObjId};
    use rv_logic::ere::unsafe_iter_ere;
    use rv_logic::fsm::has_next_fsm;
    use rv_logic::{Alphabet, ParamId};

    const C: ParamId = ParamId(0);
    const I: ParamId = ParamId(1);

    fn unsafe_iter_parts() -> (Alphabet, rv_logic::dfa::Dfa, EventDef) {
        let alphabet = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
        let def = EventDef::new(
            &alphabet,
            &["c", "i"],
            vec![ParamSet::singleton(C).with(I), ParamSet::singleton(C), ParamSet::singleton(I)],
        );
        (alphabet, dfa, def)
    }

    fn engine_with(policy: GcPolicy) -> (Engine<rv_logic::dfa::Dfa>, Alphabet) {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
        (Engine::new(dfa, def, GoalSet::MATCH, config), alphabet)
    }

    fn alloc_n(heap: &mut Heap, n: usize) -> Vec<ObjId> {
        let cls = heap.register_class("Obj");
        let f = heap.enter_frame();
        let v = (0..n).map(|_| heap.alloc(cls)).collect();
        let _keep_rooted = f; // never exited: objects stay rooted
        v
    }

    #[test]
    fn try_process_rejects_malformed_events_without_state_changes() {
        let (mut engine, _alphabet) = engine_with(GcPolicy::CoenableLazy);
        let heap = Heap::new(HeapConfig::manual());
        let err = engine.try_process(&heap, EventId(99), Binding::BOTTOM).unwrap_err();
        assert_eq!(err, EngineError::EventOutOfAlphabet(EventId(99)));
        // `create` needs ⟨c, i⟩; an empty binding is not D-consistent.
        let err = engine.try_process(&heap, EventId(0), Binding::BOTTOM).unwrap_err();
        assert!(matches!(err, EngineError::InconsistentEvent { .. }), "{err}");
        assert_eq!(engine.stats().events, 0, "rejected input must leave no trace");
        engine.check_invariants(&heap).unwrap();
    }

    /// Regression: `process` used to `panic!("engine: {e}")` on a malformed
    /// event, which would abort the monitored program — or, sharded, poison
    /// a whole worker thread. The typed error must surface via
    /// [`Engine::last_error`] instead, and the engine must stay usable.
    #[test]
    fn process_surfaces_errors_instead_of_panicking() {
        let (mut engine, alphabet) = engine_with(GcPolicy::CoenableLazy);
        let mut heap = Heap::new(HeapConfig::manual());
        engine.process(&heap, EventId(99), Binding::BOTTOM);
        assert_eq!(engine.stats().events, 0, "rejected input must leave no trace");
        assert_eq!(engine.last_error(), Some(&EngineError::EventOutOfAlphabet(EventId(99))));
        // `create` needs ⟨c, i⟩; an empty binding is not D-consistent. The
        // sticky slot keeps the most recent error.
        engine.process(&heap, EventId(0), Binding::BOTTOM);
        assert!(
            matches!(engine.last_error(), Some(EngineError::InconsistentEvent { .. })),
            "{:?}",
            engine.last_error()
        );
        assert!(matches!(engine.take_last_error(), Some(EngineError::InconsistentEvent { .. })));
        assert_eq!(engine.last_error(), None, "take_last_error clears the slot");
        // The engine is still fully usable after swallowing errors.
        let objs = alloc_n(&mut heap, 2);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, objs[0]), (I, objs[1])]));
        assert_eq!(engine.stats().events, 1);
        assert_eq!(engine.last_error(), None, "valid events do not set the slot");
        engine.check_invariants(&heap).unwrap();
    }

    #[test]
    fn live_monitor_budget_is_a_hard_cap_with_the_full_ladder() {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig { max_live_monitors: Some(8), ..EngineConfig::default() };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        // Long-lived collections and iterators: nothing dies, so only the
        // degradation ladder can bound the monitor population.
        let objs = alloc_n(&mut heap, 128);
        for pair in objs.chunks(2) {
            let b = Binding::from_pairs(&[(C, pair[0]), (I, pair[1])]);
            engine.process(&heap, ev("create"), b);
        }
        let stats = engine.stats();
        assert!(stats.peak_live_monitors <= 8, "{stats}");
        assert!(stats.shed > 0, "{stats}");
        assert!(stats.budget_trips > 0, "{stats}");
        assert!(stats.degradations >= 1, "{stats}");
        assert_eq!(engine.degradation_level(), Some(DegradationPolicy::ShedNewMonitors));
        engine.check_invariants(&heap).unwrap();
    }

    #[test]
    fn degradation_recovers_after_pressure_free_events() {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig { max_live_monitors: Some(2), ..EngineConfig::default() };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        {
            let inner = heap.enter_frame();
            for _ in 0..4 {
                let iter = heap.alloc(cls);
                engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
            }
            heap.exit_frame(inner);
        }
        assert!(engine.degradation_level().is_some(), "{}", engine.stats());
        assert!(engine.stats().shed >= 1, "{}", engine.stats());
        // The iterators die; pressure clears; the engine steps back down.
        heap.collect();
        for _ in 0..2 * DEGRADATION_COOLDOWN {
            engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, coll)]));
        }
        assert_eq!(engine.degradation_level(), None, "{}", engine.stats());
        engine.check_invariants(&heap).unwrap();
    }

    #[test]
    fn work_budget_escalates_one_rung_per_violation() {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig { max_work_per_event: Some(0), ..EngineConfig::default() };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 2);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])]));
        // First violation: enters ForcedSweep, escalates once.
        assert_eq!(engine.degradation_level(), Some(DegradationPolicy::EagerCollect));
        engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        assert_eq!(engine.degradation_level(), Some(DegradationPolicy::ShedNewMonitors));
        let stats = engine.stats();
        assert_eq!(stats.budget_trips, 2, "{stats}");
        assert_eq!(stats.degradations, 3, "{stats}");
        engine.check_invariants(&heap).unwrap();
    }

    #[test]
    fn degradation_never_escalates_past_the_configured_ceiling() {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig {
            max_live_monitors: Some(2),
            degradation: DegradationPolicy::ForcedSweep,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let objs = alloc_n(&mut heap, 12);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        for pair in objs.chunks(2) {
            let b = Binding::from_pairs(&[(C, pair[0]), (I, pair[1])]);
            engine.process(&heap, ev("create"), b);
        }
        let stats = engine.stats();
        // Sweeping is allowed but shedding is not: the population may
        // exceed the budget, and nothing is ever shed.
        assert_eq!(engine.degradation_level(), Some(DegradationPolicy::ForcedSweep));
        assert_eq!(stats.shed, 0, "{stats}");
        assert!(stats.live_monitors > 2, "{stats}");
        assert!(stats.budget_trips > 0, "{stats}");
        engine.check_invariants(&heap).unwrap();
    }

    #[test]
    fn panicking_handler_quarantines_only_its_monitor() {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        engine.set_trigger_handler(|_, _, _| panic!("handler bug"));
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 4);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        // Silence the default hook while the deliberate panics fire.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Two independent violating slices: the first handler panic must
        // not stop the second violation from being detected.
        for (c, i) in [(o[0], o[1]), (o[2], o[3])] {
            engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, c), (I, i)]));
            engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, c)]));
            engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, i)]));
        }
        std::panic::set_hook(prev);
        let stats = engine.stats();
        assert_eq!(stats.triggers, 2, "{stats}");
        assert_eq!(stats.quarantined, 2, "{stats}");
        assert_eq!(engine.triggers().len(), 2);
        engine.check_invariants(&heap).unwrap();
    }

    #[test]
    fn non_panicking_handler_sees_every_trigger() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut engine, alphabet) = engine_with(GcPolicy::CoenableLazy);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        engine.set_trigger_handler(move |step, _, verdict| sink.borrow_mut().push((step, verdict)));
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 2);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])]));
        engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(seen.borrow().len(), 1);
        assert_eq!(engine.stats().quarantined, 0);
    }

    #[test]
    fn detects_unsafe_iteration_and_matches_the_oracle() {
        let (mut engine, alphabet) = engine_with(GcPolicy::None);
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 4);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        let trace = vec![
            (ev("update"), Binding::from_pairs(&[(C, o[0])])),
            (ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[2])])),
            (ev("next"), Binding::from_pairs(&[(I, o[2])])),
            (ev("update"), Binding::from_pairs(&[(C, o[0])])),
            (ev("next"), Binding::from_pairs(&[(I, o[2])])),
        ];
        for &(e, b) in &trace {
            engine.process(&heap, e, b);
        }
        let oracle = crate::reference::monitor_trace(engine.formalism(), GoalSet::MATCH, &trace);
        assert_eq!(engine.triggers(), &oracle.triggers[..]);
        assert_eq!(engine.stats().triggers, 1);
    }

    #[test]
    fn enable_sets_suppress_useless_monitors() {
        // Bare `next` events (no create) must not create monitors — this
        // is why Fig. 10 shows sunflow with 1.3M events but 2 monitors.
        let (mut engine, alphabet) = engine_with(GcPolicy::CoenableLazy);
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 3);
        let next = alphabet.lookup("next").unwrap();
        for _ in 0..100 {
            engine.process(&heap, next, Binding::from_pairs(&[(I, o[1])]));
        }
        assert_eq!(engine.stats().monitors_created, 0);
        assert!(engine.stats().creations_skipped > 0);
    }

    #[test]
    fn update_events_create_collection_monitors() {
        let (mut engine, alphabet) = engine_with(GcPolicy::CoenableLazy);
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 2);
        let update = alphabet.lookup("update").unwrap();
        engine.process(&heap, update, Binding::from_pairs(&[(C, o[0])]));
        engine.process(&heap, update, Binding::from_pairs(&[(C, o[0])]));
        engine.process(&heap, update, Binding::from_pairs(&[(C, o[1])]));
        assert_eq!(engine.stats().monitors_created, 2, "one per collection");
    }

    #[test]
    fn create_inherits_the_update_history() {
        // update⟨c⟩ then create⟨c,i⟩ then next: the combined slice is
        // "update create next" — still `?`; a second update+next matches.
        let (mut engine, alphabet) = engine_with(GcPolicy::None);
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 2);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])]));
        engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(engine.stats().triggers, 0);
        engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, o[0])]));
        engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, o[1])]));
        assert_eq!(engine.stats().triggers, 1);
    }

    #[test]
    fn coenable_gc_flags_monitors_for_dead_iterators() {
        // The paper's headline scenario: the Collection outlives its
        // Iterators; the coenable policy flags their monitors, the
        // JavaMOP policy cannot.
        for (policy, expect_flagged) in
            [(GcPolicy::CoenableLazy, true), (GcPolicy::AllParamsDead, false)]
        {
            let (alphabet, dfa, def) = unsafe_iter_parts();
            let config = EngineConfig { policy, record_triggers: false, ..EngineConfig::default() };
            let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
            let mut heap = Heap::new(HeapConfig::manual());
            let cls = heap.register_class("Obj");
            let _outer = heap.enter_frame();
            let coll = heap.alloc(cls);
            let ev = |n: &str| alphabet.lookup(n).unwrap();
            for _ in 0..50 {
                let inner = heap.enter_frame();
                let iter = heap.alloc(cls);
                heap.add_edge(iter, coll);
                engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
                engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, iter)]));
                heap.exit_frame(inner);
            }
            heap.collect();
            // Touch the structures so lazy expunging runs to completion.
            engine.full_sweep(&heap);
            let stats = engine.stats();
            assert!(stats.monitors_created >= 50, "{policy:?}: {stats}");
            if expect_flagged {
                assert!(
                    stats.monitors_flagged >= 50,
                    "{policy:?} should flag dead-iterator monitors: {stats}"
                );
                assert!(stats.monitors_collected >= 50, "{policy:?}: {stats}");
            } else {
                assert_eq!(
                    stats.monitors_flagged, 0,
                    "{policy:?} cannot flag while the collection lives: {stats}"
                );
            }
        }
    }

    #[test]
    fn all_params_dead_flags_when_everything_dies() {
        let (alphabet, dfa, def) = unsafe_iter_parts();
        let config = EngineConfig { policy: GcPolicy::AllParamsDead, ..EngineConfig::default() };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let iter = heap.alloc(cls);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
        heap.exit_frame(outer);
        heap.collect();
        engine.full_sweep(&heap);
        let stats = engine.stats();
        assert!(stats.monitors_flagged >= 1, "{stats}");
    }

    #[test]
    fn gc_does_not_lose_triggers_when_objects_stay_alive() {
        // Same trace under all three policies with interleaved heap
        // collections (which reclaim nothing): identical triggers.
        let mut expected: Option<Vec<Trigger>> = None;
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            let (mut engine, alphabet) = engine_with(policy);
            let mut heap = Heap::new(HeapConfig::manual());
            let o = alloc_n(&mut heap, 4);
            let ev = |n: &str| alphabet.lookup(n).unwrap();
            let trace = vec![
                (ev("create"), Binding::from_pairs(&[(C, o[0]), (I, o[1])])),
                (ev("create"), Binding::from_pairs(&[(C, o[2]), (I, o[3])])),
                (ev("update"), Binding::from_pairs(&[(C, o[0])])),
                (ev("next"), Binding::from_pairs(&[(I, o[1])])),
                (ev("next"), Binding::from_pairs(&[(I, o[3])])),
                (ev("update"), Binding::from_pairs(&[(C, o[2])])),
                (ev("next"), Binding::from_pairs(&[(I, o[3])])),
            ];
            for &(e, b) in &trace {
                heap.collect();
                engine.process(&heap, e, b);
            }
            let triggers = engine.triggers().to_vec();
            match &expected {
                None => expected = Some(triggers),
                Some(exp) => assert_eq!(&triggers, exp, "{policy:?}"),
            }
        }
        assert_eq!(expected.unwrap().len(), 2);
    }

    #[test]
    fn terminated_monitors_stop_reporting() {
        // HasNext FSM: the error state is terminal for goal {match}; a
        // monitor that reported once is retired, not re-fired.
        let (alphabet, spec) = has_next_fsm();
        let dfa = spec.compile(&alphabet).unwrap();
        let def = EventDef::new(
            &alphabet,
            &["i"],
            vec![ParamSet::singleton(C), ParamSet::singleton(C), ParamSet::singleton(C)],
        );
        let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
        let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let o = alloc_n(&mut heap, 1);
        let next = alphabet.lookup("next").unwrap();
        engine.process(&heap, next, Binding::from_pairs(&[(C, o[0])]));
        assert_eq!(engine.stats().triggers, 1);
        engine.process(&heap, next, Binding::from_pairs(&[(C, o[0])]));
        engine.process(&heap, next, Binding::from_pairs(&[(C, o[0])]));
        assert_eq!(engine.stats().triggers, 1, "terminated monitor must not re-fire");
    }

    #[test]
    fn collected_monitors_do_not_receive_further_events() {
        let (mut engine, alphabet) = engine_with(GcPolicy::CoenableLazy);
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        {
            let inner = heap.enter_frame();
            let iter = heap.alloc(cls);
            engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
            heap.exit_frame(inner);
        }
        heap.collect();
        engine.full_sweep(&heap);
        let flagged_before = engine.stats().monitors_flagged;
        assert!(flagged_before >= 1);
        // Updates to the surviving collection must not resurrect it.
        for _ in 0..10 {
            engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, coll)]));
        }
        assert_eq!(engine.stats().triggers, 0);
    }

    #[test]
    fn estimated_bytes_shrink_after_collection() {
        let (mut engine, alphabet) = engine_with(GcPolicy::CoenableLazy);
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        let inner = heap.enter_frame();
        let mut iters = Vec::new();
        for _ in 0..500 {
            let iter = heap.alloc(cls);
            iters.push(iter);
            engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
        }
        let live_full = engine.stats().live_monitors;
        heap.exit_frame(inner);
        heap.collect();
        engine.full_sweep(&heap);
        assert!(engine.stats().live_monitors < live_full / 2);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use rv_heap::HeapConfig;
    use rv_logic::ere::unsafe_iter_ere;
    use rv_logic::{Alphabet, ParamId};

    const C: ParamId = ParamId(0);
    const I: ParamId = ParamId(1);

    fn parts() -> (Alphabet, rv_logic::dfa::Dfa, EventDef) {
        let alphabet = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
        let def = EventDef::new(
            &alphabet,
            &["c", "i"],
            vec![ParamSet::singleton(C).with(I), ParamSet::singleton(C), ParamSet::singleton(I)],
        );
        (alphabet, dfa, def)
    }

    /// The cache must be invisible: identical triggers and statistics
    /// (except the hit counter) with it on and off, across a workload with
    /// creations, violations, and deaths interleaved.
    #[test]
    fn lookup_cache_is_semantically_invisible() {
        let run = |cache: bool| {
            let (alphabet, dfa, def) = parts();
            let config = EngineConfig {
                record_triggers: true,
                lookup_cache: cache,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(dfa, def, GoalSet::MATCH, config);
            let mut heap = Heap::new(HeapConfig::auto(128));
            let cls = heap.register_class("Obj");
            let _outer = heap.enter_frame();
            let ev = |n: &str| alphabet.lookup(n).unwrap();
            for round in 0..20 {
                let coll = heap.alloc(cls);
                heap.pin(coll);
                for k in 0..10 {
                    let inner = heap.enter_frame();
                    let iter = heap.alloc(cls);
                    heap.add_edge(iter, coll);
                    engine.process(
                        &heap,
                        ev("create"),
                        Binding::from_pairs(&[(C, coll), (I, iter)]),
                    );
                    // A hot next-loop: the cache's target pattern.
                    for _ in 0..8 {
                        engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, iter)]));
                    }
                    if k % 3 == 0 {
                        engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, coll)]));
                        engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, iter)]));
                    }
                    heap.exit_frame(inner);
                }
                if round % 4 == 3 {
                    heap.collect();
                }
            }
            (engine.triggers().to_vec(), engine.stats())
        };
        let (triggers_on, stats_on) = run(true);
        let (triggers_off, stats_off) = run(false);
        assert_eq!(triggers_on, triggers_off);
        assert_eq!(stats_on.monitors_created, stats_off.monitors_created);
        assert_eq!(stats_on.triggers, stats_off.triggers);
        assert!(stats_on.cache_hits > 0, "the next-loop should hit the cache");
        assert_eq!(stats_off.cache_hits, 0);
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use rv_heap::{Heap, HeapConfig, ObjId};
    use rv_logic::ere::unsafe_iter_ere;
    use rv_logic::{Alphabet, ParamId};

    const C: ParamId = ParamId(0);
    const I: ParamId = ParamId(1);

    fn unsafe_iter_engine(policy: GcPolicy) -> (Engine<rv_logic::dfa::Dfa>, Alphabet) {
        let alphabet = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
        let def = EventDef::new(
            &alphabet,
            &["c", "i"],
            vec![ParamSet::singleton(C).with(I), ParamSet::singleton(C), ParamSet::singleton(I)],
        );
        let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
        (Engine::new(dfa, def, GoalSet::MATCH, config), alphabet)
    }

    /// Runs some events, including a mid-trace collection that leaves
    /// dead keys pending lazy expunging.
    fn mid_run_engine(
        policy: GcPolicy,
    ) -> (Engine<rv_logic::dfa::Dfa>, Alphabet, Heap, ObjId, ObjId) {
        let (mut engine, alphabet) = unsafe_iter_engine(policy);
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let iter = heap.alloc(cls);
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, iter)]));
        engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, coll)]));
        for _ in 0..4 {
            let inner = heap.enter_frame();
            let dying = heap.alloc(cls);
            engine.process(&heap, ev("create"), Binding::from_pairs(&[(C, coll), (I, dying)]));
            heap.exit_frame(inner);
        }
        engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, iter)]));
        // Collect *after* the last event: the dead keys are still pending
        // lazy expunging when the snapshot is taken.
        heap.collect();
        (engine, alphabet, heap, coll, iter)
    }

    #[test]
    fn snapshot_restore_snapshot_is_byte_identical() {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            let (engine, _, _heap, _, _) = mid_run_engine(policy);
            let bytes = engine.snapshot_bytes().expect("DFA states are encodable");
            let (mut fresh, _) = unsafe_iter_engine(policy);
            fresh.restore_snapshot(&bytes, "mem").unwrap();
            let again = fresh.snapshot_bytes().unwrap();
            assert_eq!(bytes, again, "{policy:?}: restore must be pure and exact");
        }
    }

    #[test]
    fn restored_engine_continues_identically() {
        let (mut original, alphabet, heap, coll, iter) = mid_run_engine(GcPolicy::CoenableLazy);
        let bytes = original.snapshot_bytes().unwrap();
        let (mut restored, _) = unsafe_iter_engine(GcPolicy::CoenableLazy);
        restored.restore_snapshot(&bytes, "mem").unwrap();
        let ev = |n: &str| alphabet.lookup(n).unwrap();
        // Same suffix against both engines on the same heap.
        for engine in [&mut original, &mut restored] {
            engine.process(&heap, ev("update"), Binding::from_pairs(&[(C, coll)]));
            engine.process(&heap, ev("next"), Binding::from_pairs(&[(I, iter)]));
            engine.full_sweep(&heap);
        }
        assert_eq!(original.stats(), restored.stats());
        assert_eq!(original.triggers(), restored.triggers());
        assert_eq!(original.snapshot_bytes().unwrap(), restored.snapshot_bytes().unwrap());
        restored.check_invariants(&heap).unwrap();
    }

    #[test]
    fn reflag_after_restore_matches_the_aliveness_path() {
        // CoenableLazy: the dying iterators' monitors sit at `create`, and the
        // dead iterator parameter makes the match goal unreachable, so the
        // ALIVENESS path must re-flag them after a pure restore.
        let (engine, _, heap, _, _) = mid_run_engine(GcPolicy::CoenableLazy);
        let bytes = engine.snapshot_bytes().unwrap();
        let (mut restored, _) = unsafe_iter_engine(GcPolicy::CoenableLazy);
        restored.restore_snapshot(&bytes, "mem").unwrap();
        let newly = restored.reflag_dead_keys(&heap);
        assert!(newly >= 1, "the dying iterators' monitors must be re-flagged");
        restored.check_invariants(&heap).unwrap();
        // Idempotent.
        assert_eq!(restored.reflag_dead_keys(&heap), 0);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_without_modifying_the_engine() {
        let (engine, _, _heap, _, _) = mid_run_engine(GcPolicy::CoenableLazy);
        let bytes = engine.snapshot_bytes().unwrap();
        let (mut fresh, _) = unsafe_iter_engine(GcPolicy::CoenableLazy);
        let virgin = fresh.snapshot_bytes().unwrap();
        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                fresh.restore_snapshot(&bytes[..cut], "cut").is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        let err = fresh.restore_snapshot(&padded, "padded").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // Policy fingerprint mismatch.
        let (mut wrong, _) = unsafe_iter_engine(GcPolicy::None);
        let err = wrong.restore_snapshot(&bytes, "policy").unwrap_err();
        assert!(err.to_string().contains("policy mismatch"), "{err}");
        // Failed restores must leave the engine untouched.
        assert_eq!(fresh.snapshot_bytes().unwrap(), virgin);
    }

    #[test]
    fn restore_rejects_dangling_monitor_references() {
        let (engine, _, _heap, _, _) = mid_run_engine(GcPolicy::CoenableLazy);
        let bytes = engine.snapshot_bytes().unwrap();
        // Flip bytes one at a time across the payload; every outcome must
        // be a clean Ok (benign field) or Err (caught corruption) — no
        // panics, no invariant-violating accepts.
        let (mut fresh, _) = unsafe_iter_engine(GcPolicy::CoenableLazy);
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            let _ = fresh.restore_snapshot(&mutated, "flip");
        }
    }
}
