//! Checkpoint files and recovery planning.
//!
//! A checkpoint is one file (`checkpoint-00000000`, `checkpoint-00000001`,
//! …) containing a full serialized engine state ([`Engine::snapshot_bytes`]
//! or [`PropertyMonitor::snapshot_bytes`]) together with the journal
//! sequence number it covers:
//!
//! ```text
//! [magic "RVCK"] [version: u8] [generation: u64 LE] [seq: u64 LE]
//! [payload_len: u64 LE] [payload] [crc32: u32 LE]
//! ```
//!
//! The CRC covers everything between the magic and itself. Checkpoints are
//! written to a temp file and renamed into place, so a crash mid-write
//! leaves the previous generation intact; a checkpoint that fails
//! validation is *skipped* (recovery falls back to an older generation, or
//! to a full journal replay) rather than fatal — the journal, not the
//! checkpoint, is the source of truth.
//!
//! [`plan_recovery`] combines a [`read_journal`] scan with the checkpoint
//! directory listing and picks the newest usable checkpoint whose covered
//! sequence does not exceed the durable journal prefix (a checkpoint that
//! "knows more" than the journal is unusable: the heap history needed to
//! replay past it was lost with the torn tail).
//!
//! [`Engine::snapshot_bytes`]: crate::Engine::snapshot_bytes
//! [`PropertyMonitor::snapshot_bytes`]: crate::PropertyMonitor::snapshot_bytes

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::EngineError;
use crate::journal::{crc32, read_journal, JournalScan};

/// Checkpoint file magic: the first four bytes.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"RVCK";

/// On-disk checkpoint container version.
pub const CHECKPOINT_VERSION: u8 = 1;

// --- Little-endian wire helpers ------------------------------------------
//
// Shared by the checkpoint container and the engine snapshot encoders
// (engine.rs / multi.rs). Hand-rolled like the rest of the workspace: the
// build stays serde-free.

/// Appends a `u16` in little-endian order.
pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader over snapshot bytes. Every
/// accessor returns `None` past the end; decoders bubble that up as a
/// corrupt-snapshot detail instead of panicking.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        let raw: [u8; 2] = self.bytes.get(self.pos..self.pos + 2)?.try_into().ok()?;
        self.pos += 2;
        Some(u16::from_le_bytes(raw))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let raw: [u8; 4] = self.bytes.get(self.pos..self.pos + 4)?.try_into().ok()?;
        self.pos += 4;
        Some(u32::from_le_bytes(raw))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let raw: [u8; 8] = self.bytes.get(self.pos..self.pos + 8)?.try_into().ok()?;
        self.pos += 8;
        Some(u64::from_le_bytes(raw))
    }

    /// Reads a length to be used as an element count, rejecting counts
    /// that could not possibly fit in the remaining bytes (corrupt length
    /// fields must not drive allocations).
    pub(crate) fn count(&mut self) -> Option<usize> {
        let n = self.u64()?;
        let n = usize::try_from(n).ok()?;
        (n <= self.bytes.len().saturating_sub(self.pos).saturating_add(1)).then_some(n)
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    /// Reads a length-prefixed byte string written by [`put_bytes`].
    pub(crate) fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.count()?;
        self.take(n)
    }

    /// Reads a binding written by `journal::encode_binding`.
    pub(crate) fn binding(&mut self) -> Option<crate::binding::Binding> {
        crate::journal::decode_binding(self.bytes, &mut self.pos)
    }

    /// Whether every byte was consumed (trailing garbage is corruption).
    pub(crate) fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// --- Checkpoint container ------------------------------------------------

/// A validated checkpoint loaded from disk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// The checkpoint generation (monotone per run).
    pub generation: u64,
    /// The journal sequence the payload covers (exclusive): every journal
    /// record with `seq <` this is reflected in the payload.
    pub seq: u64,
    /// The serialized engine state.
    pub payload: Vec<u8>,
    /// The file the checkpoint was loaded from.
    pub file: String,
}

/// The canonical file name for checkpoint `generation` under `dir`.
#[must_use]
pub fn checkpoint_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("checkpoint-{generation:08}"))
}

/// Durably writes checkpoint `generation` covering journal sequence `seq`
/// (exclusive). The file is written and fsynced under a temporary name,
/// then renamed into place, so a crash at any byte leaves either the
/// previous generation or a complete new one. Returns the file size.
///
/// # Errors
///
/// Any IO error writing, syncing, or renaming.
pub fn write_checkpoint(
    dir: &Path,
    generation: u64,
    seq: u64,
    payload: &[u8],
) -> std::io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    let mut body = Vec::with_capacity(payload.len() + 33);
    body.push(CHECKPOINT_VERSION);
    put_u64(&mut body, generation);
    put_u64(&mut body, seq);
    put_bytes(&mut body, payload);
    let crc = crc32(&body);
    let tmp = dir.join(format!("checkpoint-{generation:08}.tmp"));
    let mut f = File::create(&tmp)?;
    f.write_all(&CHECKPOINT_MAGIC)?;
    f.write_all(&body)?;
    f.write_all(&crc.to_le_bytes())?;
    f.sync_all()?;
    drop(f);
    let path = checkpoint_path(dir, generation);
    std::fs::rename(&tmp, &path)?;
    Ok((CHECKPOINT_MAGIC.len() + body.len() + 4) as u64)
}

fn corrupt(path: &Path, detail: impl Into<String>) -> EngineError {
    EngineError::CorruptSnapshot { file: path.display().to_string(), detail: detail.into() }
}

/// Loads and validates one checkpoint file.
///
/// # Errors
///
/// [`EngineError::CorruptSnapshot`] on any validation failure: bad magic,
/// stale version, CRC mismatch, or an inconsistent length field.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, EngineError> {
    let bytes =
        std::fs::read(path).map_err(|e| corrupt(path, format!("unreadable checkpoint: {e}")))?;
    if bytes.len() < CHECKPOINT_MAGIC.len() + 1 + 8 + 8 + 8 + 4 {
        return Err(corrupt(path, "truncated checkpoint (shorter than the fixed header)"));
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err(corrupt(path, "bad magic (not a checkpoint)"));
    }
    let body = &bytes[4..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if stored != crc32(body) {
        return Err(corrupt(path, "CRC mismatch"));
    }
    let mut c = Cursor::new(body);
    let version = c.u8().expect("length checked above");
    if version != CHECKPOINT_VERSION {
        return Err(corrupt(
            path,
            format!("unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"),
        ));
    }
    let generation = c.u64().expect("length checked above");
    let seq = c.u64().expect("length checked above");
    let payload = c.bytes().ok_or_else(|| corrupt(path, "inconsistent payload length"))?.to_vec();
    if !c.finished() {
        return Err(corrupt(path, "trailing bytes after payload"));
    }
    Ok(Checkpoint { generation, seq, payload, file: path.display().to_string() })
}

/// Lists checkpoint generations present in `dir`, ascending.
#[must_use]
pub fn list_checkpoints(dir: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut gens: Vec<u64> = entries
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            let digits = name.strip_prefix("checkpoint-")?;
            if digits.len() == 8 {
                digits.parse().ok()
            } else {
                None
            }
        })
        .collect();
    gens.sort_unstable();
    gens
}

/// Loads the newest usable checkpoint: the highest generation that
/// validates *and* covers no more than `max_seq` journal records. Unusable
/// candidates are skipped and reported in the second component (file plus
/// reason), so callers can surface what recovery had to ignore.
#[must_use]
pub fn load_latest_checkpoint(dir: &Path, max_seq: u64) -> (Option<Checkpoint>, Vec<String>) {
    let mut skipped = Vec::new();
    for generation in list_checkpoints(dir).into_iter().rev() {
        let path = checkpoint_path(dir, generation);
        match load_checkpoint(&path) {
            Ok(cp) if cp.seq <= max_seq => return (Some(cp), skipped),
            Ok(cp) => skipped.push(format!(
                "{}: covers journal seq {} but only {} records are durable",
                cp.file, cp.seq, max_seq
            )),
            Err(e) => skipped.push(e.to_string()),
        }
    }
    (None, skipped)
}

/// Everything recovery needs, in one plan: the durable journal prefix and
/// the checkpoint (if any) restoration should start from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Recovery {
    /// The durable journal prefix (plus where a torn tail was cut).
    pub scan: JournalScan,
    /// The newest usable checkpoint, if any. `None` means a full replay
    /// from sequence 0.
    pub checkpoint: Option<Checkpoint>,
    /// Checkpoints that existed but had to be skipped (corrupt, stale
    /// version, or covering more records than the journal retained), with
    /// reasons — for audit output.
    pub skipped_checkpoints: Vec<String>,
}

impl Recovery {
    /// The journal sequence restoration starts replaying from: the
    /// checkpoint's covered sequence, or 0 for a full replay.
    #[must_use]
    pub fn replay_from(&self) -> u64 {
        self.checkpoint.as_ref().map_or(0, |c| c.seq)
    }
}

/// Scans the journal in `dir` and picks the newest usable checkpoint.
///
/// # Errors
///
/// [`EngineError::CorruptJournal`] when the journal *head* is unusable
/// (bad magic / stale version). Torn tails and corrupt checkpoints are not
/// errors — they are truncated or skipped, respectively, and reported in
/// the returned plan.
pub fn plan_recovery(dir: &Path) -> Result<Recovery, EngineError> {
    let scan = read_journal(dir)?;
    let (checkpoint, skipped_checkpoints) = load_latest_checkpoint(dir, scan.next_seq);
    Ok(Recovery { scan, checkpoint, skipped_checkpoints })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rv-snapshot-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = temp_dir("roundtrip");
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = write_checkpoint(&dir, 3, 17, &payload).unwrap();
        assert!(bytes > payload.len() as u64);
        let cp = load_checkpoint(&checkpoint_path(&dir, 3)).unwrap();
        assert_eq!(cp.generation, 3);
        assert_eq!(cp.seq, 17);
        assert_eq!(cp.payload, payload);
        assert_eq!(list_checkpoints(&dir), vec![3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_yield_typed_errors() {
        let dir = temp_dir("corrupt");
        write_checkpoint(&dir, 0, 5, b"payload").unwrap();
        let path = checkpoint_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Bit-flip inside the payload: CRC must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(matches!(err, EngineError::CorruptSnapshot { .. }), "{err}");
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
        // Truncation below the fixed header.
        std::fs::write(&path, b"RVCK").unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Foreign file.
        std::fs::write(&path, b"not a checkpoint at all, definitely").unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_usable_checkpoint_wins_and_overreaching_ones_are_skipped() {
        let dir = temp_dir("latest");
        write_checkpoint(&dir, 0, 4, b"gen0").unwrap();
        write_checkpoint(&dir, 1, 9, b"gen1").unwrap();
        write_checkpoint(&dir, 2, 30, b"gen2").unwrap();
        // Only 12 journal records are durable: generation 2 covers too
        // much and must be skipped in favour of generation 1.
        let (cp, skipped) = load_latest_checkpoint(&dir, 12);
        let cp = cp.unwrap();
        assert_eq!(cp.generation, 1);
        assert_eq!(cp.payload, b"gen1");
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].contains("covers journal seq 30"), "{}", skipped[0]);
        // Corrupt generation 1 as well: fall back to generation 0.
        let p1 = checkpoint_path(&dir, 1);
        let mut b = std::fs::read(&p1).unwrap();
        let last = b.len() - 1;
        b[last] ^= 0xFF;
        std::fs::write(&p1, &b).unwrap();
        let (cp, skipped) = load_latest_checkpoint(&dir, 12);
        assert_eq!(cp.unwrap().generation, 0);
        assert_eq!(skipped.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_recovery_over_empty_dir_is_a_full_replay_of_nothing() {
        let dir = temp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = plan_recovery(&dir).unwrap();
        assert!(plan.checkpoint.is_none());
        assert_eq!(plan.replay_from(), 0);
        assert!(plan.scan.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_rejects_overruns_and_oversized_counts() {
        let mut out = Vec::new();
        put_u16(&mut out, 7);
        put_u32(&mut out, 8);
        put_u64(&mut out, 9);
        put_bytes(&mut out, b"xy");
        let mut c = Cursor::new(&out);
        assert_eq!(c.u16(), Some(7));
        assert_eq!(c.u32(), Some(8));
        assert_eq!(c.u64(), Some(9));
        assert_eq!(c.bytes(), Some(&b"xy"[..]));
        assert!(c.finished());
        assert_eq!(c.u8(), None);
        // A length field claiming more elements than bytes remain.
        let mut bogus = Vec::new();
        put_u64(&mut bogus, u64::MAX);
        let mut c = Cursor::new(&bogus);
        assert_eq!(c.count(), None);
    }
}
