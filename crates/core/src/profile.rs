//! Deep observability: the hot-path phase profiler, the per-monitor
//! provenance ledger, and Prometheus text exposition.
//!
//! PR 1's counters answer *how much* (E/M/FM/CM aggregates); this module
//! answers the two questions the paper's evaluation turns on but cannot
//! ask: *where does each microsecond of per-event overhead go*, and *why
//! did this specific monitor instance get created, flagged, and
//! collected*.
//!
//! * [`PhaseProfiler`] — an [`EngineObserver`] that folds every
//!   [`Phase`]-timed span into a per-phase power-of-two [`Histogram`]
//!   (p50/p95/p99 via [`Histogram::quantile`]) and keeps enter/exit span
//!   counters so tests can assert balance. It rides the same
//!   `O::ENABLED` monomorphization as `MetricsRegistry`: with
//!   [`NoopObserver`](crate::NoopObserver) the engine compiles all
//!   timing out, so the disabled path costs nothing (verified by the
//!   bench harness). Like `MetricsRegistry` it is
//!   [`merge_from`](PhaseProfiler::merge_from)-able across shards.
//! * [`ProvenanceLedger`] — an [`EngineObserver`] recording each monitor
//!   instance's life story: creating event index and binding, every
//!   flagging with its cause (which parameters were dead, which event's
//!   ALIVENESS evaluated false) and the sweep it happened under, and the
//!   collection point. [`ProvenanceLedger::summary`] re-derives Figure
//!   10's E/M/FM/CM from the per-instance records — an accounting
//!   identity against [`EngineStats`](crate::EngineStats) that the test
//!   suite checks for the whole catalog.
//! * [`prometheus_text`] — renders a merged registry + profilers as the
//!   Prometheus text exposition format (served by `rvmon serve` over a
//!   std-only TCP listener; no new dependencies).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use rv_logic::{Alphabet, EventDef, EventId, ParamSet, Verdict};

use crate::binding::Binding;
use crate::obs::{
    json_escape, json_f64, EngineObserver, FlagCause, GcCycleRecord, GcKind, GcReason, Histogram,
    MetricsRegistry, Phase, HISTOGRAM_BUCKETS,
};
use crate::store::MonitorId;

// ---------------------------------------------------------------------------
// PhaseProfiler
// ---------------------------------------------------------------------------

/// An open timing span returned by [`PhaseProfiler::enter`]; hand it back
/// to [`PhaseProfiler::exit`] to close and record it. Call sites outside
/// the engine's own `phase_timed` plumbing (journal appends, shard
/// routing) use this pair so the span counters stay balanced.
#[derive(Debug)]
#[must_use = "an unclosed span never records and unbalances the profiler"]
pub struct SpanToken {
    phase: Phase,
    start: Instant,
}

/// Per-phase wall-clock histograms with span-balance counters.
///
/// One profiler covers one property (or one shard of one property); the
/// [`label`](PhaseProfiler::with_label) names it in expositions. Merging
/// follows the same discipline as
/// [`MetricsRegistry::merge_from`]: bucket counts and span counters add,
/// maxima take the larger mark, so shard aggregation order is irrelevant.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    label: String,
    spans: [Histogram; Phase::COUNT],
    enters: [u64; Phase::COUNT],
    exits: [u64; Phase::COUNT],
    events: u64,
}

impl PhaseProfiler {
    /// An empty, unlabelled profiler.
    #[must_use]
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Names the profiler (normally the property, e.g. `"UnsafeIter"`).
    #[must_use]
    pub fn with_label(mut self, label: &str) -> PhaseProfiler {
        self.label = label.to_owned();
        self
    }

    /// The profiler's label (empty when unlabelled).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Events observed (denominator for per-event phase cost).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The wall-clock histogram for `phase`.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.spans[phase.index()]
    }

    /// Spans opened for `phase` (every [`phase_timed`][EngineObserver::phase_timed]
    /// callback counts as one opened-and-closed span).
    #[must_use]
    pub fn enters(&self, phase: Phase) -> u64 {
        self.enters[phase.index()]
    }

    /// Spans closed for `phase`.
    #[must_use]
    pub fn exits(&self, phase: Phase) -> u64 {
        self.exits[phase.index()]
    }

    /// Whether every opened span was closed, for every phase.
    #[must_use]
    pub fn balanced(&self) -> bool {
        Phase::ALL.into_iter().all(|p| self.enters(p) == self.exits(p))
    }

    /// Opens a timing span for `phase` at a call site the engine does not
    /// instrument itself (journal appends, shard routing).
    pub fn enter(&mut self, phase: Phase) -> SpanToken {
        self.enters[phase.index()] = self.enters[phase.index()].saturating_add(1);
        SpanToken { phase, start: Instant::now() }
    }

    /// Closes `span`, recording its wall-clock duration.
    pub fn exit(&mut self, span: SpanToken) {
        let nanos = u64::try_from(span.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let i = span.phase.index();
        self.exits[i] = self.exits[i].saturating_add(1);
        self.spans[i].record(nanos);
    }

    /// Accumulates another profiler (the cross-shard aggregation path).
    /// The label is kept from `self` unless `self` is unlabelled.
    pub fn merge_from(&mut self, other: &PhaseProfiler) {
        if self.label.is_empty() {
            self.label = other.label.clone();
        }
        for (h, o) in self.spans.iter_mut().zip(&other.spans) {
            h.merge_from(o);
        }
        for (c, &o) in self.enters.iter_mut().zip(&other.enters) {
            *c = c.saturating_add(o);
        }
        for (c, &o) in self.exits.iter_mut().zip(&other.exits) {
            *c = c.saturating_add(o);
        }
        self.events = self.events.saturating_add(other.events);
    }

    /// Measures the profiler's own cost: the mean wall-clock nanoseconds
    /// one enter/exit pair spends on clock reads and histogram updates,
    /// over `reps` probe spans against a scratch profiler. This is the
    /// figure to subtract when interpreting per-phase sums — and the
    /// reason the `NoopObserver` path compiles the spans out entirely.
    #[must_use]
    pub fn measure_self_overhead(reps: u32) -> f64 {
        let reps = reps.max(1);
        let mut probe = PhaseProfiler::new();
        let start = Instant::now();
        for _ in 0..reps {
            let span = probe.enter(Phase::IndexLookup);
            probe.exit(span);
        }
        let total = start.elapsed().as_nanos() as f64;
        total / f64::from(reps)
    }

    /// Renders the profiler as one JSON object: per-phase histograms
    /// (with quantiles), span counters, and the event denominator.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"label\":\"{}\",\"events\":{},\"phases\":{{",
            json_escape(&self.label),
            self.events
        );
        let mut first = true;
        for p in Phase::ALL {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"enters\":{},\"exits\":{},\"ns\":{}}}",
                p.label(),
                self.enters(p),
                self.exits(p),
                self.phase(p).to_json()
            );
        }
        out.push_str("}}");
        out
    }
}

impl EngineObserver for PhaseProfiler {
    fn event_dispatched(&mut self, _event: EventId, _binding: &Binding, _monitors_touched: usize) {
        self.events = self.events.saturating_add(1);
    }

    fn phase_timed(&mut self, phase: Phase, nanos: u64) {
        // One callback is one completed span: count both ends so
        // balance checks cover the engine-instrumented phases too.
        let i = phase.index();
        self.enters[i] = self.enters[i].saturating_add(1);
        self.exits[i] = self.exits[i].saturating_add(1);
        self.spans[i].record(nanos);
    }
}

// ---------------------------------------------------------------------------
// SpanLog + Chrome trace-event export
// ---------------------------------------------------------------------------

/// One completed span on a timeline lane, in nanoseconds since the
/// owning [`SpanLog`]'s creation.
#[derive(Clone, Debug)]
pub struct TimelineSpan {
    /// Display name (a [`Phase`] label, or `gc:<kind>` for GC cycles).
    pub name: String,
    /// Chrome trace category: `"phase"` or `"gc"`.
    pub cat: &'static str,
    /// Span start, nanoseconds since the log's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Cap on spans a [`SpanLog`] retains; later spans are counted in
/// [`SpanLog::dropped`] instead (the timeline is then a prefix).
pub const MAX_TIMELINE_SPANS: usize = 1 << 18;

/// An [`EngineObserver`] that captures every timed phase span and GC
/// cycle as a `(start, duration)` interval on one timeline, for Chrome
/// trace-event export ([`chrome_trace_json`]). Each log is one lane
/// (`tid`) in the exported trace; shard workers get one log each.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    spans: Vec<TimelineSpan>,
    dropped: u64,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

impl SpanLog {
    /// An empty log; its creation instant becomes the lane's time origin.
    #[must_use]
    pub fn new() -> SpanLog {
        SpanLog { epoch: Instant::now(), spans: Vec::new(), dropped: 0 }
    }

    /// The captured spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> &[TimelineSpan] {
        &self.spans
    }

    /// Spans discarded after the [`MAX_TIMELINE_SPANS`] cap was hit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of captured spans whose name is `name`.
    #[must_use]
    pub fn count_named(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).count() as u64
    }

    fn push(&mut self, name: String, cat: &'static str, dur_ns: u64) {
        if self.spans.len() >= MAX_TIMELINE_SPANS {
            self.dropped += 1;
            return;
        }
        // The callback arrives at span *end*: anchor the start by
        // subtracting the duration from now.
        let now = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.spans.push(TimelineSpan { name, cat, start_ns: now.saturating_sub(dur_ns), dur_ns });
    }

    /// Records a span at an explicit offset, for offline timeline
    /// reconstruction (the flight recorder rebuilds lanes from a dump's
    /// stored timestamps rather than live `Instant`s). Spans with a
    /// `cat` other than `"phase"` render as `X` complete events in
    /// [`chrome_trace_json`]. Honors the [`MAX_TIMELINE_SPANS`] cap.
    pub fn record_at(&mut self, name: String, cat: &'static str, start_ns: u64, dur_ns: u64) {
        if self.spans.len() >= MAX_TIMELINE_SPANS {
            self.dropped += 1;
            return;
        }
        self.spans.push(TimelineSpan { name, cat, start_ns, dur_ns });
    }
}

impl EngineObserver for SpanLog {
    fn phase_timed(&mut self, phase: Phase, nanos: u64) {
        self.push(phase.label().to_owned(), "phase", nanos);
    }

    fn gc_cycle(&mut self, record: &GcCycleRecord) {
        self.push(
            format!("gc:{} ({})", record.kind.label(), record.reason.label()),
            "gc",
            record.pause_ns,
        );
    }
}

/// Renders one or more [`SpanLog`] lanes as Chrome trace-event JSON
/// (loadable in Perfetto / `chrome://tracing`). Each lane becomes a
/// `tid` under `pid` 0, named by a thread-name metadata event; every
/// phase span becomes a balanced `B`/`E` duration pair with microsecond
/// timestamps, and every GC cycle becomes a single `X` complete event
/// (GC pauses overlap the phase span that timed them without nesting,
/// and `B`/`E` pairs on one `tid` must nest — `X` events need not).
/// Events are ordered so equal-timestamp pairs nest correctly: at a
/// tie, `E` events close before `B`/`X` events open, outer (longer)
/// spans open first, and inner (shorter) spans close first.
#[must_use]
pub fn chrome_trace_json(lanes: &[(String, &SpanLog)]) -> String {
    struct Ev<'a> {
        tid: usize,
        ts_ns: u64,
        /// Tiebreak class: 0 = E, 1 = B/X (E first at equal ts).
        open: bool,
        /// `X` complete event (GC cycle) instead of a `B`/`E` pair.
        complete: bool,
        /// Duration for nesting tiebreaks (and the `X` event `dur`).
        dur_ns: u64,
        name: &'a str,
        cat: &'a str,
    }
    let mut events: Vec<Ev<'_>> = Vec::new();
    for (tid, (_, log)) in lanes.iter().enumerate() {
        for s in log.spans() {
            // Anything that isn't a nesting phase span ("gc" cycles,
            // flight-recorder "mark" events) renders as a standalone
            // X complete event.
            if s.cat != "phase" {
                events.push(Ev {
                    tid,
                    ts_ns: s.start_ns,
                    open: true,
                    complete: true,
                    dur_ns: s.dur_ns,
                    name: &s.name,
                    cat: s.cat,
                });
                continue;
            }
            events.push(Ev {
                tid,
                ts_ns: s.start_ns,
                open: true,
                complete: false,
                dur_ns: s.dur_ns,
                name: &s.name,
                cat: s.cat,
            });
            events.push(Ev {
                tid,
                ts_ns: s.start_ns.saturating_add(s.dur_ns),
                open: false,
                complete: false,
                dur_ns: s.dur_ns,
                name: &s.name,
                cat: s.cat,
            });
        }
    }
    events.sort_by(|a, b| {
        a.ts_ns.cmp(&b.ts_ns).then_with(|| a.open.cmp(&b.open)).then_with(|| {
            if a.open {
                b.dur_ns.cmp(&a.dur_ns) // outer (longer) spans open first
            } else {
                a.dur_ns.cmp(&b.dur_ns) // inner (shorter) spans close first
            }
        })
    });
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tid, (name, _)) in lanes.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        );
    }
    for e in &events {
        if !first {
            out.push(',');
        }
        first = false;
        if e.complete {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{}}}",
                json_escape(e.name),
                e.cat,
                json_f64(e.ts_ns as f64 / 1000.0),
                json_f64(e.dur_ns as f64 / 1000.0),
                e.tid
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                json_escape(e.name),
                e.cat,
                if e.open { "B" } else { "E" },
                json_f64(e.ts_ns as f64 / 1000.0),
                e.tid
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// ---------------------------------------------------------------------------
// ProvenanceLedger
// ---------------------------------------------------------------------------

/// One flagging of a monitor instance, with its cause.
#[derive(Clone, Debug)]
pub struct FlagEvent {
    /// Engine event index when the flag happened.
    pub at_event: u64,
    /// The instance's last event (the `e` whose `ALIVENESS(e)` failed).
    pub last_event: EventId,
    /// The parameters that were dead at flag time.
    pub dead: ParamSet,
    /// Which rule flagged it.
    pub cause: FlagCause,
    /// The sweep (1-based ordinal) the flag happened under, if any —
    /// `None` means it was flagged inline on the hot path.
    pub sweep: Option<u64>,
}

/// The recorded life of one monitor instance.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    /// The engine-local monitor id (slots are reused after collection;
    /// the ledger keeps the full history anyway).
    pub id: MonitorId,
    /// The instance's parameter binding.
    pub binding: Binding,
    /// Engine event index at creation.
    pub created_at_event: u64,
    /// Every flagging, in order.
    pub flags: Vec<FlagEvent>,
    /// Engine event index at physical collection (`None` = still live).
    pub collected_at_event: Option<u64>,
    /// The sweep (1-based ordinal) that reclaimed it, if collection
    /// happened inside a safepoint sweep.
    pub collected_in_sweep: Option<u64>,
}

/// The Figure 10 row re-derived from per-instance records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvenanceSummary {
    /// Events observed (E).
    pub events: u64,
    /// Monitor instances created (M).
    pub created: u64,
    /// Flag events across all instances (FM).
    pub flagged: u64,
    /// Instances physically collected (CM).
    pub collected: u64,
}

/// An [`EngineObserver`] recording per-monitor-instance lifecycle
/// causality, queryable by binding and summarizable as Figure 10's
/// E/M/FM/CM.
#[derive(Debug, Default)]
pub struct ProvenanceLedger {
    events: u64,
    sweeps: u64,
    in_sweep: bool,
    instances: Vec<InstanceRecord>,
    /// Live id → index into `instances` (ids are reused; the map always
    /// points at the *current* holder of the id).
    live: HashMap<MonitorId, usize>,
    names: Option<(Alphabet, EventDef)>,
}

impl ProvenanceLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> ProvenanceLedger {
        ProvenanceLedger::default()
    }

    /// Attaches naming context so stories print event and parameter names.
    #[must_use]
    pub fn with_names(mut self, alphabet: Alphabet, event_def: EventDef) -> ProvenanceLedger {
        self.names = Some((alphabet, event_def));
        self
    }

    /// All recorded instances, in creation order.
    #[must_use]
    pub fn instances(&self) -> &[InstanceRecord] {
        &self.instances
    }

    /// Re-derives E/M/FM/CM from the per-instance records. Matching
    /// [`EngineStats`](crate::EngineStats) field-for-field is the
    /// accounting identity the `explain` tests assert.
    #[must_use]
    pub fn summary(&self) -> ProvenanceSummary {
        ProvenanceSummary {
            events: self.events,
            created: self.instances.len() as u64,
            flagged: self.instances.iter().map(|r| r.flags.len() as u64).sum(),
            collected: self.instances.iter().filter(|r| r.collected_at_event.is_some()).count()
                as u64,
        }
    }

    /// Accumulates another ledger (per-shard aggregation). Instances are
    /// concatenated — ids are engine-local, so cross-shard id lookups are
    /// meaningless after a merge, but stories and summaries still hold.
    pub fn merge_from(&mut self, other: &ProvenanceLedger) {
        self.events = self.events.saturating_add(other.events);
        self.sweeps = self.sweeps.saturating_add(other.sweeps);
        self.instances.extend(other.instances.iter().cloned());
        if self.names.is_none() {
            self.names = other.names.clone();
        }
        self.live.clear(); // ids collide across engines; stop tracking
    }

    fn render_binding(&self, b: &Binding) -> String {
        let mut out = String::new();
        for (i, (p, obj)) in b.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &self.names {
                Some((_, def)) => {
                    let _ = write!(out, "{}={}", def.param_name(p), obj);
                }
                None => {
                    let _ = write!(out, "x{}={}", p.as_usize(), obj);
                }
            }
        }
        out
    }

    fn render_event(&self, e: EventId) -> String {
        match &self.names {
            Some((a, _)) => a.name(e).to_owned(),
            None => format!("e{}", e.as_usize()),
        }
    }

    fn render_params(&self, ps: ParamSet) -> String {
        let mut out = String::new();
        for (i, p) in ps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &self.names {
                Some((_, def)) => out.push_str(def.param_name(p)),
                None => {
                    let _ = write!(out, "x{}", p.as_usize());
                }
            }
        }
        out
    }

    /// Records whose rendered binding contains `needle` (creation order).
    #[must_use]
    pub fn find(&self, needle: &str) -> Vec<&InstanceRecord> {
        self.instances.iter().filter(|r| self.render_binding(&r.binding).contains(needle)).collect()
    }

    /// The full life story of one instance, one line per lifecycle step.
    #[must_use]
    pub fn story(&self, r: &InstanceRecord) -> String {
        let mut out = format!(
            "monitor #{} ⟨{}⟩\n  created   at event {}\n",
            r.id.as_usize(),
            self.render_binding(&r.binding),
            r.created_at_event
        );
        for f in &r.flags {
            let _ = write!(
                out,
                "  flagged   at event {} (cause: {}, dead: {{{}}}, after `{}`",
                f.at_event,
                f.cause.label(),
                self.render_params(f.dead),
                self.render_event(f.last_event)
            );
            match f.sweep {
                Some(s) => {
                    let _ = writeln!(out, ", sweep #{s})");
                }
                None => out.push_str(")\n"),
            }
        }
        match r.collected_at_event {
            Some(at) => {
                let _ = write!(out, "  collected at event {at}");
                match r.collected_in_sweep {
                    Some(s) => {
                        let _ = writeln!(out, " (sweep #{s})");
                    }
                    None => out.push('\n'),
                }
            }
            None => out.push_str("  still live\n"),
        }
        out
    }
}

impl EngineObserver for ProvenanceLedger {
    fn event_dispatched(&mut self, _event: EventId, _binding: &Binding, _monitors_touched: usize) {
        self.events = self.events.saturating_add(1);
    }

    fn monitor_created(&mut self, id: MonitorId, binding: &Binding) {
        let idx = self.instances.len();
        self.instances.push(InstanceRecord {
            id,
            binding: *binding,
            created_at_event: self.events,
            flags: Vec::new(),
            collected_at_event: None,
            collected_in_sweep: None,
        });
        self.live.insert(id, idx);
    }

    fn monitor_flagged(
        &mut self,
        id: MonitorId,
        _binding: &Binding,
        last_event: EventId,
        dead: ParamSet,
        cause: FlagCause,
    ) {
        let sweep = if self.in_sweep { Some(self.sweeps) } else { None };
        if let Some(&idx) = self.live.get(&id) {
            self.instances[idx].flags.push(FlagEvent {
                at_event: self.events,
                last_event,
                dead,
                cause,
                sweep,
            });
        }
    }

    fn monitor_collected(&mut self, id: MonitorId) {
        if let Some(idx) = self.live.remove(&id) {
            self.instances[idx].collected_at_event = Some(self.events);
            if self.in_sweep {
                self.instances[idx].collected_in_sweep = Some(self.sweeps);
            }
        }
    }

    fn sweep_started(&mut self) {
        self.sweeps += 1;
        self.in_sweep = true;
    }

    fn sweep_finished(&mut self, _flagged: u64, _collected: u64) {
        self.in_sweep = false;
    }

    fn trigger_fired(&mut self, _step: usize, _binding: &Binding, _verdict: Verdict) {}
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

fn prom_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let mut cumulative: u64 = 0;
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        cumulative = cumulative.saturating_add(c);
        if c == 0 && i < HISTOGRAM_BUCKETS {
            continue; // elide empty finite buckets; +Inf always prints
        }
        if i < HISTOGRAM_BUCKETS {
            let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{}\"}} {cumulative}", 1u64 << i);
        }
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {}", h.count());
    let bare = labels.trim_end_matches(',');
    if bare.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{bare}}} {}", h.sum());
        let _ = writeln!(out, "{name}_count{{{bare}}} {}", h.count());
    }
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a merged [`MetricsRegistry`] plus per-property
/// [`PhaseProfiler`]s in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`). Served by `rvmon serve`; also usable as
/// a one-shot dump.
#[must_use]
pub fn prometheus_text(metrics: &MetricsRegistry, profilers: &[PhaseProfiler]) -> String {
    let mut out = String::new();
    let counters: [(&str, &str, u64); 12] = [
        ("rvmon_events_total", "Events dispatched (Fig. 10 E)", metrics.events()),
        ("rvmon_monitors_created_total", "Monitor instances created (M)", metrics.created()),
        ("rvmon_monitors_flagged_total", "Monitors flagged unnecessary (FM)", metrics.flagged()),
        ("rvmon_monitors_collected_total", "Monitors reclaimed (CM)", metrics.collected()),
        ("rvmon_dead_keys_total", "Dead index keys discovered", metrics.dead_keys()),
        ("rvmon_triggers_total", "Goal verdicts reported", metrics.triggers()),
        ("rvmon_sweeps_total", "Safepoint sweeps", metrics.sweeps()),
        ("rvmon_budget_trips_total", "Resource budget violations", metrics.budget_trips()),
        ("rvmon_shed_total", "Monitor creations refused under pressure", metrics.shed()),
        (
            "rvmon_quarantined_total",
            "Monitors quarantined by handler panics",
            metrics.quarantined(),
        ),
        ("rvmon_checkpoints_total", "Checkpoints durably written", metrics.checkpoints_written()),
        (
            "rvmon_journal_truncated_bytes_total",
            "Journal bytes discarded during recovery",
            metrics.journal_bytes_truncated(),
        ),
    ];
    for (name, help, value) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    let _ = writeln!(out, "# HELP rvmon_gc_cycles_total GC cycles by collector kind and reason");
    let _ = writeln!(out, "# TYPE rvmon_gc_cycles_total counter");
    for kind in GcKind::ALL {
        for reason in GcReason::ALL {
            let _ = writeln!(
                out,
                "rvmon_gc_cycles_total{{kind=\"{}\",reason=\"{}\"}} {}",
                kind.label(),
                reason.label(),
                metrics.gc_cycles(kind, reason)
            );
        }
    }
    let _ = writeln!(out, "# HELP rvmon_gc_scanned_total Objects/monitors examined by GC cycles");
    let _ = writeln!(out, "# TYPE rvmon_gc_scanned_total counter");
    for kind in GcKind::ALL {
        let _ = writeln!(
            out,
            "rvmon_gc_scanned_total{{kind=\"{}\"}} {}",
            kind.label(),
            metrics.gc_scanned(kind)
        );
    }
    let _ =
        writeln!(out, "# HELP rvmon_gc_reclaimed_total Objects/monitors reclaimed by GC cycles");
    let _ = writeln!(out, "# TYPE rvmon_gc_reclaimed_total counter");
    for kind in GcKind::ALL {
        let _ = writeln!(
            out,
            "rvmon_gc_reclaimed_total{{kind=\"{}\"}} {}",
            kind.label(),
            metrics.gc_reclaimed(kind)
        );
    }
    let _ = writeln!(
        out,
        "# HELP rvmon_gc_debt Monitors created since the last sweep minus monitors it reclaimed"
    );
    let _ = writeln!(out, "# TYPE rvmon_gc_debt gauge");
    let _ = writeln!(out, "rvmon_gc_debt {}", metrics.gc_debt());
    let _ = writeln!(out, "# HELP rvmon_gc_pause_ns Stop-the-world GC pause durations (ns)");
    let _ = writeln!(out, "# TYPE rvmon_gc_pause_ns histogram");
    for kind in GcKind::ALL {
        let h = metrics.gc_pause(kind);
        if h.count() == 0 {
            continue;
        }
        let labels = format!("kind=\"{}\",", kind.label());
        prom_histogram(&mut out, "rvmon_gc_pause_ns", &labels, h);
    }
    let _ =
        writeln!(out, "# HELP rvmon_event_latency_ns End-to-end per-event dispatch latency (ns)");
    let _ = writeln!(out, "# TYPE rvmon_event_latency_ns histogram");
    if metrics.event_latency_ns().count() > 0 {
        prom_histogram(&mut out, "rvmon_event_latency_ns", "", metrics.event_latency_ns());
    }
    let _ = writeln!(
        out,
        "# HELP rvmon_phase_duration_ns Wall-clock nanoseconds per hot-path phase span"
    );
    let _ = writeln!(out, "# TYPE rvmon_phase_duration_ns histogram");
    for p in Phase::ALL {
        let h = metrics.phase(p);
        if h.count() == 0 {
            continue;
        }
        let labels = format!("phase=\"{}\",", p.label());
        prom_histogram(&mut out, "rvmon_phase_duration_ns", &labels, h);
    }
    if !profilers.is_empty() {
        let _ =
            writeln!(out, "# HELP rvmon_profile_phase_ns Per-property profiler phase spans (ns)");
        let _ = writeln!(out, "# TYPE rvmon_profile_phase_ns histogram");
        for prof in profilers {
            let property = prom_escape(prof.label());
            for p in Phase::ALL {
                let h = prof.phase(p);
                if h.count() == 0 {
                    continue;
                }
                let labels = format!("property=\"{property}\",phase=\"{}\",", p.label());
                prom_histogram(&mut out, "rvmon_profile_phase_ns", &labels, h);
            }
        }
        let _ = writeln!(out, "# HELP rvmon_profile_spans_total Opened profiler spans per phase");
        let _ = writeln!(out, "# TYPE rvmon_profile_spans_total counter");
        for prof in profilers {
            let property = prom_escape(prof.label());
            for p in Phase::ALL {
                if prof.enters(p) == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "rvmon_profile_spans_total{{property=\"{property}\",phase=\"{}\"}} {}",
                    p.label(),
                    prof.enters(p)
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "# HELP rvmon_profiler_self_overhead_ns Measured cost of one profiler span pair"
    );
    let _ = writeln!(out, "# TYPE rvmon_profiler_self_overhead_ns gauge");
    let _ = writeln!(
        out,
        "rvmon_profiler_self_overhead_ns {}",
        json_f64(PhaseProfiler::measure_self_overhead(4096))
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_logic::ParamId;

    fn obj(bits: u64) -> rv_heap::ObjId {
        rv_heap::ObjId::from_bits(bits)
    }

    #[test]
    fn profiler_spans_balance_and_merge() {
        let mut a = PhaseProfiler::new().with_label("UnsafeIter");
        let span = a.enter(Phase::JournalAppend);
        a.exit(span);
        a.phase_timed(Phase::IndexLookup, 100);
        a.phase_timed(Phase::Sweep, 2_000);
        assert!(a.balanced());
        assert_eq!(a.enters(Phase::JournalAppend), 1);
        assert_eq!(a.exits(Phase::JournalAppend), 1);
        assert_eq!(a.phase(Phase::IndexLookup).count(), 1);

        let mut b = PhaseProfiler::new();
        b.phase_timed(Phase::IndexLookup, 50);
        let open = b.enter(Phase::ShardRoute);
        assert!(!b.balanced(), "open span detected");
        b.exit(open);

        let mut merged = PhaseProfiler::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.label(), "UnsafeIter", "first non-empty label wins");
        assert_eq!(merged.phase(Phase::IndexLookup).count(), 2);
        assert_eq!(merged.enters(Phase::ShardRoute), 1);
        assert!(merged.balanced());
        let json = merged.to_json();
        assert!(json.contains("\"label\":\"UnsafeIter\""), "{json}");
        assert!(json.contains("\"index_lookup\""), "{json}");
    }

    #[test]
    fn self_overhead_is_finite_and_positive() {
        let ns = PhaseProfiler::measure_self_overhead(256);
        assert!(ns.is_finite() && ns >= 0.0, "{ns}");
    }

    #[test]
    fn ledger_reconstructs_a_life_story() {
        let mut ledger = ProvenanceLedger::new();
        let b = Binding::from_pairs(&[(ParamId(0), obj(5))]);
        ledger.event_dispatched(EventId(0), &b, 0);
        ledger.monitor_created(MonitorId::from_raw(0), &b);
        ledger.event_dispatched(EventId(1), &b, 1);
        ledger.sweep_started();
        ledger.monitor_flagged(
            MonitorId::from_raw(0),
            &b,
            EventId(1),
            ParamSet::EMPTY.with(ParamId(0)),
            FlagCause::Aliveness,
        );
        ledger.monitor_collected(MonitorId::from_raw(0));
        ledger.sweep_finished(1, 1);
        let s = ledger.summary();
        assert_eq!(s, ProvenanceSummary { events: 2, created: 1, flagged: 1, collected: 1 });
        let hits = ledger.find("x0=");
        assert_eq!(hits.len(), 1);
        let story = ledger.story(hits[0]);
        assert!(story.contains("created   at event 1"), "{story}");
        assert!(story.contains("cause: aliveness"), "{story}");
        assert!(story.contains("sweep #1"), "{story}");
        assert!(story.contains("collected at event 2"), "{story}");
    }

    #[test]
    fn ledger_survives_monitor_id_reuse() {
        let mut ledger = ProvenanceLedger::new();
        let b1 = Binding::from_pairs(&[(ParamId(0), obj(1))]);
        let b2 = Binding::from_pairs(&[(ParamId(0), obj(2))]);
        ledger.monitor_created(MonitorId::from_raw(0), &b1);
        ledger.monitor_collected(MonitorId::from_raw(0));
        ledger.monitor_created(MonitorId::from_raw(0), &b2); // slot reused
        ledger.monitor_flagged(
            MonitorId::from_raw(0),
            &b2,
            EventId(0),
            ParamSet::EMPTY,
            FlagCause::AllParamsDead,
        );
        assert_eq!(ledger.instances().len(), 2);
        assert!(ledger.instances()[0].flags.is_empty(), "first holder untouched by reuse");
        assert_eq!(ledger.instances()[1].flags.len(), 1);
        let s = ledger.summary();
        assert_eq!(s.created, 2);
        assert_eq!(s.collected, 1);
    }

    #[test]
    fn ledger_merge_concatenates_instances() {
        let mut a = ProvenanceLedger::new();
        a.event_dispatched(EventId(0), &Binding::BOTTOM, 0);
        a.monitor_created(MonitorId::from_raw(0), &Binding::BOTTOM);
        let mut b = ProvenanceLedger::new();
        b.event_dispatched(EventId(0), &Binding::BOTTOM, 0);
        b.monitor_created(MonitorId::from_raw(0), &Binding::BOTTOM);
        b.monitor_collected(MonitorId::from_raw(0));
        a.merge_from(&b);
        let s = a.summary();
        assert_eq!(s.events, 2);
        assert_eq!(s.created, 2);
        assert_eq!(s.collected, 1);
    }

    #[test]
    fn prometheus_text_renders_counters_and_cumulative_buckets() {
        let mut m = MetricsRegistry::new();
        m.event_dispatched(EventId(0), &Binding::BOTTOM, 1);
        m.phase_timed(Phase::IndexLookup, 3);
        m.phase_timed(Phase::IndexLookup, 100);
        let mut prof = PhaseProfiler::new().with_label("HasNext");
        prof.phase_timed(Phase::Transition, 10);
        let text = prometheus_text(&m, &[prof]);
        assert!(text.contains("rvmon_events_total 1"), "{text}");
        assert!(
            text.contains("rvmon_phase_duration_ns_bucket{phase=\"index_lookup\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("rvmon_phase_duration_ns_count{phase=\"index_lookup\"} 2"), "{text}");
        assert!(
            text.contains(
                "rvmon_profile_phase_ns_bucket{property=\"HasNext\",phase=\"transition\","
            ),
            "{text}"
        );
        assert!(
            text.contains("rvmon_profile_spans_total{property=\"HasNext\",phase=\"transition\"} 1"),
            "{text}"
        );
        assert!(text.contains("rvmon_profiler_self_overhead_ns "), "{text}");
        // Buckets are cumulative: the le=4 bucket already includes the
        // le=1..4 samples, and +Inf equals the total count.
        let bucket_4 = text
            .lines()
            .find(|l| {
                l.starts_with("rvmon_phase_duration_ns_bucket{phase=\"index_lookup\",le=\"4\"}")
            })
            .expect("le=4 bucket present");
        assert!(bucket_4.ends_with(" 1"), "{bucket_4}");
    }

    /// Satellite: label values are attacker-ish input (property names come
    /// from user specs) — backslashes, quotes, and newlines must be
    /// escaped per the exposition format.
    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(prom_escape(r"a\b"), r"a\\b");
        assert_eq!(prom_escape("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_escape("two\nlines"), "two\\nlines");
        let input = "\\\"\n"; // one backslash, one quote, one newline
        let expected: String = ["\\\\", "\\\"", "\\n"].concat();
        assert_eq!(
            prom_escape(input),
            expected,
            "backslash escapes first so later escapes are not double-escaped"
        );

        let m = MetricsRegistry::new();
        let mut prof = PhaseProfiler::new().with_label("Evil\\Prop\"v1\"\nrest");
        prof.phase_timed(Phase::Sweep, 10);
        let text = prometheus_text(&m, &[prof]);
        let label_line = text
            .lines()
            .find(|l| l.starts_with("rvmon_profile_spans_total{"))
            .expect("span counter rendered");
        assert!(label_line.contains("property=\"Evil\\\\Prop\\\"v1\\\"\\nrest\""), "{label_line}");
        assert!(!text.contains("v1\"\n"), "no raw newline survives inside a label value");
    }

    #[test]
    fn prometheus_text_renders_gc_and_latency_series() {
        let mut m = MetricsRegistry::new();
        m.gc_cycle(&GcCycleRecord {
            kind: GcKind::MonitorSweep,
            reason: GcReason::Forced,
            end_ns: 5_000,
            pause_ns: 700,
            scanned: 12,
            reclaimed: 3,
            flagged: 1,
            occupancy_before: 12,
            occupancy_after: 9,
        });
        m.event_latency(1234);
        let text = prometheus_text(&m, &[]);
        assert!(
            text.contains("rvmon_gc_cycles_total{kind=\"monitor_sweep\",reason=\"forced\"} 1"),
            "{text}"
        );
        assert!(text.contains("rvmon_gc_cycles_total{kind=\"heap\",reason=\"periodic\"} 0"));
        assert!(text.contains("rvmon_gc_scanned_total{kind=\"monitor_sweep\"} 12"), "{text}");
        assert!(text.contains("rvmon_gc_reclaimed_total{kind=\"monitor_sweep\"} 3"), "{text}");
        assert!(text.contains("rvmon_gc_debt 0"), "{text}");
        assert!(
            text.contains("rvmon_gc_pause_ns_bucket{kind=\"monitor_sweep\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("rvmon_event_latency_ns_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("rvmon_event_latency_ns_sum 1234"), "{text}");
        assert!(text.contains("rvmon_event_latency_ns_count 1"), "{text}");
        // Lint invariants the ci smoke stage also checks: every counter
        // family ends in _total and no duplicate series lines exist.
        let mut seen = std::collections::HashSet::new();
        let mut family_type = std::collections::HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let fam = it.next().unwrap();
                let ty = it.next().unwrap();
                family_type.insert(fam.to_string(), ty.to_string());
                if ty == "counter" {
                    assert!(fam.ends_with("_total"), "counter family without _total: {fam}");
                }
            } else if !line.starts_with('#') && !line.is_empty() {
                let series = line.rsplit_once(' ').unwrap().0;
                assert!(seen.insert(series.to_string()), "duplicate series: {series}");
            }
        }
        assert_eq!(family_type.get("rvmon_gc_debt").map(String::as_str), Some("gauge"));
    }

    #[test]
    fn span_log_exports_a_balanced_chrome_trace() {
        let mut log = SpanLog::new();
        log.phase_timed(Phase::IndexLookup, 1_000);
        log.phase_timed(Phase::Transition, 2_000);
        log.phase_timed(Phase::Sweep, 500);
        log.gc_cycle(&GcCycleRecord {
            kind: GcKind::MonitorSweep,
            reason: GcReason::Forced,
            end_ns: 9_000,
            pause_ns: 500,
            scanned: 1,
            reclaimed: 1,
            flagged: 0,
            occupancy_before: 1,
            occupancy_after: 0,
        });
        assert_eq!(log.spans().len(), 4);
        assert_eq!(log.count_named("index_lookup"), 1);
        assert_eq!(log.count_named("gc:monitor_sweep (forced)"), 1);

        let mut other = SpanLog::new();
        other.phase_timed(Phase::ShardRoute, 100);
        let json = chrome_trace_json(&[("main".to_owned(), &log), ("shard-0".to_owned(), &other)]);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "lane metadata present: {json}");
        assert!(json.contains("\"args\":{\"name\":\"shard-0\"}"), "{json}");

        // GC cycles export as single `X` complete events (they overlap
        // the sweep phase span without nesting); phases as B/E pairs.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1, "{json}");
        assert!(
            json.contains("\"name\":\"gc:monitor_sweep (forced)\",\"cat\":\"gc\",\"ph\":\"X\""),
            "{json}"
        );
        assert!(json.contains("\"dur\":0.5"), "X events carry their duration: {json}");

        // Balanced B/E pairs per lane, with monotone timestamps.
        for tid in 0..2 {
            let mut depth = 0i64;
            let mut last_ts = f64::MIN;
            let mut pairs = 0;
            for chunk in json.split("},{") {
                if !chunk.contains(&format!("\"tid\":{tid}")) || chunk.contains("\"ph\":\"M\"") {
                    continue;
                }
                let ts: f64 = chunk
                    .split("\"ts\":")
                    .nth(1)
                    .and_then(|r| r.split(',').next())
                    .and_then(|v| v.parse().ok())
                    .expect("ts field");
                assert!(ts >= last_ts, "timestamps monotone within lane {tid}: {json}");
                last_ts = ts;
                if chunk.contains("\"ph\":\"B\"") {
                    depth += 1;
                    pairs += 1;
                } else if chunk.contains("\"ph\":\"E\"") {
                    depth -= 1;
                    assert!(depth >= 0, "E before matching B in lane {tid}");
                }
            }
            assert_eq!(depth, 0, "unbalanced spans in lane {tid}");
            let expected = if tid == 0 { 3 } else { 1 };
            assert_eq!(pairs, expected, "one B per captured phase span in lane {tid}");
        }
    }

    #[test]
    fn span_log_is_bounded() {
        let mut log = SpanLog::new();
        for _ in 0..(MAX_TIMELINE_SPANS + 10) {
            log.phase_timed(Phase::IndexLookup, 1);
        }
        assert_eq!(log.spans().len(), MAX_TIMELINE_SPANS);
        assert_eq!(log.dropped(), 10);
    }
}
