//! The kill-at-any-byte crash harness: journaled monitoring under
//! simulated process death, differentially checked against an
//! uninterrupted oracle run.
//!
//! [`crash_and_recover`] drives one property block over a
//! seed-reproducible schedule of parametric events, object deaths, heap
//! collections, and safepoint sweeps, journaling every operation through
//! a [`JournalWriter`] and writing periodic engine checkpoints. At a
//! seed-chosen operation it simulates a crash: the writer is dropped and
//! the on-disk artifacts are mutilated per a [`KillClass`] — the journal
//! tail truncated at an adversarial byte offset (including byte 0), a bit
//! flipped in the journal tail, or the newest checkpoint truncated or
//! bit-flipped. Recovery then proceeds exactly as `rvmon recover` would:
//! scan the durable journal prefix, restore the latest usable checkpoint,
//! rebuild the heap by replaying the operation log from sequence 0,
//! replay the event suffix with trigger deliveries at or below the
//! durable high-water mark suppressed, re-flag dead keys through the
//! ALIVENESS path, and resume the remaining schedule with a
//! [`JournalWriter::resume`]d writer.
//!
//! The differential check is the paper's own currency: the recovered
//! run's final verdicts and E/M/FM/CM statistics must equal the
//! uninterrupted oracle's (and the Figure 5 reference monitor's), with
//! zero duplicate trigger deliveries.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use rv_heap::{Heap, HeapConfig, ObjId, SplitMix64};
use rv_logic::{AnyFormalism, EventId, ParamId};
use rv_spec::CompiledSpec;

use crate::binding::Binding;
use crate::chaos::dedup;
use crate::engine::{Engine, EngineConfig, GcPolicy};
use crate::error::EngineError;
use crate::journal::{
    read_journal, JournalWriter, Record, AUX_CT_COLLECT, AUX_CT_INIT, AUX_CT_KILL, AUX_SWEEP,
    SEGMENT_HEADER_LEN,
};
use crate::reference::{monitor_trace, Trigger};
use crate::snapshot::{
    checkpoint_path, list_checkpoints, load_latest_checkpoint, write_checkpoint,
};
use crate::stats::EngineStats;

/// Live parameter objects available to the schedule generator.
const POOL: usize = 6;
/// Per-op probability of killing (and replacing) a pool object.
const KILL_PROB: f64 = 0.15;
/// Per-op probability of forcing a heap collection.
const COLLECT_PROB: f64 = 0.08;
/// Per-op probability of a safepoint sweep.
const SWEEP_PROB: f64 = 0.04;
/// Segment rotation limit for harness journals — small, so kills regularly
/// land past a rotation boundary.
const SEGMENT_BYTES: u64 = 1 << 12;

/// How the simulated crash mutilates the on-disk artifacts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KillClass {
    /// Truncate the last journal segment to `pct`% of its byte length
    /// (0 cuts it to nothing, including the header).
    TruncateJournal(u8),
    /// Flip one seed-chosen bit in the last journal segment's body.
    BitFlipJournal,
    /// Truncate the newest checkpoint file to half its length.
    TruncateCheckpoint,
    /// Flip one seed-chosen bit anywhere in the newest checkpoint file.
    BitFlipCheckpoint,
}

impl KillClass {
    /// The sweep the integration suites run: every mutilation mode, with
    /// journal truncation at byte-offset classes from "everything lost"
    /// to "one torn record".
    pub const ALL: [KillClass; 8] = [
        KillClass::TruncateJournal(0),
        KillClass::TruncateJournal(25),
        KillClass::TruncateJournal(55),
        KillClass::TruncateJournal(85),
        KillClass::TruncateJournal(99),
        KillClass::BitFlipJournal,
        KillClass::TruncateCheckpoint,
        KillClass::BitFlipCheckpoint,
    ];

    /// A short label for test output and logs.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            KillClass::TruncateJournal(pct) => format!("truncate_journal_{pct}"),
            KillClass::BitFlipJournal => "bitflip_journal".to_owned(),
            KillClass::TruncateCheckpoint => "truncate_checkpoint".to_owned(),
            KillClass::BitFlipCheckpoint => "bitflip_checkpoint".to_owned(),
        }
    }

    /// Distinguishes the rng stream per kill class so different classes
    /// crash at different schedule points.
    fn salt(self) -> u64 {
        match self {
            KillClass::TruncateJournal(pct) => 0x100 + u64::from(pct),
            KillClass::BitFlipJournal => 0x200,
            KillClass::TruncateCheckpoint => 0x300,
            KillClass::BitFlipCheckpoint => 0x400,
        }
    }
}

/// The result of one kill-and-recover differential run.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// Parametric events in the full schedule.
    pub trace_len: usize,
    /// Operation index at which the process "died".
    pub crash_op: usize,
    /// Operation index recovery resumed from (the durable op count).
    pub resumed_at_op: usize,
    /// Journal sequence covered by the restored checkpoint, if one was
    /// usable after the mutilation.
    pub checkpoint_seq: Option<u64>,
    /// Journal bytes the recovery reader discarded as torn or corrupt.
    pub lost_bytes: u64,
    /// Monitors the post-restore ALIVENESS pass re-flagged.
    pub reflagged: u64,
    /// Final statistics of the uninterrupted oracle run.
    pub oracle_stats: EngineStats,
    /// Final statistics of the crashed-and-recovered run.
    pub recovered_stats: EngineStats,
    /// Oracle goal reports: first report per binding, sorted.
    pub oracle_triggers: Vec<Trigger>,
    /// Recovered-run goal reports, deduplicated the same way.
    pub recovered_triggers: Vec<Trigger>,
    /// Figure 5 reference-monitor reports on the same trace.
    pub reference_triggers: Vec<Trigger>,
    /// Goal reports delivered exactly once across the crash boundary.
    pub delivered: u64,
    /// Duplicate `(event_seq, ordinal)` deliveries observed — must be 0.
    pub duplicate_deliveries: u64,
}

impl CrashOutcome {
    /// Whether the recovered run's verdicts equal both the uninterrupted
    /// engine's and the reference monitor's.
    #[must_use]
    pub fn verdicts_match(&self) -> bool {
        self.recovered_triggers == self.oracle_triggers
            && self.oracle_triggers == self.reference_triggers
    }

    /// Whether the recovered run's final statistics equal the oracle's.
    /// `cache_hits` is excluded: a restore deliberately starts with a
    /// cold lookup cache.
    #[must_use]
    pub fn stats_match(&self) -> bool {
        let mut a = self.recovered_stats;
        let mut b = self.oracle_stats;
        a.cache_hits = 0;
        b.cache_hits = 0;
        a == b
    }

    /// The full acceptance predicate: verdicts and stats match, every
    /// report was delivered exactly once, and the delivery count equals
    /// the oracle's trigger count.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.verdicts_match()
            && self.stats_match()
            && self.duplicate_deliveries == 0
            && self.delivered == self.oracle_stats.triggers
    }
}

/// One step of the deterministic schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Dispatch an event with parameters drawn from pool slots.
    Event(EventId, Vec<(ParamId, usize)>),
    /// Kill and replace a pool object.
    Kill(usize),
    /// Force a heap collection.
    Collect,
    /// Run a safepoint sweep.
    Sweep,
}

/// Generates the full op schedule — a pure function of `(spec, seed,
/// events)`, so recovery can regenerate the tail the journal lost.
fn schedule(spec: &CompiledSpec, seed: u64, events: usize) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed ^ 0xc3a5_c85c_97cb_3127);
    let mut ops = Vec::new();
    let mut emitted = 0;
    while emitted < events {
        if rng.chance(KILL_PROB) {
            ops.push(Op::Kill(rng.gen_range(POOL)));
            continue;
        }
        if rng.chance(COLLECT_PROB) {
            ops.push(Op::Collect);
            continue;
        }
        if rng.chance(SWEEP_PROB) {
            ops.push(Op::Sweep);
            continue;
        }
        let e = EventId(rng.gen_range(spec.alphabet.len()) as u16);
        let slots: Vec<(ParamId, usize)> =
            spec.event_params[e.as_usize()].iter().map(|&p| (p, rng.gen_range(POOL))).collect();
        ops.push(Op::Event(e, slots));
        emitted += 1;
    }
    ops
}

/// The monitored program: a manual heap plus a pinned object pool whose
/// entire history is determined by the op schedule, so an identically
/// replayed schedule rebuilds identical [`ObjId`]s.
struct World {
    heap: Heap,
    class: rv_heap::ClassId,
    pool: Vec<ObjId>,
}

impl World {
    fn new() -> World {
        let mut heap = Heap::new(HeapConfig::manual());
        let class = heap.register_class("Object");
        let frame = heap.enter_frame();
        let pool: Vec<ObjId> = (0..POOL).map(|_| heap.alloc(class)).collect();
        for &o in &pool {
            heap.pin(o);
        }
        heap.exit_frame(frame);
        World { heap, class, pool }
    }

    fn kill(&mut self, slot: usize) {
        self.heap.unpin(self.pool[slot]);
        let f = self.heap.enter_frame();
        let fresh = self.heap.alloc(self.class);
        self.heap.pin(fresh);
        self.heap.exit_frame(f);
        self.pool[slot] = fresh;
    }

    fn binding(&self, slots: &[(ParamId, usize)]) -> Binding {
        let pairs: Vec<(ParamId, ObjId)> = slots.iter().map(|&(p, s)| (p, self.pool[s])).collect();
        Binding::from_pairs(&pairs)
    }
}

fn build_engine(spec: &CompiledSpec, block: usize, policy: GcPolicy) -> Engine<AnyFormalism> {
    let prop = &spec.properties[block];
    let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
    Engine::new(prop.formalism.clone(), spec.event_def.clone(), prop.goal, config)
}

/// Runs the schedule uninterrupted and returns `(stats, deduped triggers,
/// trace)` — the oracle side of the differential check.
fn oracle_run(
    spec: &CompiledSpec,
    block: usize,
    policy: GcPolicy,
    ops: &[Op],
) -> Result<(EngineStats, Vec<Trigger>, Vec<(EventId, Binding)>), EngineError> {
    let mut world = World::new();
    let mut engine = build_engine(spec, block, policy);
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Kill(slot) => world.kill(*slot),
            Op::Collect => {
                world.heap.collect();
            }
            Op::Sweep => engine.full_sweep(&world.heap),
            Op::Event(e, slots) => {
                let binding = world.binding(slots);
                trace.push((*e, binding));
                engine.try_process(&world.heap, *e, binding)?;
            }
        }
    }
    engine.finish(&world.heap);
    engine.check_invariants(&world.heap)?;
    Ok((engine.stats(), dedup(engine.triggers()), trace))
}

/// Executes `ops` (whose global schedule indices start at
/// `first_op_index`) against a journaled engine, appending op and trigger
/// records and writing a checkpoint every `checkpoint_every` ops.
/// `on_trigger` sees each fired report's `(event_seq, ordinal)` key.
#[allow(clippy::too_many_arguments)]
fn run_journaled(
    world: &mut World,
    engine: &mut Engine<AnyFormalism>,
    journal: &mut JournalWriter,
    dir: &Path,
    block: u16,
    ops: &[Op],
    first_op_index: usize,
    checkpoint_every: usize,
    next_generation: &mut u64,
    mut on_trigger: impl FnMut(u64, u32),
) -> Result<(), EngineError> {
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Kill(slot) => {
                let bytes = (*slot as u32).to_le_bytes().to_vec();
                journal.append(&Record::Aux { tag: AUX_CT_KILL, bytes }).expect("journal append");
                world.kill(*slot);
            }
            Op::Collect => {
                journal
                    .append(&Record::Aux { tag: AUX_CT_COLLECT, bytes: Vec::new() })
                    .expect("journal append");
                world.heap.collect();
            }
            Op::Sweep => {
                journal
                    .append(&Record::Aux { tag: AUX_SWEEP, bytes: Vec::new() })
                    .expect("journal append");
                engine.full_sweep(&world.heap);
            }
            Op::Event(e, slots) => {
                let binding = world.binding(slots);
                let seq =
                    journal.append(&Record::Event { event: *e, binding }).expect("journal append");
                let before = engine.triggers().len();
                engine.try_process(&world.heap, *e, binding)?;
                let fired: Vec<Trigger> = engine.triggers()[before..].to_vec();
                for (ord, t) in fired.iter().enumerate() {
                    let ordinal = ord as u32;
                    journal
                        .append(&Record::Trigger {
                            event_seq: seq,
                            ordinal,
                            block,
                            step: t.step as u64,
                            verdict: t.verdict,
                            binding: t.binding,
                        })
                        .expect("journal append");
                    on_trigger(seq, ordinal);
                }
            }
        }
        if (first_op_index + i + 1) % checkpoint_every == 0 {
            journal.sync().expect("journal sync");
            if let Some(payload) = engine.snapshot_bytes() {
                let covered = journal.next_seq();
                write_checkpoint(dir, *next_generation, covered, &payload)
                    .expect("checkpoint write");
                journal
                    .append(&Record::CheckpointMark { generation: *next_generation, seq: covered })
                    .expect("journal append");
                *next_generation += 1;
            }
        }
    }
    Ok(())
}

fn last_segment_path(dir: &Path) -> Option<PathBuf> {
    let mut last = None;
    for index in 0u64.. {
        let p = dir.join(format!("journal-{index:08}"));
        if p.exists() {
            last = Some(p);
        } else {
            break;
        }
    }
    last
}

fn flip_bit(path: &Path, offset: u64, bit: u8) {
    let mut bytes = std::fs::read(path).expect("read artifact");
    let i = offset as usize;
    if i < bytes.len() {
        bytes[i] ^= 1 << (bit % 8);
        std::fs::write(path, bytes).expect("rewrite artifact");
    }
}

/// Mutilates the on-disk artifacts per `kill`, as if the process died at
/// an adversarial byte.
fn apply_kill(dir: &Path, kill: KillClass, rng: &mut SplitMix64) {
    match kill {
        KillClass::TruncateJournal(pct) => {
            if let Some(path) = last_segment_path(dir) {
                let len = std::fs::metadata(&path).expect("stat segment").len();
                let keep = len * u64::from(pct.min(100)) / 100;
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .expect("open segment")
                    .set_len(keep)
                    .expect("truncate segment");
            }
        }
        KillClass::BitFlipJournal => {
            if let Some(path) = last_segment_path(dir) {
                let len = std::fs::metadata(&path).expect("stat segment").len();
                if len > SEGMENT_HEADER_LEN {
                    let span = len - SEGMENT_HEADER_LEN;
                    let offset = SEGMENT_HEADER_LEN + rng.gen_range(span as usize) as u64;
                    flip_bit(&path, offset, (rng.gen_range(8)) as u8);
                }
            }
        }
        KillClass::TruncateCheckpoint => {
            if let Some(&generation) = list_checkpoints(dir).last() {
                let path = checkpoint_path(dir, generation);
                let len = std::fs::metadata(&path).expect("stat checkpoint").len();
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .expect("open checkpoint")
                    .set_len(len / 2)
                    .expect("truncate checkpoint");
            }
        }
        KillClass::BitFlipCheckpoint => {
            if let Some(&generation) = list_checkpoints(dir).last() {
                let path = checkpoint_path(dir, generation);
                let len = std::fs::metadata(&path).expect("stat checkpoint").len();
                if len > 0 {
                    flip_bit(&path, rng.gen_range(len as usize) as u64, rng.gen_range(8) as u8);
                }
            }
        }
    }
}

/// Runs property block `block` of `spec` under `policy`, kills the
/// journaled run at a seed-chosen op via `kill`, recovers from the
/// mutilated artifacts in `dir`, finishes the schedule, and differentially
/// checks the result against an uninterrupted oracle run.
///
/// `dir` is created (and wiped) by the harness; callers own its cleanup.
///
/// # Errors
///
/// Any [`EngineError`] from the engine, the recovery scan, or the final
/// invariant checks — under correct operation, none.
///
/// # Panics
///
/// Panics on IO failure of the scratch directory, or if `block` is out of
/// range for `spec`.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn crash_and_recover(
    spec: &CompiledSpec,
    block: usize,
    policy: GcPolicy,
    seed: u64,
    events: usize,
    checkpoint_every: usize,
    kill: KillClass,
    dir: &Path,
) -> Result<CrashOutcome, EngineError> {
    if dir.exists() {
        std::fs::remove_dir_all(dir).expect("clear scratch dir");
    }
    let checkpoint_every = checkpoint_every.max(1);
    let ops = schedule(spec, seed, events);
    let (oracle_stats, oracle_triggers, trace) = oracle_run(spec, block, policy, &ops)?;
    let reference_triggers = {
        let prop = &spec.properties[block];
        dedup(&monitor_trace(&prop.formalism, prop.goal, &trace).triggers)
    };

    // The crash point and mutilation offsets come from a stream distinct
    // from the schedule's, salted by kill class.
    let mut crash_rng =
        SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(kill.salt()));
    let span = (ops.len() / 2).max(1);
    let crash_op = ops.len() / 4 + crash_rng.gen_range(span);

    // --- Pre-crash journaled run -----------------------------------------
    let mut journal = JournalWriter::create_with(dir, SEGMENT_BYTES).expect("create journal");
    journal
        .append(&Record::Aux { tag: AUX_CT_INIT, bytes: (POOL as u32).to_le_bytes().to_vec() })
        .expect("journal append");
    let mut world = World::new();
    let mut engine = build_engine(spec, block, policy);
    let mut generation = 0u64;
    run_journaled(
        &mut world,
        &mut engine,
        &mut journal,
        dir,
        block as u16,
        &ops[..crash_op],
        0,
        checkpoint_every,
        &mut generation,
        |_, _| {},
    )?;
    // Model the bytes that reached the OS before the kill; the mutilation
    // below decides which of them survive.
    journal.sync().expect("journal sync");
    drop(journal);
    drop(world);
    drop(engine);

    apply_kill(dir, kill, &mut crash_rng);

    // --- Recovery ---------------------------------------------------------
    let scan = read_journal(dir)?;
    let lost_bytes = scan.truncation.as_ref().map_or(0, |t| t.lost_bytes);
    let (checkpoint, _skipped) = load_latest_checkpoint(dir, scan.next_seq);
    let hwm = scan.trigger_high_water_mark();

    let mut world = World::new();
    let mut engine = build_engine(spec, block, policy);
    let mut replay_from = 0u64;
    let mut checkpoint_seq = None;
    if let Some(cp) = &checkpoint {
        engine.restore_snapshot(&cp.payload, &cp.file)?;
        replay_from = cp.seq;
        checkpoint_seq = Some(cp.seq);
    }

    let mut delivered: HashSet<(u64, u32)> = HashSet::new();
    let mut duplicate_deliveries = 0u64;
    let deliver = |key: (u64, u32), dups: &mut u64, set: &mut HashSet<(u64, u32)>| {
        if !set.insert(key) {
            *dups += 1;
        }
    };

    // Replay the durable prefix: heap ops rebuild the world from sequence
    // 0 (identical ObjIds), engine effects apply only past the checkpoint.
    let mut op_records = 0usize;
    for sr in &scan.records {
        match &sr.record {
            Record::Aux { tag, bytes } if *tag == AUX_CT_INIT => {
                let pool =
                    bytes.get(..4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize);
                if pool != Some(POOL) {
                    return Err(EngineError::CorruptJournal {
                        file: dir.display().to_string(),
                        offset: 0,
                        detail: "crash-harness init record names a different pool size".into(),
                    });
                }
            }
            Record::Aux { tag, bytes } if *tag == AUX_CT_KILL => {
                op_records += 1;
                let slot = bytes
                    .get(..4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize)
                    .unwrap_or(0);
                world.kill(slot % POOL);
            }
            Record::Aux { tag, .. } if *tag == AUX_CT_COLLECT => {
                op_records += 1;
                world.heap.collect();
            }
            Record::Aux { tag, .. } if *tag == AUX_SWEEP => {
                op_records += 1;
                if sr.seq >= replay_from {
                    engine.full_sweep(&world.heap);
                }
            }
            Record::Event { event, binding } => {
                op_records += 1;
                if sr.seq >= replay_from {
                    let before = engine.triggers().len();
                    engine.try_process(&world.heap, *event, *binding)?;
                    let fired = engine.triggers().len() - before;
                    for ord in 0..fired as u32 {
                        // Reports at or below the durable high-water mark
                        // were already delivered before the crash — their
                        // journal records account for them below.
                        if hwm.is_none_or(|h| (sr.seq, ord) > h) {
                            deliver((sr.seq, ord), &mut duplicate_deliveries, &mut delivered);
                        }
                    }
                }
            }
            Record::Trigger { event_seq, ordinal, .. } => {
                deliver((*event_seq, *ordinal), &mut duplicate_deliveries, &mut delivered);
            }
            _ => {}
        }
    }

    // Satellite of the recovery contract: dead keys whose deaths predate
    // the checkpoint are re-flagged through the ALIVENESS path, and the
    // recovered state must be structurally sound before resuming.
    let reflagged = engine.reflag_dead_keys(&world.heap);
    engine.check_invariants(&world.heap)?;

    // --- Resume the lost tail of the schedule ----------------------------
    let mut journal = JournalWriter::resume(dir, &scan).expect("resume journal");
    let mut generation = list_checkpoints(dir).last().map_or(0, |g| g + 1);
    let resumed_at_op = op_records;
    {
        let dups = &mut duplicate_deliveries;
        let set = &mut delivered;
        run_journaled(
            &mut world,
            &mut engine,
            &mut journal,
            dir,
            block as u16,
            &ops[resumed_at_op..],
            resumed_at_op,
            checkpoint_every,
            &mut generation,
            |seq, ord| {
                if !set.insert((seq, ord)) {
                    *dups += 1;
                }
            },
        )?;
    }
    journal.sync().expect("journal sync");
    engine.finish(&world.heap);
    engine.check_invariants(&world.heap)?;

    Ok(CrashOutcome {
        trace_len: trace.len(),
        crash_op,
        resumed_at_op,
        checkpoint_seq,
        lost_bytes,
        reflagged,
        oracle_stats,
        recovered_stats: engine.stats(),
        oracle_triggers,
        recovered_triggers: dedup(engine.triggers()),
        reference_triggers,
        delivered: delivered.len() as u64,
        duplicate_deliveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "rv-crashtest-{}-{}-{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn has_next_spec() -> CompiledSpec {
        CompiledSpec::from_source(
            r#"HasNext(Iterator i) {
                event hasnexttrue(i);
                event hasnextfalse(i);
                event next(i);
                fsm:
                    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
                    more [ hasnexttrue -> more  next -> unknown ]
                    none [ hasnextfalse -> none  next -> error ]
                    error []
                @error { report "bad"; }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn every_kill_class_recovers_to_the_oracle_outcome() {
        let spec = has_next_spec();
        for kill in KillClass::ALL {
            let dir = scratch_dir("classes");
            let out =
                crash_and_recover(&spec, 0, GcPolicy::CoenableLazy, 7, 96, 8, kill, &dir).unwrap();
            assert!(
                out.ok(),
                "{}: verdicts_match={} stats_match={} dups={} delivered={} \
                 recovered={:?} oracle={:?}",
                kill.label(),
                out.verdicts_match(),
                out.stats_match(),
                out.duplicate_deliveries,
                out.delivered,
                out.recovered_stats,
                out.oracle_stats
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn losing_the_whole_journal_restarts_from_scratch() {
        let spec = has_next_spec();
        let dir = scratch_dir("wipe");
        // Huge checkpoint interval: no checkpoint is ever written, and
        // truncating the only segment to zero bytes leaves nothing durable
        // — recovery must re-run the entire schedule.
        let out = crash_and_recover(
            &spec,
            0,
            GcPolicy::AllParamsDead,
            11,
            48,
            10_000,
            KillClass::TruncateJournal(0),
            &dir,
        )
        .unwrap();
        assert_eq!(out.resumed_at_op, 0, "nothing durable, everything re-executed");
        assert!(out.checkpoint_seq.is_none());
        assert!(out.ok(), "recovered={:?} oracle={:?}", out.recovered_stats, out.oracle_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_runs_are_reproducible_and_actually_lose_bytes() {
        let spec = has_next_spec();
        let dir_a = scratch_dir("repro");
        let dir_b = scratch_dir("repro");
        let kill = KillClass::TruncateJournal(55);
        let a =
            crash_and_recover(&spec, 0, GcPolicy::CoenableLazy, 13, 96, 8, kill, &dir_a).unwrap();
        let b =
            crash_and_recover(&spec, 0, GcPolicy::CoenableLazy, 13, 96, 8, kill, &dir_b).unwrap();
        assert_eq!(a.recovered_stats, b.recovered_stats, "same seed, same run");
        assert_eq!(a.crash_op, b.crash_op);
        assert_eq!(a.resumed_at_op, b.resumed_at_op);
        assert!(a.lost_bytes > 0, "a 55% cut must discard bytes: {a:?}");
        assert!(a.resumed_at_op < a.crash_op, "some executed ops must have been lost");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
