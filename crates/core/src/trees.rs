//! The specialized weak-keyed indexing structures of §4: `RVMap` and
//! `RVSet`.
//!
//! An [`RvMap`] maps (partial) parameter instances to values — monitor ids
//! in the exact-instance tables, monitor sets in the indexing trees of
//! Figure 6. Keys hold their objects weakly: whenever an operation (`get`,
//! `insert`, or an explicit maintenance tick) runs, the map *expunges* a
//! bounded window of entries, looking for keys whose referents were
//! garbage collected; each dead key first *notifies* the engine about the
//! value beneath it (Figure 7 A — so monitor instances can evaluate their
//! ALIVENESS) and is then unlinked (Figure 7 B).
//!
//! An [`RvSet`] is a monitor-instance set supporting the one-pass
//! compaction of Figure 8: members flagged unnecessary or terminated are
//! dropped whenever the set is touched.

use std::collections::HashMap;

use rv_heap::Heap;

use crate::binding::Binding;
use crate::store::{MonitorId, MonitorStore};

/// Maintenance callbacks invoked while an [`RvMap`] scans its entries
/// (§5.1.1: "whenever an RVMap looks for keys with null referents it also
/// checks the values of mappings which do not have null referents").
pub trait Maintainer<V> {
    /// A key's referent died: the entry has been unlinked; `value` is the
    /// orphaned subtree (notify the monitors below it — Figure 7).
    fn on_dead(&mut self, key: Binding, value: V);

    /// A live-keyed entry was scanned; return `true` to drop the entry
    /// (e.g. a flagged monitor instance or an emptied set).
    fn on_live(&mut self, key: &Binding, value: &mut V) -> bool {
        let _ = (key, value);
        false
    }
}

/// A [`Maintainer`] from a dead-key closure, with no live-entry action
/// (convenient in tests and simple maps).
#[derive(Debug)]
pub struct DeadOnly<F>(pub F);

impl<V, F: FnMut(Binding, V)> Maintainer<V> for DeadOnly<F> {
    fn on_dead(&mut self, key: Binding, value: V) {
        (self.0)(key, value);
    }
}

/// How many entries an operation inspects for dead keys. The paper's
/// RVMap "looks through a subset of its entries" on every access; a small
/// constant window amortizes the scan without latency spikes.
pub const DEFAULT_EXPUNGE_WINDOW: usize = 4;

/// A hash map from parameter instances to `V`, with weak keys and lazy
/// expunging.
#[derive(Debug)]
pub struct RvMap<V> {
    map: HashMap<Binding, V>,
    /// Ring of keys for incremental scanning. May contain stale keys
    /// (already removed); checked against `map` before acting.
    ring: Vec<Binding>,
    cursor: usize,
    window: usize,
}

impl<V> Default for RvMap<V> {
    fn default() -> Self {
        RvMap::new()
    }
}

impl<V> RvMap<V> {
    /// An empty map with the default expunge window.
    #[must_use]
    pub fn new() -> Self {
        RvMap { map: HashMap::new(), ring: Vec::new(), cursor: 0, window: DEFAULT_EXPUNGE_WINDOW }
    }

    /// Overrides the expunge window (0 disables lazy expunging — used by
    /// the "no GC" baseline and the eager-vs-lazy ablation).
    pub fn set_window(&mut self, window: usize) {
        self.window = window;
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key` without maintenance (used by read-only paths).
    #[must_use]
    pub fn peek(&self, key: &Binding) -> Option<&V> {
        self.map.get(key)
    }

    /// Looks up `key`, first expunging a window of entries. Dead entries
    /// are passed to the maintainer before removal; live entries may be
    /// compacted or dropped by it.
    pub fn get_mut(
        &mut self,
        heap: &Heap,
        key: Binding,
        maintainer: &mut impl Maintainer<V>,
    ) -> Option<&mut V> {
        self.expunge(heap, self.window, maintainer);
        self.map.get_mut(&key)
    }

    /// Inserts a mapping, first expunging a window of entries. Returns the
    /// previous value for the key, if any.
    pub fn insert(
        &mut self,
        heap: &Heap,
        key: Binding,
        value: V,
        maintainer: &mut impl Maintainer<V>,
    ) -> Option<V> {
        self.expunge(heap, self.window, maintainer);
        let prev = self.map.insert(key, value);
        if prev.is_none() {
            self.ring.push(key);
        }
        prev
    }

    /// Removes a mapping directly (no notification).
    pub fn remove(&mut self, key: &Binding) -> Option<V> {
        self.map.remove(key)
    }

    /// Scans up to `n` ring slots: dead-keyed entries are unlinked and
    /// passed to the maintainer (Figure 7); live-keyed entries are offered
    /// for value maintenance (set compaction / flagged-monitor removal,
    /// §5.1.1 and Figure 8). Also compacts the ring when it has grown far
    /// beyond the live map.
    pub fn expunge(&mut self, heap: &Heap, n: usize, maintainer: &mut impl Maintainer<V>) {
        if self.ring.is_empty() {
            return;
        }
        for _ in 0..n.min(self.ring.len()) {
            if self.cursor >= self.ring.len() {
                self.cursor = 0;
            }
            let key = self.ring[self.cursor];
            self.cursor += 1;
            let Some(value) = self.map.get_mut(&key) else {
                continue; // stale ring slot
            };
            let dead = key.iter().any(|(_, obj)| !heap.is_alive(obj));
            if dead {
                // invariant: the `get_mut` above proved `key` present and
                // nothing has touched the map since, so the remove yields
                // the value; the checked form avoids a panic path anyway.
                debug_assert!(self.map.contains_key(&key), "key vanished mid-expunge");
                if let Some(value) = self.map.remove(&key) {
                    maintainer.on_dead(key, value);
                }
            } else if maintainer.on_live(&key, value) {
                self.map.remove(&key);
            }
        }
        if self.ring.len() > 32 && self.ring.len() > self.map.len() * 2 {
            self.ring.retain(|k| self.map.contains_key(k));
            self.cursor = 0;
        }
    }

    /// Runs maintenance over *every* entry (used by the eager-collection
    /// ablation and by safepoint sweeps). Entries are visited in binding
    /// order: hash order would make the release order — and therefore
    /// slot reuse and snapshot bytes — vary between identical runs, which
    /// the crash-recovery harness's differential checks cannot tolerate.
    pub fn expunge_all(&mut self, heap: &Heap, maintainer: &mut impl Maintainer<V>) {
        let mut keys: Vec<Binding> = self.map.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if key.iter().any(|(_, obj)| !heap.is_alive(obj)) {
                if let Some(value) = self.map.remove(&key) {
                    maintainer.on_dead(key, value);
                }
            } else if let Some(value) = self.map.get_mut(&key) {
                if maintainer.on_live(&key, value) {
                    self.map.remove(&key);
                }
            }
        }
        self.ring.retain(|k| self.map.contains_key(k));
        self.cursor = 0;
    }

    /// Iterates over live entries (no maintenance).
    pub fn iter(&self) -> impl Iterator<Item = (&Binding, &V)> {
        self.map.iter()
    }

    /// Drains the map, yielding every value (no notification).
    pub fn drain(&mut self) -> impl Iterator<Item = (Binding, V)> + '_ {
        self.ring.clear();
        self.cursor = 0;
        self.map.drain()
    }

    /// Estimated heap bytes held by the map's live entries (the Fig. 9B
    /// metric counts retained content, not allocator capacity).
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.map.len() * (std::mem::size_of::<Binding>() + std::mem::size_of::<V>())
            + self.ring.len() * std::mem::size_of::<Binding>()
    }

    // --- Snapshot access (crate-internal) --------------------------------
    //
    // The ring and cursor are serialized *verbatim*: they determine which
    // entries future accesses will expunge, so restoring them exactly is
    // what makes a recovered run's flag/collect schedule — and therefore
    // its FM/CM statistics — match the uninterrupted one.

    /// The expunge-schedule state: `(window, cursor, ring)`.
    pub(crate) fn snapshot_schedule(&self) -> (usize, usize, &[Binding]) {
        (self.window, self.cursor, &self.ring)
    }

    /// The live entries, in hash order (snapshot encoders sort them).
    pub(crate) fn snapshot_entries(&self) -> &HashMap<Binding, V> {
        &self.map
    }

    /// Replaces the map's state wholesale (restore path).
    pub(crate) fn restore_parts(
        &mut self,
        window: usize,
        cursor: usize,
        ring: Vec<Binding>,
        entries: Vec<(Binding, V)>,
    ) {
        self.map = entries.into_iter().collect();
        self.ring = ring;
        self.cursor = cursor;
        self.window = window;
    }
}

/// A set of monitor instances with Figure 8 compaction.
#[derive(Debug, Default, Clone)]
pub struct RvSet {
    members: Vec<MonitorId>,
}

impl RvSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        RvSet::default()
    }

    /// A set with a single member.
    #[must_use]
    pub fn singleton(id: MonitorId) -> Self {
        RvSet { members: vec![id] }
    }

    /// Adds a member (no duplicate check: the engine inserts each monitor
    /// into each tree exactly once, at creation).
    pub fn push(&mut self, id: MonitorId) {
        self.members.push(id);
    }

    /// Current member count (including members pending compaction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members (may include flagged/terminated ids between
    /// compactions).
    #[must_use]
    pub fn members(&self) -> &[MonitorId] {
        &self.members
    }

    /// One-pass compaction (Figure 8): removes members that are flagged
    /// unnecessary or terminated, releasing one store reference each.
    pub fn compact<S>(&mut self, store: &mut MonitorStore<S>) {
        self.members.retain(|&id| {
            if store.is_collectable(id) {
                store.release(id);
                false
            } else {
                true
            }
        });
    }

    /// Releases every member reference (used when the containing map entry
    /// dies — "if a data structure itself is garbage collected, any
    /// contained monitor instances never need to be collected separately").
    pub fn release_all<S>(&mut self, store: &mut MonitorStore<S>) {
        for &id in &self.members {
            store.release(id);
        }
        self.members.clear();
    }

    /// Estimated heap bytes held by the set's members.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.members.len() * std::mem::size_of::<MonitorId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_heap::HeapConfig;
    use rv_logic::{EventId, ParamId};

    fn heap_with(n: usize) -> (Heap, Vec<rv_heap::ObjId>) {
        let mut h = Heap::new(HeapConfig::manual());
        let c = h.register_class("Obj");
        let f = h.enter_frame();
        let ids = (0..n).map(|_| h.alloc(c)).collect();
        let _keep_rooted = f; // never exited: objects stay rooted
        (h, ids)
    }

    #[test]
    fn get_and_insert_round_trip() {
        let (heap, o) = heap_with(2);
        let mut m: RvMap<u32> = RvMap::new();
        let k = Binding::from_pairs(&[(ParamId(0), o[0])]);
        let mut dead = Vec::new();
        let mut on_dead = DeadOnly(|b: Binding, v: u32| dead.push((b, v)));
        assert!(m.insert(&heap, k, 7, &mut on_dead).is_none());
        assert_eq!(m.get_mut(&heap, k, &mut on_dead).copied(), Some(7));
        assert_eq!(m.len(), 1);
        assert!(dead.is_empty());
    }

    #[test]
    fn dead_keys_are_expunged_lazily_with_notification() {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let outer = heap.enter_frame();
        let keep = heap.alloc(cls);
        let inner = heap.enter_frame();
        let dying = heap.alloc(cls);
        let mut m: RvMap<u32> = RvMap::new();
        let mut notified = Vec::new();
        let mut on_dead = DeadOnly(|b: Binding, v: u32| notified.push((b, v)));
        let k_keep = Binding::from_pairs(&[(ParamId(0), keep)]);
        let k_die = Binding::from_pairs(&[(ParamId(0), dying)]);
        m.insert(&heap, k_keep, 1, &mut on_dead);
        m.insert(&heap, k_die, 2, &mut on_dead);
        heap.exit_frame(inner);
        heap.collect();
        // Nothing expunged until the map is touched (lazy).
        assert_eq!(m.len(), 2);
        // Touch it enough to sweep the whole ring.
        m.expunge(&heap, 16, &mut on_dead);
        assert_eq!(m.len(), 1);
        assert_eq!(notified, vec![(k_die, 2)]);
        assert!(m.peek(&k_keep).is_some());
        heap.exit_frame(outer);
    }

    #[test]
    fn composite_keys_die_when_any_component_dies() {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _outer = heap.enter_frame();
        let coll = heap.alloc(cls);
        let inner = heap.enter_frame();
        let iter = heap.alloc(cls);
        let mut m: RvMap<u32> = RvMap::new();
        let k = Binding::from_pairs(&[(ParamId(0), coll), (ParamId(1), iter)]);
        let mut count = 0;
        let mut on_dead = DeadOnly(|_b: Binding, _v: u32| count += 1);
        m.insert(&heap, k, 9, &mut on_dead);
        heap.exit_frame(inner);
        heap.collect();
        m.expunge(&heap, 16, &mut on_dead);
        assert_eq!(count, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn window_zero_disables_lazy_expunge() {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let f = heap.enter_frame();
        let o = heap.alloc(cls);
        let mut m: RvMap<u32> = RvMap::new();
        m.set_window(0);
        let mut on_dead = DeadOnly(|_: Binding, _: u32| panic!("no expunge expected"));
        m.insert(&heap, Binding::from_pairs(&[(ParamId(0), o)]), 1, &mut on_dead);
        heap.exit_frame(f);
        heap.collect();
        let _ = m.get_mut(&heap, Binding::BOTTOM, &mut on_dead);
        assert_eq!(m.len(), 1, "entry retained with window 0");
    }

    #[test]
    fn ring_compacts_after_many_removals() {
        let (heap, o) = heap_with(1);
        let mut m: RvMap<u32> = RvMap::new();
        let mut on_dead = DeadOnly(|_: Binding, _: u32| {});
        // Insert/remove the same key repeatedly; the ring must not grow
        // unboundedly.
        for i in 0..1000 {
            let k = Binding::from_pairs(&[(ParamId(0), o[0])]);
            m.insert(&heap, k, i, &mut on_dead);
            m.remove(&k);
        }
        assert!(m.ring.len() <= 64, "ring length {} not compacted", m.ring.len());
    }

    #[test]
    fn rv_set_compaction_releases_references() {
        let mut store: MonitorStore<u32> = MonitorStore::new();
        let (heap, o) = heap_with(1);
        let _ = heap;
        let b = Binding::from_pairs(&[(ParamId(0), o[0])]);
        let a = store.create(b, 0, EventId(0));
        let bb = store.create(b, 0, EventId(0));
        store.retain(a);
        store.retain(bb);
        let mut set = RvSet::new();
        set.push(a);
        set.push(bb);
        store.flag(a);
        set.compact(&mut store);
        assert_eq!(set.len(), 1);
        assert_eq!(set.members(), &[bb]);
        assert_eq!(store.collected(), 1);
        set.release_all(&mut store);
        assert_eq!(store.live(), 0);
    }
}

#[cfg(test)]
mod maintainer_tests {
    use super::*;
    use rv_heap::HeapConfig;
    use rv_logic::ParamId;

    struct Dropper {
        drop_below: u32,
        dead: usize,
    }

    impl Maintainer<u32> for Dropper {
        fn on_dead(&mut self, _key: Binding, _value: u32) {
            self.dead += 1;
        }

        fn on_live(&mut self, _key: &Binding, value: &mut u32) -> bool {
            *value < self.drop_below
        }
    }

    #[test]
    fn live_entry_maintenance_can_drop_mappings() {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _f = heap.enter_frame();
        let a = heap.alloc(cls);
        let b = heap.alloc(cls);
        let mut m: RvMap<u32> = RvMap::new();
        let mut keep = DeadOnly(|_: Binding, _: u32| {});
        m.insert(&heap, Binding::from_pairs(&[(ParamId(0), a)]), 1, &mut keep);
        m.insert(&heap, Binding::from_pairs(&[(ParamId(0), b)]), 10, &mut keep);
        let mut dropper = Dropper { drop_below: 5, dead: 0 };
        m.expunge_all(&heap, &mut dropper);
        assert_eq!(m.len(), 1, "the value-1 entry is dropped by on_live");
        assert_eq!(dropper.dead, 0);
        assert!(m.peek(&Binding::from_pairs(&[(ParamId(0), b)])).is_some());
    }

    #[test]
    fn window_scans_eventually_apply_live_maintenance() {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _f = heap.enter_frame();
        let mut m: RvMap<u32> = RvMap::new();
        let mut keep = DeadOnly(|_: Binding, _: u32| {});
        let mut keys = Vec::new();
        for i in 0..16 {
            let o = heap.alloc(cls);
            let k = Binding::from_pairs(&[(ParamId(0), o)]);
            keys.push(k);
            m.insert(&heap, k, i, &mut keep);
        }
        // Repeated window scans with a dropper: all sub-5 entries go.
        let mut dropper = Dropper { drop_below: 5, dead: 0 };
        for _ in 0..32 {
            m.expunge(&heap, 4, &mut dropper);
        }
        assert_eq!(m.len(), 11);
    }

    #[test]
    fn drain_yields_everything_without_notification() {
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _f = heap.enter_frame();
        let a = heap.alloc(cls);
        let mut m: RvMap<u32> = RvMap::new();
        let mut keep = DeadOnly(|_: Binding, _: u32| {});
        m.insert(&heap, Binding::from_pairs(&[(ParamId(0), a)]), 7, &mut keep);
        let drained: Vec<(Binding, u32)> = m.drain().collect();
        assert_eq!(drained.len(), 1);
        assert!(m.is_empty());
    }
}
