//! [`ResilientClient`] — the exactly-once client half of the
//! self-healing rvmond story.
//!
//! The server deduplicates session-stamped lines ([`FRAME_EVENT_SEQ`])
//! by a per-session `cseq` high-water mark *before* journaling, so this
//! client can blindly resend its entire unacknowledged window after any
//! disturbance — TCP faults, supervisor restarts of the tenant worker,
//! hot spec reloads, wire-level chaos — and the tenant's journal (hence
//! its trigger stream) stays byte-identical to an undisturbed run. On
//! the read side, goal reports are pulled with [`FRAME_POLL`] and
//! filtered through a client-side `(event_seq, ordinal)` high-water
//! mark, so duplicated or delayed reply frames can never deliver a
//! report twice. Together the two HWMs give an exactly-once *observed*
//! trigger stream across arbitrary disconnects.
//!
//! The write-side guarantee leans on [`Backpressure::Block`]
//! (the default): under `Shed` a dropped line answers a retryable 431
//! and the resend machinery recovers it, but a client that gives up
//! mid-retry downgrades to at-most-once.
//!
//! [`Backpressure::Block`]: crate::service::Backpressure::Block

use std::collections::VecDeque;
use std::io::{self, ErrorKind};
use std::net::TcpStream;
use std::time::Duration;

use crate::service::{
    decode_triggers, encode_hello, read_frame, write_frame, TenantOptions, TriggerRecord,
    FRAME_BYE, FRAME_EVENT_SEQ, FRAME_HELLO, FRAME_OK, FRAME_POLL, FRAME_REJECT, FRAME_RELOAD,
    FRAME_RELOADED, FRAME_STATS, FRAME_STATS_REPLY, FRAME_SYNC, FRAME_SYNCED, FRAME_TRIGGERS,
    REJECT_BAD_SPEC, REJECT_RESUME_GONE, REJECT_SPEC_MISMATCH,
};

/// Reconnect/retry policy for a [`ResilientClient`].
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Attempts per operation (first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Ceiling on the doubled backoff.
    pub backoff_cap: Duration,
    /// Socket read timeout — a partitioned connection surfaces as a
    /// timed-out read and triggers a reconnect.
    pub read_timeout: Duration,
    /// Seed for the deterministic (splitmix64) backoff jitter.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 16,
            backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            seed: 0x00C1_1E47,
        }
    }
}

/// Counters the client keeps about its own resilience machinery.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// TCP connections established (1 for an undisturbed run).
    pub connects: u64,
    /// Reconnections after a fault (`connects - 1`).
    pub reconnects: u64,
    /// Window lines blindly resent across reconnects (the server
    /// dedups them by `(session, cseq)`).
    pub resent_lines: u64,
    /// Retryable rejects and transport faults absorbed by retry loops.
    pub rejects_retried: u64,
    /// Goal reports accepted past the client-side HWM.
    pub triggers_observed: u64,
    /// Reports discarded as duplicates by the client-side HWM.
    pub deduped_triggers: u64,
}

impl ClientStats {
    /// Renders the counters as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connects\":{},\"reconnects\":{},\"resent_lines\":{},\"rejects_retried\":{},\
             \"triggers_observed\":{},\"deduped_triggers\":{}}}",
            self.connects,
            self.reconnects,
            self.resent_lines,
            self.rejects_retried,
            self.triggers_observed,
            self.deduped_triggers,
        )
    }
}

/// Rejects that retrying can never fix: wrong spec (409), failed
/// compile (422), or a resume point evicted from the trigger log (410).
/// Everything else — including a 400, which chaos can manufacture by
/// corrupting one of *our* frames in flight — is worth a
/// reconnect-and-resend.
fn is_fatal_code(code: u16) -> bool {
    matches!(code, REJECT_SPEC_MISMATCH | REJECT_BAD_SPEC | REJECT_RESUME_GONE)
}

fn fatal(code: u16, msg: &str) -> io::Error {
    io::Error::new(ErrorKind::Unsupported, format!("fatal reject {code}: {msg}"))
}

fn is_fatal(e: &io::Error) -> bool {
    e.kind() == ErrorKind::Unsupported
}

fn decode_reject(p: &[u8]) -> (u16, String) {
    let code = p.get(..2).and_then(|b| b.try_into().ok()).map_or(0, u16::from_le_bytes);
    (code, String::from_utf8_lossy(p.get(2..).unwrap_or(&[])).into_owned())
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reconnecting, exactly-once client for one tenant of an rvmond
/// endpoint. See the module docs for the protocol argument.
pub struct ResilientClient {
    addr: String,
    tenant: String,
    spec: String,
    opts: TenantOptions,
    policy: ReconnectPolicy,
    session: u64,
    next_cseq: u64,
    /// Lines sent but not yet covered by an acknowledged barrier, in
    /// cseq order — the blind-resend window.
    window: VecDeque<(u64, String)>,
    /// Client-side trigger high-water mark.
    hwm: (u64, u32),
    stream: Option<TcpStream>,
    rng: u64,
    stats: ClientStats,
    spec_sent: bool,
}

impl ResilientClient {
    /// Connects and attaches to (or creates) `tenant` at `addr`.
    /// `session` identifies this logical client to the server's dedup
    /// machinery and must be non-zero (0 is coerced to 1); reuse of a
    /// session id across client *restarts* is the caller's contract —
    /// this struct resumes its own session across reconnects.
    ///
    /// # Errors
    ///
    /// Connection/HELLO failures after `policy.max_attempts` tries, or
    /// a fatal reject (bad spec, spec mismatch).
    pub fn connect(
        addr: &str,
        tenant: &str,
        spec: &str,
        opts: TenantOptions,
        session: u64,
        policy: ReconnectPolicy,
    ) -> io::Result<ResilientClient> {
        let mut c = ResilientClient {
            addr: addr.to_owned(),
            tenant: tenant.to_owned(),
            spec: spec.to_owned(),
            opts,
            policy,
            session: if session == 0 { 1 } else { session },
            next_cseq: 1,
            window: VecDeque::new(),
            hwm: (0, 0),
            stream: None,
            rng: policy.seed | 1,
            stats: ClientStats::default(),
            spec_sent: false,
        };
        c.reconnect()?;
        Ok(c)
    }

    /// A copy of the resilience counters.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The client-side `(event_seq, ordinal)` trigger high-water mark.
    #[must_use]
    pub fn trigger_hwm(&self) -> (u64, u32) {
        self.hwm
    }

    /// This client's session id.
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    fn backoff_sleep(&mut self, attempt: u32) {
        let base = self.policy.backoff.saturating_mul(1u32 << attempt.min(10));
        let capped = base.min(self.policy.backoff_cap);
        let jitter = capped.mul_f64((splitmix64(&mut self.rng) % 256) as f64 / 1024.0);
        std::thread::sleep(capped + jitter);
    }

    /// (Re)establishes the connection with retries: HELLO (the full
    /// spec only on the first ever connect, an empty attach afterwards
    /// so a hot-reloaded spec doesn't 409) and a blind resend of the
    /// unacknowledged window.
    fn reconnect(&mut self) -> io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.try_connect() {
                Ok(()) => return Ok(()),
                Err(e) if is_fatal(&e) => return Err(e),
                Err(e) => {
                    self.stream = None;
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(e);
                    }
                    self.stats.rejects_retried += 1;
                    self.backoff_sleep(attempt - 1);
                }
            }
        }
    }

    fn try_connect(&mut self) -> io::Result<()> {
        self.stream = None;
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.policy.read_timeout))?;
        stream.set_nodelay(true)?;
        self.stream = Some(stream);
        let spec = if self.spec_sent { String::new() } else { self.spec.clone() };
        let hello = encode_hello(&self.tenant, &spec, &self.opts);
        let s = self.stream.as_mut().expect("just connected");
        write_frame(s, FRAME_HELLO, &hello)?;
        loop {
            match read_frame(s)? {
                None => {
                    return Err(io::Error::new(
                        ErrorKind::ConnectionAborted,
                        "server closed during HELLO",
                    ))
                }
                Some((FRAME_OK, _)) => break,
                Some((FRAME_REJECT, p)) => {
                    let (code, msg) = decode_reject(&p);
                    if is_fatal_code(code) {
                        return Err(fatal(code, &msg));
                    }
                    return Err(io::Error::other(format!("HELLO reject {code}: {msg}")));
                }
                Some(_) => {}
            }
        }
        self.spec_sent = true;
        self.stats.connects += 1;
        if self.stats.connects > 1 {
            self.stats.reconnects += 1;
        }
        let window: Vec<(u64, String)> = self.window.iter().cloned().collect();
        for (cseq, line) in &window {
            self.write_line(*cseq, line)?;
            self.stats.resent_lines += 1;
        }
        Ok(())
    }

    fn write_line(&mut self, cseq: u64, line: &str) -> io::Result<()> {
        let mut payload = Vec::with_capacity(16 + line.len());
        payload.extend_from_slice(&self.session.to_le_bytes());
        payload.extend_from_slice(&cseq.to_le_bytes());
        payload.extend_from_slice(line.as_bytes());
        let s = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(ErrorKind::NotConnected, "not connected"))?;
        write_frame(s, FRAME_EVENT_SEQ, &payload)
    }

    /// Queues and sends one trace-grammar line. A transport error here
    /// only drops the connection — the line stays in the window and the
    /// next [`ResilientClient::sync`] reconnects and resends it.
    /// Delivery is guaranteed only once a barrier returns.
    ///
    /// # Errors
    ///
    /// Only fatal rejects; transport faults are absorbed.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        let cseq = self.next_cseq;
        self.next_cseq += 1;
        self.window.push_back((cseq, line.to_owned()));
        if self.stream.is_some() {
            if let Err(e) = self.write_line(cseq, line) {
                if is_fatal(&e) {
                    return Err(e);
                }
                self.stream = None;
            }
        }
        Ok(())
    }

    /// Durability barrier: returns once every line sent so far is
    /// processed and fsynced server-side, then clears the resend
    /// window. Any disturbance — reconnect, retryable reject, timeout —
    /// makes the next attempt blind-resend the whole window first; the
    /// server's dedup keeps the journal identical regardless.
    ///
    /// # Errors
    ///
    /// Fatal rejects, or retry exhaustion.
    pub fn sync(&mut self) -> io::Result<u64> {
        let token = self.next_cseq - 1;
        let mut attempt = 0u32;
        loop {
            match self.try_sync(token) {
                Ok(t) => {
                    self.window.clear();
                    return Ok(t);
                }
                Err(e) if is_fatal(&e) => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            format!("sync retries exhausted: {e}"),
                        ));
                    }
                    self.stats.rejects_retried += 1;
                    self.stream = None;
                    self.backoff_sleep(attempt - 1);
                }
            }
        }
    }

    fn try_sync(&mut self, token: u64) -> io::Result<u64> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let s = self.stream.as_mut().expect("reconnected");
        write_frame(s, FRAME_SYNC, &token.to_le_bytes())?;
        loop {
            let s = self.stream.as_mut().expect("reconnected");
            match read_frame(s)? {
                None => {
                    return Err(io::Error::new(
                        ErrorKind::ConnectionAborted,
                        "server closed mid-barrier",
                    ))
                }
                Some((FRAME_SYNCED, p)) => {
                    let got =
                        p.get(..8).and_then(|b| b.try_into().ok()).map_or(0, u64::from_le_bytes);
                    if got == token {
                        // The barrier echoes the server's contiguous
                        // cseq HWM for our session. A shortfall means a
                        // frame was lost *inside* the connection (the
                        // server gap-discards everything past the hole)
                        // — retry: reconnect and resend the window.
                        let hwm =
                            p.get(8..16).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes);
                        if let Some(h) = hwm {
                            if h < token {
                                return Err(io::Error::other(format!(
                                    "barrier shortfall: server at cseq {h} of {token}"
                                )));
                            }
                        }
                        return Ok(got);
                    }
                    // A stale barrier echo (duplicated or delayed frame)
                    // from before a disturbance — ignore it.
                }
                Some((FRAME_REJECT, p)) => {
                    let (code, msg) = decode_reject(&p);
                    if is_fatal_code(code) {
                        return Err(fatal(code, &msg));
                    }
                    // Some submitted line may have been dropped
                    // server-side (restart, reload, shed): the retry
                    // path reconnects and resends the whole window.
                    return Err(io::Error::other(format!("reject {code}: {msg}")));
                }
                Some(_) => {}
            }
        }
    }

    /// Pulls the next batch of goal reports strictly past the client's
    /// high-water mark and advances it. Duplicates (server overlap or
    /// chaos-duplicated reply frames) are filtered and counted.
    ///
    /// # Errors
    ///
    /// Fatal rejects (including [`REJECT_RESUME_GONE`]) or retry
    /// exhaustion.
    pub fn poll_triggers(&mut self, max: u32) -> io::Result<Vec<TriggerRecord>> {
        let mut attempt = 0u32;
        loop {
            match self.try_poll(max) {
                Ok(batch) => {
                    let mut fresh = Vec::with_capacity(batch.len());
                    for t in batch {
                        if t.key() > self.hwm {
                            self.hwm = t.key();
                            self.stats.triggers_observed += 1;
                            fresh.push(t);
                        } else {
                            self.stats.deduped_triggers += 1;
                        }
                    }
                    return Ok(fresh);
                }
                Err(e) if is_fatal(&e) => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            format!("poll retries exhausted: {e}"),
                        ));
                    }
                    self.stats.rejects_retried += 1;
                    self.stream = None;
                    self.backoff_sleep(attempt - 1);
                }
            }
        }
    }

    fn try_poll(&mut self, max: u32) -> io::Result<Vec<TriggerRecord>> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let (seq, ord) = self.hwm;
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&ord.to_le_bytes());
        payload.extend_from_slice(&max.to_le_bytes());
        let s = self.stream.as_mut().expect("reconnected");
        write_frame(s, FRAME_POLL, &payload)?;
        loop {
            let s = self.stream.as_mut().expect("reconnected");
            match read_frame(s)? {
                None => {
                    return Err(io::Error::new(
                        ErrorKind::ConnectionAborted,
                        "server closed mid-poll",
                    ))
                }
                Some((FRAME_TRIGGERS, p)) => {
                    return decode_triggers(&p).ok_or_else(|| {
                        io::Error::new(ErrorKind::InvalidData, "malformed TRIGGERS payload")
                    });
                }
                Some((FRAME_REJECT, p)) => {
                    let (code, msg) = decode_reject(&p);
                    if is_fatal_code(code) {
                        return Err(fatal(code, &msg));
                    }
                    return Err(io::Error::other(format!("reject {code}: {msg}")));
                }
                Some(_) => {}
            }
        }
    }

    /// Hot-reloads the tenant's spec, retrying with the same idempotency
    /// `token` until the cutover is acknowledged — a lost
    /// acknowledgement can therefore never double-apply. Returns the new
    /// spec version.
    ///
    /// # Errors
    ///
    /// [`REJECT_BAD_SPEC`] (fatal) or retry exhaustion.
    pub fn reload(&mut self, token: u64, spec: &str) -> io::Result<u64> {
        let mut attempt = 0u32;
        loop {
            match self.try_reload(token, spec) {
                Ok(v) => return Ok(v),
                Err(e) if is_fatal(&e) => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            format!("reload retries exhausted: {e}"),
                        ));
                    }
                    self.stats.rejects_retried += 1;
                    self.stream = None;
                    self.backoff_sleep(attempt - 1);
                }
            }
        }
    }

    fn try_reload(&mut self, token: u64, spec: &str) -> io::Result<u64> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let mut payload = Vec::with_capacity(8 + spec.len());
        payload.extend_from_slice(&token.to_le_bytes());
        payload.extend_from_slice(spec.as_bytes());
        let s = self.stream.as_mut().expect("reconnected");
        write_frame(s, FRAME_RELOAD, &payload)?;
        loop {
            let s = self.stream.as_mut().expect("reconnected");
            match read_frame(s)? {
                None => {
                    return Err(io::Error::new(
                        ErrorKind::ConnectionAborted,
                        "server closed mid-reload",
                    ))
                }
                Some((FRAME_RELOADED, p)) => {
                    return Ok(p
                        .get(..8)
                        .and_then(|b| b.try_into().ok())
                        .map_or(0, u64::from_le_bytes));
                }
                Some((FRAME_REJECT, p)) => {
                    let (code, msg) = decode_reject(&p);
                    if is_fatal_code(code) {
                        return Err(fatal(code, &msg));
                    }
                    return Err(io::Error::other(format!("reject {code}: {msg}")));
                }
                Some(_) => {}
            }
        }
    }

    /// Fetches the server-side tenant stats JSON (engine, journal,
    /// per-stage latency histograms and SLO budget for this tenant) via
    /// [`FRAME_STATS`], with the usual reconnect-and-retry machinery.
    ///
    /// # Errors
    ///
    /// Fatal rejects or retry exhaustion.
    pub fn server_stats_json(&mut self) -> io::Result<String> {
        let mut attempt = 0u32;
        loop {
            match self.try_stats() {
                Ok(json) => return Ok(json),
                Err(e) if is_fatal(&e) => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            format!("stats retries exhausted: {e}"),
                        ));
                    }
                    self.stats.rejects_retried += 1;
                    self.stream = None;
                    self.backoff_sleep(attempt - 1);
                }
            }
        }
    }

    fn try_stats(&mut self) -> io::Result<String> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let s = self.stream.as_mut().expect("reconnected");
        write_frame(s, FRAME_STATS, &[])?;
        loop {
            let s = self.stream.as_mut().expect("reconnected");
            match read_frame(s)? {
                None => {
                    return Err(io::Error::new(
                        ErrorKind::ConnectionAborted,
                        "server closed mid-stats",
                    ))
                }
                Some((FRAME_STATS_REPLY, p)) => {
                    return String::from_utf8(p)
                        .map_err(|_| io::Error::new(ErrorKind::InvalidData, "non-UTF8 stats"));
                }
                Some((FRAME_REJECT, p)) => {
                    let (code, msg) = decode_reject(&p);
                    if is_fatal_code(code) {
                        return Err(fatal(code, &msg));
                    }
                    return Err(io::Error::other(format!("reject {code}: {msg}")));
                }
                Some(_) => {}
            }
        }
    }

    /// Graceful goodbye; returns the final counters.
    pub fn bye(mut self) -> ClientStats {
        if let Some(s) = self.stream.as_mut() {
            let _ = write_frame(s, FRAME_BYE, &[]);
        }
        self.stats
    }
}
