//! The differential chaos harness: engine-under-fault-injection versus
//! the Figure 5 reference oracle.
//!
//! [`run_block`] drives one property block of a compiled spec over a
//! seed-reproducible random workload on a
//! [`ChaosHeap`](rv_heap::ChaosHeap), which forces collections at
//! adversarial points, kills weak references early (but legally: only
//! already-unreachable objects die), and injects allocation-pressure
//! spikes. Because the engine observes the heap solely through liveness
//! queries, none of this may change its verdicts — Theorem 1 says a
//! collected or flagged monitor could never have triggered. The harness
//! asserts exactly that: the engine's goal reports equal the oracle's on
//! the same parametric trace, and [`Engine::check_invariants`] holds after
//! every injected fault.
//!
//! The same driver backs `rvmon chaos`, the fig10 `--chaos-seed` flag,
//! and the `chaos_differential` integration suite.

use rv_heap::{ChaosHeap, ObjId, SplitMix64};
use rv_logic::{AnyFormalism, EventId};
use rv_spec::CompiledSpec;

use crate::binding::Binding;
use crate::engine::{Engine, EngineConfig, GcPolicy};
use crate::error::EngineError;
use crate::reference::{monitor_trace, Trigger};
use crate::stats::EngineStats;

/// Live parameter objects available to the event generator at any time.
const POOL: usize = 6;

/// Per-event probability of killing (and replacing) a pool object instead
/// of emitting an event.
const KILL_PROB: f64 = 0.12;

/// The result of one differential chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Parametric events actually emitted.
    pub trace_len: usize,
    /// Engine goal reports: first report per binding, sorted.
    pub engine_triggers: Vec<Trigger>,
    /// Oracle goal reports, deduplicated and sorted the same way.
    pub oracle_triggers: Vec<Trigger>,
    /// Engine statistics at the end of the run.
    pub stats: EngineStats,
    /// What the chaos heap injected (for vacuity checks: a run with no
    /// faults proves nothing).
    pub chaos: rv_heap::ChaosStats,
}

impl ChaosOutcome {
    /// Whether the engine under chaos agreed with the reference oracle.
    #[must_use]
    pub fn verdicts_match(&self) -> bool {
        self.engine_triggers == self.oracle_triggers
    }
}

/// First report per binding, sorted — the comparison the oracle suite
/// established: the oracle re-fires absorbing verdicts every event while
/// the engine retires such monitors after the first report, and order
/// within a step is unspecified on both sides.
pub(crate) fn dedup(ts: &[Trigger]) -> Vec<Trigger> {
    let mut seen = std::collections::HashSet::new();
    let mut v: Vec<Trigger> = ts.iter().filter(|t| seen.insert(t.binding)).copied().collect();
    v.sort();
    v
}

/// Runs property block `block` of `spec` under `policy` on a chaos heap
/// seeded with `seed`, emitting `events` random parametric events, and
/// replays the recorded trace through the Figure 5 oracle.
///
/// Invariants are re-validated after every event (hence after every
/// injected fault) and once more after the final sweep.
///
/// # Errors
///
/// Any [`EngineError`] the engine or [`Engine::check_invariants`] reports
/// — under correct operation, none.
///
/// # Panics
///
/// Panics if `block` is out of range for `spec`.
pub fn run_block(
    spec: &CompiledSpec,
    block: usize,
    policy: GcPolicy,
    seed: u64,
    events: usize,
) -> Result<ChaosOutcome, EngineError> {
    let prop = &spec.properties[block];
    let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
    let mut engine: Engine<AnyFormalism> =
        Engine::new(prop.formalism.clone(), spec.event_def.clone(), prop.goal, config);
    // The heap takes the seed itself; the event generator gets a distinct
    // stream so its choices never correlate with the injections.
    let mut chaos = ChaosHeap::new(seed);
    let mut rng =
        SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(block as u64 + 1));
    let class = chaos.heap_mut().register_class("Object");
    // Pool objects are pinned (never on the root stack), so liveness is
    // governed solely by the pins: a killed object is immediately
    // unreachable and fair game for the chaos injections.
    let frame = chaos.heap_mut().enter_frame();
    let mut pool: Vec<ObjId> = (0..POOL).map(|_| chaos.heap_mut().alloc(class)).collect();
    for &o in &pool {
        chaos.heap_mut().pin(o);
    }
    chaos.heap_mut().exit_frame(frame);

    let mut trace: Vec<(EventId, Binding)> = Vec::new();
    while trace.len() < events {
        if rng.chance(KILL_PROB) {
            // Kill one pool object and replace it with a fresh one; the
            // old object becomes unreachable, so the chaos heap may doom
            // it mid-event or reclaim it at the next collection.
            let slot = rng.gen_range(POOL);
            chaos.heap_mut().unpin(pool[slot]);
            let f = chaos.heap_mut().enter_frame();
            let fresh = chaos.heap_mut().alloc(class);
            chaos.heap_mut().pin(fresh);
            chaos.heap_mut().exit_frame(f);
            pool[slot] = fresh;
            continue;
        }
        let e = EventId(rng.gen_range(spec.alphabet.len()) as u16);
        let pairs: Vec<_> = spec.event_params[e.as_usize()]
            .iter()
            .map(|&p| (p, pool[rng.gen_range(POOL)]))
            .collect();
        let binding = Binding::from_pairs(&pairs);
        trace.push((e, binding));
        chaos.pre_event();
        engine.try_process(chaos.heap(), e, binding)?;
        chaos.post_event();
        engine.check_invariants(chaos.heap())?;
    }
    engine.finish(chaos.heap());
    engine.check_invariants(chaos.heap())?;

    let oracle = monitor_trace(&prop.formalism, prop.goal, &trace);
    Ok(ChaosOutcome {
        trace_len: trace.len(),
        engine_triggers: dedup(engine.triggers()),
        oracle_triggers: dedup(&oracle.triggers),
        stats: engine.stats(),
        chaos: chaos.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has_next_spec() -> CompiledSpec {
        CompiledSpec::from_source(
            r#"HasNext(Iterator i) {
                event hasnexttrue(i);
                event hasnextfalse(i);
                event next(i);
                fsm:
                    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
                    more [ hasnexttrue -> more  next -> unknown ]
                    none [ hasnextfalse -> none  next -> error ]
                    error []
                @error { report "bad"; }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn chaos_runs_agree_with_the_oracle_under_every_policy() {
        let spec = has_next_spec();
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            for seed in [1, 2] {
                let out = run_block(&spec, 0, policy, seed, 256).unwrap();
                assert!(
                    out.verdicts_match(),
                    "{policy:?} seed {seed}: engine {:?} vs oracle {:?}",
                    out.engine_triggers,
                    out.oracle_triggers
                );
                assert_eq!(out.trace_len, 256);
            }
        }
    }

    /// Regression test for a bug the chaos harness found: when the final
    /// event of a match is itself the join-creating event (so its coenable
    /// set is empty and `ALIVENESS(e) = false`), the old "born dead" veto
    /// suppressed the creation under [`GcPolicy::CoenableLazy`] — and with
    /// it the trigger the creating step would have fired.
    #[test]
    fn final_join_event_with_empty_coenable_still_triggers() {
        use crate::engine::EngineConfig;
        use rv_heap::{Heap, HeapConfig};
        use rv_logic::ParamId;

        let spec = CompiledSpec::from_source(
            r#"UnsafeSyncMap(Map m, Collection c, Iterator i) {
                event sync(m);
                event createset(m, c);
                event asynccreateiter(c, i);
                event synccreateiter(c, i);
                event accessiter(i);
                ere: sync createset asynccreateiter
                   | sync createset synccreateiter accessiter
                @match { report "bad"; }
            }"#,
        )
        .unwrap();
        let prop = &spec.properties[0];
        let config = EngineConfig {
            policy: GcPolicy::CoenableLazy,
            record_triggers: true,
            ..EngineConfig::default()
        };
        let mut engine: Engine<AnyFormalism> =
            Engine::new(prop.formalism.clone(), spec.event_def.clone(), prop.goal, config);
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Object");
        let _f = heap.enter_frame();
        let (m, c, i) = (heap.alloc(cls), heap.alloc(cls), heap.alloc(cls));
        let ev = |name: &str| spec.alphabet.lookup(name).unwrap();
        let (pm, pc, pi) = (ParamId(0), ParamId(1), ParamId(2));
        engine.try_process(&heap, ev("sync"), Binding::from_pairs(&[(pm, m)])).unwrap();
        engine
            .try_process(&heap, ev("createset"), Binding::from_pairs(&[(pm, m), (pc, c)]))
            .unwrap();
        engine
            .try_process(&heap, ev("asynccreateiter"), Binding::from_pairs(&[(pc, c), (pi, i)]))
            .unwrap();
        assert_eq!(engine.stats().triggers, 1, "{:?}", engine.stats());
    }

    #[test]
    fn chaos_runs_are_not_vacuous_and_are_reproducible() {
        let spec = has_next_spec();
        let a = run_block(&spec, 0, GcPolicy::CoenableLazy, 7, 384).unwrap();
        let b = run_block(&spec, 0, GcPolicy::CoenableLazy, 7, 384).unwrap();
        assert_eq!(a.engine_triggers, b.engine_triggers, "same seed, same run");
        assert_eq!(a.chaos, b.chaos);
        assert!(a.chaos.dooms > 0, "faults must actually be injected: {:?}", a.chaos);
        assert!(a.chaos.forced_collects > 0, "{:?}", a.chaos);
        let c = run_block(&spec, 0, GcPolicy::CoenableLazy, 8, 384).unwrap();
        assert_ne!(a.chaos, c.chaos, "different seeds must diverge");
    }
}
