//! `netchaos` — a deterministic, frame-aware TCP fault-injection proxy.
//!
//! The proxy sits between a wire client (loadgen, `rvmonctl`) and an
//! rvmond ingest listener and injects faults at *frame* granularity:
//! whole frames are dropped, duplicated, delayed, bit-flipped, or
//! truncated, and connections are reset or half-open partitioned. Frame
//! granularity matters — the point is to exercise the protocol's
//! recovery machinery (CRC trailers, reconnect + window resend, HWM
//! dedup), not the kernel's TCP reassembly.
//!
//! Fault choice is driven by a splitmix64 stream seeded from
//! `profile.seed` and the connection's accept ordinal, so a given
//! (seed, profile, workload) triple replays the same fault schedule.
//! Note the exactly-once guarantee the differential harness asserts
//! does **not** depend on that determinism — any fault schedule must
//! yield the identical trigger stream; the seed only makes failures
//! reproducible.
//!
//! Corruption flips one bit in the *encoded* frame (after the CRC
//! trailer is computed), so the receiver's `read_frame` sees a CRC
//! mismatch: servers answer a typed 400 and close, clients reconnect
//! and resend. This is deliberately the only fault that forges bytes —
//! everything else reorders, elides, or delays intact frames.

use std::io::{self, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::service::{encode_frame, read_frame};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-frame fault rates in permille (0–1000), plus the seed that makes
/// the schedule deterministic. Rates are sampled cumulatively per
/// frame, so at most one fault applies to any frame; the sum of all
/// rates must stay ≤ 1000.
#[derive(Clone, Copy, Debug)]
pub struct ChaosProfile {
    /// Seed for the per-connection fault schedule.
    pub seed: u64,
    /// Frame silently dropped.
    pub drop_permille: u16,
    /// Frame delivered twice back to back.
    pub dup_permille: u16,
    /// One bit of the encoded frame flipped (CRC catches it).
    pub corrupt_permille: u16,
    /// Frame cut mid-byte and the connection torn down.
    pub truncate_permille: u16,
    /// Connection reset without warning.
    pub reset_permille: u16,
    /// Half-open partition: the direction goes silent but the socket
    /// stays up, so only a read timeout can surface it.
    pub partition_permille: u16,
    /// Frame delayed by `delay_ms` before forwarding.
    pub delay_permille: u16,
    /// Delay applied when the delay fault fires.
    pub delay_ms: u64,
}

impl Default for ChaosProfile {
    /// A clean profile: pure pass-through, useful as a baseline.
    fn default() -> Self {
        ChaosProfile {
            seed: 0xC4A0_5,
            drop_permille: 0,
            dup_permille: 0,
            corrupt_permille: 0,
            truncate_permille: 0,
            reset_permille: 0,
            partition_permille: 0,
            delay_permille: 0,
            delay_ms: 5,
        }
    }
}

impl ChaosProfile {
    /// A mixed-fault profile at roughly `permille`/1000 total fault
    /// rate, split across drop / dup / corrupt / delay with a thin
    /// tail of resets. `lossy(10)` ≈ the "1% loss" CI profile.
    #[must_use]
    pub fn lossy(permille: u16, seed: u64) -> ChaosProfile {
        let p = permille.min(900);
        ChaosProfile {
            seed,
            drop_permille: p / 4,
            dup_permille: p / 4,
            corrupt_permille: p / 4,
            truncate_permille: 0,
            reset_permille: p / 8,
            partition_permille: 0,
            delay_permille: p - p / 4 * 3 - p / 8,
            delay_ms: 5,
        }
    }

    fn total(&self) -> u32 {
        u32::from(self.drop_permille)
            + u32::from(self.dup_permille)
            + u32::from(self.corrupt_permille)
            + u32::from(self.truncate_permille)
            + u32::from(self.reset_permille)
            + u32::from(self.partition_permille)
            + u32::from(self.delay_permille)
    }

    /// Parses `key=value` pairs separated by commas, e.g.
    /// `"drop=10,dup=5,corrupt=2,seed=42"`. Keys: `drop`, `dup`,
    /// `corrupt`, `truncate`, `reset`, `partition`, `delay` (permille),
    /// `delay_ms`, `seed`.
    ///
    /// # Errors
    ///
    /// Unknown key, unparsable value, or total fault rate > 1000‰.
    pub fn parse(s: &str) -> Result<ChaosProfile, String> {
        let mut p = ChaosProfile::default();
        for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            let parse_rate =
                |v: &str| v.parse::<u16>().map_err(|_| format!("bad permille for {key}: {v:?}"));
            match key.trim() {
                "drop" => p.drop_permille = parse_rate(value)?,
                "dup" => p.dup_permille = parse_rate(value)?,
                "corrupt" => p.corrupt_permille = parse_rate(value)?,
                "truncate" => p.truncate_permille = parse_rate(value)?,
                "reset" => p.reset_permille = parse_rate(value)?,
                "partition" => p.partition_permille = parse_rate(value)?,
                "delay" => p.delay_permille = parse_rate(value)?,
                "delay_ms" => {
                    p.delay_ms = value.parse().map_err(|_| format!("bad delay_ms: {value:?}"))?;
                }
                "seed" => {
                    p.seed = value.parse().map_err(|_| format!("bad seed: {value:?}"))?;
                }
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        if p.total() > 1000 {
            return Err(format!("fault rates sum to {}‰ > 1000‰", p.total()));
        }
        Ok(p)
    }
}

/// Counters for every fault the proxy actually injected.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted.
    pub conns: AtomicU64,
    /// Frames forwarded unharmed.
    pub forwarded: AtomicU64,
    /// Frames dropped.
    pub dropped: AtomicU64,
    /// Frames duplicated.
    pub duplicated: AtomicU64,
    /// Frames bit-flipped.
    pub corrupted: AtomicU64,
    /// Frames truncated (connection then torn down).
    pub truncated: AtomicU64,
    /// Connections reset.
    pub resets: AtomicU64,
    /// Half-open partitions entered.
    pub partitions: AtomicU64,
    /// Frames delayed.
    pub delayed: AtomicU64,
}

impl ChaosStats {
    /// Total frames the proxy interfered with.
    pub fn faults(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
            + self.duplicated.load(Ordering::Relaxed)
            + self.corrupted.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
            + self.partitions.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
    }

    /// Renders the counters as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"conns\":{},\"forwarded\":{},\"dropped\":{},\"duplicated\":{},\"corrupted\":{},\
             \"truncated\":{},\"resets\":{},\"partitions\":{},\"delayed\":{}}}",
            self.conns.load(Ordering::Relaxed),
            self.forwarded.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.corrupted.load(Ordering::Relaxed),
            self.truncated.load(Ordering::Relaxed),
            self.resets.load(Ordering::Relaxed),
            self.partitions.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
        )
    }
}

enum Fault {
    None,
    Drop,
    Dup,
    Corrupt,
    Truncate,
    Reset,
    Partition,
    Delay,
}

fn pick_fault(profile: &ChaosProfile, rng: &mut u64) -> Fault {
    let roll = (splitmix64(rng) % 1000) as u32;
    let mut edge = u32::from(profile.drop_permille);
    if roll < edge {
        return Fault::Drop;
    }
    edge += u32::from(profile.dup_permille);
    if roll < edge {
        return Fault::Dup;
    }
    edge += u32::from(profile.corrupt_permille);
    if roll < edge {
        return Fault::Corrupt;
    }
    edge += u32::from(profile.truncate_permille);
    if roll < edge {
        return Fault::Truncate;
    }
    edge += u32::from(profile.reset_permille);
    if roll < edge {
        return Fault::Reset;
    }
    edge += u32::from(profile.partition_permille);
    if roll < edge {
        return Fault::Partition;
    }
    edge += u32::from(profile.delay_permille);
    if roll < edge {
        return Fault::Delay;
    }
    Fault::None
}

/// One direction of a proxied connection: read whole frames from `src`,
/// roll a fault, forward (or not) to `dst`. Returns when either side
/// closes, a terminal fault fires, or `stop` is raised.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    profile: ChaosProfile,
    mut rng: u64,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let teardown = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    while !stop.load(Ordering::Relaxed) {
        let frame = match read_frame(&mut src) {
            Ok(Some((kind, payload))) => encode_frame(kind, &payload),
            Ok(None) => {
                // Clean EOF: propagate the half-close downstream.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        };
        match pick_fault(&profile, &mut rng) {
            Fault::None => {
                stats.forwarded.fetch_add(1, Ordering::Relaxed);
                if dst.write_all(&frame).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
            Fault::Drop => {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Fault::Dup => {
                stats.duplicated.fetch_add(1, Ordering::Relaxed);
                if dst.write_all(&frame).is_err() || dst.write_all(&frame).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
            Fault::Corrupt => {
                stats.corrupted.fetch_add(1, Ordering::Relaxed);
                let mut mangled = frame;
                // Flip one bit past the length prefix so the receiver
                // still frames correctly but the CRC trailer fails.
                let pos = 4 + (splitmix64(&mut rng) as usize) % (mangled.len() - 4);
                mangled[pos] ^= 1 << (splitmix64(&mut rng) % 8) as u8;
                if dst.write_all(&mangled).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
            Fault::Truncate => {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
                let keep = 1 + (splitmix64(&mut rng) as usize) % (frame.len().max(2) - 1);
                let _ = dst.write_all(&frame[..keep]);
                teardown(&src, &dst);
                return;
            }
            Fault::Reset => {
                stats.resets.fetch_add(1, Ordering::Relaxed);
                teardown(&src, &dst);
                return;
            }
            Fault::Partition => {
                // Go silent without closing: the socket stays up, the
                // frame (and everything after it) is black-holed. Only
                // the peer's read timeout can detect this.
                stats.partitions.fetch_add(1, Ordering::Relaxed);
                while !stop.load(Ordering::Relaxed) {
                    match read_frame(&mut src) {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut => {}
                        Err(_) => break,
                    }
                }
                teardown(&src, &dst);
                return;
            }
            Fault::Delay => {
                stats.delayed.fetch_add(1, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(profile.delay_ms));
                if dst.write_all(&frame).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
        }
    }
    teardown(&src, &dst);
}

/// A running chaos proxy: accepts on a local port and forwards each
/// connection to `upstream` through two frame-aware fault-injecting
/// pumps (one per direction). Dropped on shutdown.
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates bind/local-addr failures.
    pub fn start(upstream: &str, profile: ChaosProfile) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let upstream = upstream.to_owned();
        let accept = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            thread::Builder::new().name("netchaos-accept".into()).spawn(move || {
                let mut conn_ix = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (client, _) = match listener.accept() {
                        Ok(pair) => pair,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                        Err(_) => break,
                    };
                    stats.conns.fetch_add(1, Ordering::Relaxed);
                    let server = match TcpStream::connect(&upstream) {
                        Ok(s) => s,
                        Err(_) => {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                    };
                    // One deterministic rng stream per direction,
                    // derived from the profile seed and accept ordinal.
                    let mut seed_rng = profile.seed ^ conn_ix.wrapping_mul(0x9E37);
                    conn_ix += 1;
                    let up_rng = splitmix64(&mut seed_rng);
                    let down_rng = splitmix64(&mut seed_rng);
                    let (c2, s2) = match (client.try_clone(), server.try_clone()) {
                        (Ok(c), Ok(s)) => (c, s),
                        _ => {
                            let _ = client.shutdown(Shutdown::Both);
                            let _ = server.shutdown(Shutdown::Both);
                            continue;
                        }
                    };
                    let (st1, st2) = (Arc::clone(&stats), Arc::clone(&stats));
                    let (sp1, sp2) = (Arc::clone(&stop), Arc::clone(&stop));
                    let _ = thread::Builder::new()
                        .name("netchaos-up".into())
                        .spawn(move || pump(client, server, profile, up_rng, st1, sp1));
                    let _ = thread::Builder::new()
                        .name("netchaos-down".into())
                        .spawn(move || pump(s2, c2, profile, down_rng, st2, sp2));
                }
            })?
        };
        Ok(ChaosProxy { addr, stats, stop, accept: Some(accept) })
    }

    /// The proxy's listen address — point clients here.
    #[must_use]
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Live fault counters.
    #[must_use]
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting and tears down the pumps.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}
