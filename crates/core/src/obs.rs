//! Engine observability: lifecycle tracing, metrics, and JSON export.
//!
//! The paper's whole evaluation (§5, Figures 9–10) is built on observing
//! the monitor lifecycle — events processed (E), monitors created (M),
//! flagged (FM) and collected (CM) — but aggregate counters cannot answer
//! *when and why* an individual monitor became garbage. This module adds
//! a zero-cost hook layer for exactly those transitions:
//!
//! * [`EngineObserver`] — a trait with one callback per GC-relevant
//!   lifecycle transition, every method defaulting to a no-op. The engine
//!   is generic over its observer with [`NoopObserver`] as the default;
//!   with the no-op, every callback is an empty inlined function and all
//!   timing/logging code is compiled out behind the
//!   [`EngineObserver::ENABLED`] constant.
//! * [`TraceRecorder`] — a bounded ring buffer of timestamped lifecycle
//!   records, dumped as JSONL (one record per line).
//! * [`MetricsRegistry`] — counters plus fixed-bucket histograms (monitor
//!   lifetimes, bindings touched per event, sweep batch sizes, per-phase
//!   wall-clock) with a hand-rolled JSON snapshot serializer: the
//!   workspace is dependency-free, so there is no serde here.
//!
//! Two observers compose as a tuple: `(TraceRecorder, MetricsRegistry)`
//! is itself an [`EngineObserver`] that forwards to both.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use rv_heap::HeapStats;
use rv_logic::{Alphabet, EventDef, EventId, ParamSet, Verdict};

use crate::binding::Binding;
use crate::engine::{BudgetKind, DegradationPolicy};
use crate::stats::EngineStats;
use crate::store::MonitorId;

/// Why a GC policy flagged a monitor instance unnecessary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlagCause {
    /// The coenable-set ALIVENESS formula (§4.2.2) became unsatisfiable:
    /// with the dead parameters, no goal verdict is reachable after the
    /// monitor's last event.
    Aliveness,
    /// Every bound parameter object died (the JavaMOP baseline rule, also
    /// the fallback for properties without coenable sets).
    AllParamsDead,
}

impl FlagCause {
    /// The snake_case label used in traces and snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlagCause::Aliveness => "aliveness",
            FlagCause::AllParamsDead => "all_params_dead",
        }
    }
}

/// Which collector a [`GcCycleRecord`] describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GcKind {
    /// A stop-the-world mark-sweep collection of the simulated heap
    /// (`rv_heap::Heap::collect`).
    HeapCollect,
    /// A safepoint monitor sweep
    /// ([`Engine::full_sweep`](crate::Engine::full_sweep)): dead-key
    /// expunge plus flagged-monitor compaction over every structure.
    MonitorSweep,
}

impl GcKind {
    /// Number of kinds (the length of [`GcKind::ALL`]).
    pub const COUNT: usize = 2;

    /// All kinds.
    pub const ALL: [GcKind; GcKind::COUNT] = [GcKind::HeapCollect, GcKind::MonitorSweep];

    /// The snake_case label used in traces and snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GcKind::HeapCollect => "heap",
            GcKind::MonitorSweep => "monitor_sweep",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            GcKind::HeapCollect => 0,
            GcKind::MonitorSweep => 1,
        }
    }
}

/// Why a collection cycle ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GcReason {
    /// The allocation budget expired (`HeapConfig::gc_every_allocs`), or
    /// any other schedule-driven trigger.
    Periodic,
    /// An explicit request: `Heap::collect`, `Engine::finish`, a `!gc` /
    /// `!sweep` trace directive.
    Forced,
    /// The degradation ladder is active and demanded extra maintenance
    /// (eager per-event sweeps while degraded).
    Degradation,
    /// A resource budget tripped and the trip handler swept to relieve
    /// pressure.
    Budget,
}

impl GcReason {
    /// Number of reasons (the length of [`GcReason::ALL`]).
    pub const COUNT: usize = 4;

    /// All reasons.
    pub const ALL: [GcReason; GcReason::COUNT] =
        [GcReason::Periodic, GcReason::Forced, GcReason::Degradation, GcReason::Budget];

    /// The snake_case label used in traces and snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GcReason::Periodic => "periodic",
            GcReason::Forced => "forced",
            GcReason::Degradation => "degradation",
            GcReason::Budget => "budget",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            GcReason::Periodic => 0,
            GcReason::Forced => 1,
            GcReason::Degradation => 2,
            GcReason::Budget => 3,
        }
    }

    fn from_byte(b: u8) -> Option<GcReason> {
        GcReason::ALL.into_iter().find(|r| r.index() == usize::from(b))
    }
}

/// One completed garbage-collection cycle — heap mark-sweep or monitor
/// sweep — as first-class telemetry: what ran, why, how long the world
/// stopped, and what it bought. Delivered via
/// [`EngineObserver::gc_cycle`], journaled as `AUX_GC_CYCLE` records, and
/// aggregated by [`MetricsRegistry`] into pause histograms and MMU
/// inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GcCycleRecord {
    /// Which collector ran.
    pub kind: GcKind,
    /// Why it ran.
    pub reason: GcReason,
    /// Nanoseconds since the emitter's epoch at which the pause *ended*
    /// (so `end_ns - pause_ns` is the pause start). Epochs are
    /// per-emitter (engine construction / heap creation / run start);
    /// MMU math only needs them monotone within one stream.
    pub end_ns: u64,
    /// Stop-the-world duration of the cycle in nanoseconds.
    pub pause_ns: u64,
    /// Objects (heap) or live monitors (sweep) examined by the cycle.
    pub scanned: u64,
    /// Objects or monitors physically reclaimed.
    pub reclaimed: u64,
    /// Monitors newly flagged unnecessary (always 0 for heap cycles).
    pub flagged: u64,
    /// Live objects (heap) or live monitors (sweep) before the cycle.
    pub occupancy_before: u64,
    /// Live objects or monitors after the cycle.
    pub occupancy_after: u64,
}

impl GcCycleRecord {
    /// Encoded size of [`GcCycleRecord::to_bytes`] in bytes.
    pub const ENCODED_LEN: usize = 2 + 7 * 8;

    /// Serializes the record as a fixed-width little-endian payload (the
    /// journal's `AUX_GC_CYCLE` body).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(GcCycleRecord::ENCODED_LEN);
        out.push(self.kind.index() as u8);
        out.push(self.reason.index() as u8);
        for v in [
            self.end_ns,
            self.pause_ns,
            self.scanned,
            self.reclaimed,
            self.flagged,
            self.occupancy_before,
            self.occupancy_after,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Lifts a drained [`rv_heap::HeapCycle`] into the unified record
    /// stream (rv-heap cannot depend on this crate, so the conversion
    /// lives here). Heap cycles never flag monitors.
    #[must_use]
    pub fn from_heap_cycle(c: &rv_heap::HeapCycle) -> GcCycleRecord {
        GcCycleRecord {
            kind: GcKind::HeapCollect,
            reason: if c.forced { GcReason::Forced } else { GcReason::Periodic },
            end_ns: c.end_ns,
            pause_ns: c.pause_ns,
            scanned: c.live_before,
            reclaimed: c.swept,
            flagged: 0,
            occupancy_before: c.live_before,
            occupancy_after: c.live_after,
        }
    }

    /// Decodes a [`GcCycleRecord::to_bytes`] payload; `None` on any
    /// malformed input (wrong length, unknown kind/reason byte).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<GcCycleRecord> {
        if bytes.len() != GcCycleRecord::ENCODED_LEN {
            return None;
        }
        let kind = match bytes[0] {
            0 => GcKind::HeapCollect,
            1 => GcKind::MonitorSweep,
            _ => return None,
        };
        let reason = GcReason::from_byte(bytes[1])?;
        let word = |i: usize| {
            let at = 2 + i * 8;
            u64::from_le_bytes(bytes[at..at + 8].try_into().expect("length checked"))
        };
        Some(GcCycleRecord {
            kind,
            reason,
            end_ns: word(0),
            pause_ns: word(1),
            scanned: word(2),
            reclaimed: word(3),
            flagged: word(4),
            occupancy_before: word(5),
            occupancy_after: word(6),
        })
    }
}

/// A timed phase of event dispatch, reported via
/// [`EngineObserver::phase_timed`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Looking `θ` up in the `⟨D(e)⟩` indexing tree (Figure 6).
    IndexLookup,
    /// Consulting the disable set / creation veto before instantiating a
    /// monitor (Algorithm C⟨X⟩'s `disable` check plus coenable vetoes).
    DisableCheck,
    /// Stepping matched monitor states by the event.
    Transition,
    /// Evaluating ALIVENESS for monitors under a dead key (Figure 7).
    Aliveness,
    /// Expunging dead keys from indexing trees and exact maps (the trickle
    /// expunge on the hot path and the bulk `expunge_all` inside sweeps).
    DeadKeyExpunge,
    /// A whole safepoint sweep/compaction pass
    /// ([`Engine::full_sweep`](crate::Engine::full_sweep), end to end).
    Sweep,
    /// Appending one record to the write-ahead journal (durable runs).
    JournalAppend,
    /// Routing/broadcasting one event across shard channels.
    ShardRoute,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 8;

    /// All phases, in dispatch order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::IndexLookup,
        Phase::DisableCheck,
        Phase::Transition,
        Phase::Aliveness,
        Phase::DeadKeyExpunge,
        Phase::Sweep,
        Phase::JournalAppend,
        Phase::ShardRoute,
    ];

    /// The snake_case label used in snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::IndexLookup => "index_lookup",
            Phase::DisableCheck => "disable_check",
            Phase::Transition => "transition",
            Phase::Aliveness => "aliveness",
            Phase::DeadKeyExpunge => "dead_key_expunge",
            Phase::Sweep => "sweep",
            Phase::JournalAppend => "journal_append",
            Phase::ShardRoute => "shard_route",
        }
    }

    /// Parses a snake_case label back to a phase.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::IndexLookup => 0,
            Phase::DisableCheck => 1,
            Phase::Transition => 2,
            Phase::Aliveness => 3,
            Phase::DeadKeyExpunge => 4,
            Phase::Sweep => 5,
            Phase::JournalAppend => 6,
            Phase::ShardRoute => 7,
        }
    }
}

/// Lifecycle callbacks from an [`Engine`](crate::Engine).
///
/// Every method has an empty default body, so implementors override only
/// what they need. The associated [`ENABLED`](EngineObserver::ENABLED)
/// constant lets the engine compile out observation-only work (wall-clock
/// reads, collected-id logging) when the observer is [`NoopObserver`]:
/// `if O::ENABLED { … }` folds to nothing at monomorphization time.
#[allow(unused_variables)]
pub trait EngineObserver {
    /// Whether the engine should spend any effort feeding this observer.
    /// `false` only for [`NoopObserver`] (and compositions of it).
    const ENABLED: bool = true;

    /// An event `e⟨θ⟩` was dispatched; `monitors_touched` instances with
    /// bindings ⊒ θ were looked up for stepping.
    fn event_dispatched(&mut self, event: EventId, binding: &Binding, monitors_touched: usize) {}

    /// A monitor instance was created for `binding`.
    fn monitor_created(&mut self, id: MonitorId, binding: &Binding) {}

    /// A monitor was flagged unnecessary: with `dead` parameters dead, the
    /// policy decided (per `cause`) that no goal is reachable after
    /// `last_event`.
    fn monitor_flagged(
        &mut self,
        id: MonitorId,
        binding: &Binding,
        last_event: EventId,
        dead: ParamSet,
        cause: FlagCause,
    ) {
    }

    /// The last container released the monitor — it is physically gone
    /// (the CM of Figure 10).
    fn monitor_collected(&mut self, id: MonitorId) {}

    /// An indexing structure discovered a key whose referent died
    /// (Figure 7 A).
    fn dead_key_discovered(&mut self, key: &Binding) {}

    /// A safepoint sweep ([`Engine::full_sweep`](crate::Engine::full_sweep))
    /// began.
    fn sweep_started(&mut self) {}

    /// The sweep finished, having newly flagged `flagged` and reclaimed
    /// `collected` monitors.
    fn sweep_finished(&mut self, flagged: u64, collected: u64) {}

    /// A goal verdict was reported (a handler execution).
    fn trigger_fired(&mut self, step: usize, binding: &Binding, verdict: Verdict) {}

    /// The monomorphic lookup cache served a dispatch.
    fn cache_hit(&mut self) {}

    /// The dispatch went through the indexing trees.
    fn cache_miss(&mut self) {}

    /// A dispatch phase took `nanos` wall-clock nanoseconds. Only emitted
    /// when `Self::ENABLED` (timing a no-op observer would itself cost).
    fn phase_timed(&mut self, phase: Phase, nanos: u64) {}

    /// A resource budget was exceeded: `observed` crossed `limit`.
    fn budget_tripped(&mut self, budget: BudgetKind, observed: u64, limit: u64) {}

    /// The degradation ladder escalated to `level`.
    fn degradation_entered(&mut self, level: DegradationPolicy) {}

    /// The engine recovered from degradation `level` back to normal
    /// operation.
    fn degradation_exited(&mut self, level: DegradationPolicy) {}

    /// A monitor creation for `binding` was refused under resource
    /// pressure ([`DegradationPolicy::ShedNewMonitors`]).
    fn monitor_shed(&mut self, binding: &Binding) {}

    /// A handler panic quarantined monitor `id`; the engine keeps
    /// processing every other instance.
    fn monitor_quarantined(&mut self, id: MonitorId, binding: &Binding) {}

    /// A checkpoint covering everything up to journal sequence `seq` was
    /// durably written (`bytes` bytes of payload).
    fn checkpoint_written(&mut self, seq: u64, bytes: u64) {}

    /// Crash recovery began. `checkpoint_seq` is the journal sequence
    /// covered by the checkpoint being restored, or `None` when recovery
    /// falls back to a full journal replay.
    fn recovery_started(&mut self, checkpoint_seq: Option<u64>) {}

    /// The journal reader truncated `lost_bytes` bytes of torn or corrupt
    /// tail during recovery.
    fn records_truncated(&mut self, lost_bytes: u64) {}

    /// A garbage-collection cycle (heap mark-sweep or monitor sweep)
    /// finished. Only emitted when `Self::ENABLED` — assembling the
    /// record costs wall-clock reads.
    fn gc_cycle(&mut self, record: &GcCycleRecord) {}

    /// One event finished end-to-end dispatch (validation through
    /// triggers delivered) in `nanos` wall-clock nanoseconds. Only
    /// emitted when `Self::ENABLED`.
    fn event_latency(&mut self, nanos: u64) {}
}

/// The do-nothing observer: the engine's default. All callbacks are empty
/// and [`EngineObserver::ENABLED`] is `false`, so observability adds no
/// instructions to the monomorphized hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl EngineObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Observers compose as pairs: `(recorder, metrics)` forwards every
/// callback to both elements.
impl<A: EngineObserver, B: EngineObserver> EngineObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn event_dispatched(&mut self, event: EventId, binding: &Binding, monitors_touched: usize) {
        self.0.event_dispatched(event, binding, monitors_touched);
        self.1.event_dispatched(event, binding, monitors_touched);
    }

    fn monitor_created(&mut self, id: MonitorId, binding: &Binding) {
        self.0.monitor_created(id, binding);
        self.1.monitor_created(id, binding);
    }

    fn monitor_flagged(
        &mut self,
        id: MonitorId,
        binding: &Binding,
        last_event: EventId,
        dead: ParamSet,
        cause: FlagCause,
    ) {
        self.0.monitor_flagged(id, binding, last_event, dead, cause);
        self.1.monitor_flagged(id, binding, last_event, dead, cause);
    }

    fn monitor_collected(&mut self, id: MonitorId) {
        self.0.monitor_collected(id);
        self.1.monitor_collected(id);
    }

    fn dead_key_discovered(&mut self, key: &Binding) {
        self.0.dead_key_discovered(key);
        self.1.dead_key_discovered(key);
    }

    fn sweep_started(&mut self) {
        self.0.sweep_started();
        self.1.sweep_started();
    }

    fn sweep_finished(&mut self, flagged: u64, collected: u64) {
        self.0.sweep_finished(flagged, collected);
        self.1.sweep_finished(flagged, collected);
    }

    fn trigger_fired(&mut self, step: usize, binding: &Binding, verdict: Verdict) {
        self.0.trigger_fired(step, binding, verdict);
        self.1.trigger_fired(step, binding, verdict);
    }

    fn cache_hit(&mut self) {
        self.0.cache_hit();
        self.1.cache_hit();
    }

    fn cache_miss(&mut self) {
        self.0.cache_miss();
        self.1.cache_miss();
    }

    fn phase_timed(&mut self, phase: Phase, nanos: u64) {
        self.0.phase_timed(phase, nanos);
        self.1.phase_timed(phase, nanos);
    }

    fn budget_tripped(&mut self, budget: BudgetKind, observed: u64, limit: u64) {
        self.0.budget_tripped(budget, observed, limit);
        self.1.budget_tripped(budget, observed, limit);
    }

    fn degradation_entered(&mut self, level: DegradationPolicy) {
        self.0.degradation_entered(level);
        self.1.degradation_entered(level);
    }

    fn degradation_exited(&mut self, level: DegradationPolicy) {
        self.0.degradation_exited(level);
        self.1.degradation_exited(level);
    }

    fn monitor_shed(&mut self, binding: &Binding) {
        self.0.monitor_shed(binding);
        self.1.monitor_shed(binding);
    }

    fn monitor_quarantined(&mut self, id: MonitorId, binding: &Binding) {
        self.0.monitor_quarantined(id, binding);
        self.1.monitor_quarantined(id, binding);
    }

    fn checkpoint_written(&mut self, seq: u64, bytes: u64) {
        self.0.checkpoint_written(seq, bytes);
        self.1.checkpoint_written(seq, bytes);
    }

    fn recovery_started(&mut self, checkpoint_seq: Option<u64>) {
        self.0.recovery_started(checkpoint_seq);
        self.1.recovery_started(checkpoint_seq);
    }

    fn records_truncated(&mut self, lost_bytes: u64) {
        self.0.records_truncated(lost_bytes);
        self.1.records_truncated(lost_bytes);
    }

    fn gc_cycle(&mut self, record: &GcCycleRecord) {
        self.0.gc_cycle(record);
        self.1.gc_cycle(record);
    }

    fn event_latency(&mut self, nanos: u64) {
        self.0.event_latency(nanos);
        self.1.event_latency(nanos);
    }
}

// ---------------------------------------------------------------------------
// JSON helpers (hand-rolled: the workspace is offline and serde-free).
// ---------------------------------------------------------------------------

/// Escapes `s` for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` the way JSON wants it (no NaN/inf — clamped to null).
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn render_binding(b: &Binding, names: Option<&EventDef>) -> String {
    let mut out = String::new();
    for (i, (p, obj)) in b.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match names {
            Some(def) => {
                let _ = write!(out, "{}={}", def.param_name(p), obj);
            }
            None => {
                let _ = write!(out, "x{}={}", p.as_usize(), obj);
            }
        }
    }
    out
}

fn render_event(e: EventId, alphabet: Option<&Alphabet>) -> String {
    match alphabet {
        Some(a) => a.name(e).to_owned(),
        None => format!("e{}", e.as_usize()),
    }
}

fn render_params(ps: ParamSet, names: Option<&EventDef>) -> String {
    let mut out = String::new();
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match names {
            Some(def) => out.push_str(def.param_name(p)),
            None => {
                let _ = write!(out, "x{}", p.as_usize());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

/// One recorded lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// An event was dispatched to `touched` matching instances.
    Event {
        /// The dispatched event.
        event: EventId,
        /// Its parameter instance.
        binding: Binding,
        /// Matching monitor instances stepped.
        touched: usize,
    },
    /// A monitor instance was created.
    Created {
        /// The new instance's id.
        id: MonitorId,
        /// Its binding.
        binding: Binding,
    },
    /// A monitor instance was flagged unnecessary.
    Flagged {
        /// The flagged instance.
        id: MonitorId,
        /// Its binding.
        binding: Binding,
        /// The last event it received (the `e` of `ALIVENESS(e)`).
        last_event: EventId,
        /// Its dead parameters at flag time.
        dead: ParamSet,
        /// Which rule flagged it.
        cause: FlagCause,
    },
    /// A monitor instance was physically reclaimed.
    Collected {
        /// The collected instance.
        id: MonitorId,
    },
    /// An indexing structure discovered a dead key.
    DeadKey {
        /// The dead (partial) parameter instance.
        key: Binding,
    },
    /// A safepoint sweep began.
    SweepStarted,
    /// A safepoint sweep finished.
    SweepFinished {
        /// Monitors newly flagged by the sweep.
        flagged: u64,
        /// Monitors reclaimed by the sweep.
        collected: u64,
    },
    /// A goal verdict fired a handler.
    Trigger {
        /// The violating/matching instance.
        binding: Binding,
        /// The verdict.
        verdict: Verdict,
    },
    /// A resource budget was exceeded.
    BudgetTripped {
        /// Which budget tripped.
        budget: BudgetKind,
        /// The observed value.
        observed: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The degradation ladder escalated.
    DegradationEntered {
        /// The level entered.
        level: DegradationPolicy,
    },
    /// The engine recovered from degradation.
    DegradationExited {
        /// The level left behind.
        level: DegradationPolicy,
    },
    /// A monitor creation was refused under pressure.
    Shed {
        /// The binding whose monitor was not created.
        binding: Binding,
    },
    /// A handler panic quarantined a monitor.
    Quarantined {
        /// The quarantined instance.
        id: MonitorId,
        /// Its binding.
        binding: Binding,
    },
    /// A checkpoint was durably written.
    CheckpointWritten {
        /// The journal sequence the checkpoint covers.
        seq: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Crash recovery began.
    RecoveryStarted {
        /// The restored checkpoint's covered sequence, if one was usable.
        checkpoint_seq: Option<u64>,
    },
    /// The journal reader truncated a torn or corrupt tail.
    RecordsTruncated {
        /// Bytes discarded from the journal.
        lost_bytes: u64,
    },
    /// A garbage-collection cycle finished.
    GcCycle {
        /// The full per-cycle accounting.
        record: GcCycleRecord,
    },
}

/// A timestamped lifecycle record.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Monotonic sequence number (counts records ever captured, including
    /// ones later overwritten by the bounded ring).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub t_nanos: u64,
    /// Engine event count when the record was captured (the E column).
    pub event_index: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded ring buffer of [`TraceRecord`]s with JSONL export.
///
/// When the buffer is full the oldest record is overwritten;
/// [`TraceRecorder::dropped`] counts the overwritten records so consumers
/// know the trace is a suffix.
#[derive(Debug)]
pub struct TraceRecorder {
    start: Instant,
    capacity: usize,
    ring: Vec<TraceRecord>,
    head: usize,
    next_seq: u64,
    events_seen: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Optional naming context for human-readable dumps.
    names: Option<(Alphabet, EventDef)>,
}

impl Default for TraceRecorder {
    /// A recorder with the default 65 536-record capacity.
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// Default ring capacity for [`TraceRecorder::default`] (and the `rvmon
/// trace` CLI).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl TraceRecorder {
    /// A recorder keeping at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            start: Instant::now(),
            capacity: capacity.max(1),
            ring: Vec::new(),
            head: 0,
            next_seq: 0,
            events_seen: 0,
            cache_hits: 0,
            cache_misses: 0,
            names: None,
        }
    }

    /// Attaches an alphabet and event definition so dumps render event and
    /// parameter *names* instead of indices.
    #[must_use]
    pub fn with_names(mut self, alphabet: Alphabet, event_def: EventDef) -> TraceRecorder {
        self.names = Some((alphabet, event_def));
        self
    }

    fn push(&mut self, kind: TraceKind) {
        let record = TraceRecord {
            seq: self.next_seq,
            t_nanos: u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            event_index: self.events_seen,
            kind,
        };
        self.next_seq += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(record);
        } else {
            self.ring[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Records captured and still buffered, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Records overwritten by the bounded ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.ring.len() as u64
    }

    /// Lookup-cache hits observed.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Lookup-cache misses observed.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Renders one record as a JSON object (no trailing newline).
    #[must_use]
    pub fn record_json(&self, r: &TraceRecord) -> String {
        let (alphabet, def) = match &self.names {
            Some((a, d)) => (Some(a), Some(d)),
            None => (None, None),
        };
        let mut out =
            format!("{{\"seq\":{},\"t_ns\":{},\"event_index\":{}", r.seq, r.t_nanos, r.event_index);
        match r.kind {
            TraceKind::Event { event, binding, touched } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"event\",\"name\":\"{}\",\"binding\":\"{}\",\"touched\":{}",
                    json_escape(&render_event(event, alphabet)),
                    json_escape(&render_binding(&binding, def)),
                    touched
                );
            }
            TraceKind::Created { id, binding } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"created\",\"monitor\":{},\"binding\":\"{}\"",
                    id.as_usize(),
                    json_escape(&render_binding(&binding, def))
                );
            }
            TraceKind::Flagged { id, binding, last_event, dead, cause } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"flagged\",\"monitor\":{},\"binding\":\"{}\",\
                     \"last_event\":\"{}\",\"dead\":\"{}\",\"cause\":\"{}\"",
                    id.as_usize(),
                    json_escape(&render_binding(&binding, def)),
                    json_escape(&render_event(last_event, alphabet)),
                    json_escape(&render_params(dead, def)),
                    cause.label()
                );
            }
            TraceKind::Collected { id } => {
                let _ = write!(out, ",\"kind\":\"collected\",\"monitor\":{}", id.as_usize());
            }
            TraceKind::DeadKey { key } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"dead_key\",\"key\":\"{}\"",
                    json_escape(&render_binding(&key, def))
                );
            }
            TraceKind::SweepStarted => {
                out.push_str(",\"kind\":\"sweep_started\"");
            }
            TraceKind::SweepFinished { flagged, collected } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"sweep_finished\",\"flagged\":{flagged},\"collected\":{collected}"
                );
            }
            TraceKind::Trigger { binding, verdict } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"trigger\",\"binding\":\"{}\",\"verdict\":\"{}\"",
                    json_escape(&render_binding(&binding, def)),
                    verdict
                );
            }
            TraceKind::BudgetTripped { budget, observed, limit } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"budget_tripped\",\"budget\":\"{}\",\"observed\":{observed},\
                     \"limit\":{limit}",
                    budget.label()
                );
            }
            TraceKind::DegradationEntered { level } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"degradation_entered\",\"level\":\"{}\"",
                    level.label()
                );
            }
            TraceKind::DegradationExited { level } => {
                let _ =
                    write!(out, ",\"kind\":\"degradation_exited\",\"level\":\"{}\"", level.label());
            }
            TraceKind::Shed { binding } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"shed\",\"binding\":\"{}\"",
                    json_escape(&render_binding(&binding, def))
                );
            }
            TraceKind::Quarantined { id, binding } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"quarantined\",\"monitor\":{},\"binding\":\"{}\"",
                    id.as_usize(),
                    json_escape(&render_binding(&binding, def))
                );
            }
            TraceKind::CheckpointWritten { seq, bytes } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"checkpoint_written\",\"covered_seq\":{seq},\"bytes\":{bytes}"
                );
            }
            TraceKind::RecoveryStarted { checkpoint_seq } => {
                out.push_str(",\"kind\":\"recovery_started\",\"checkpoint_seq\":");
                match checkpoint_seq {
                    Some(seq) => {
                        let _ = write!(out, "{seq}");
                    }
                    None => out.push_str("null"),
                }
            }
            TraceKind::RecordsTruncated { lost_bytes } => {
                let _ = write!(out, ",\"kind\":\"records_truncated\",\"lost_bytes\":{lost_bytes}");
            }
            TraceKind::GcCycle { record } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"gc_cycle\",\"gc\":\"{}\",\"reason\":\"{}\",\"end_ns\":{},\
                     \"pause_ns\":{},\"scanned\":{},\"reclaimed\":{},\"flagged\":{},\
                     \"occupancy_before\":{},\"occupancy_after\":{}",
                    record.kind.label(),
                    record.reason.label(),
                    record.end_ns,
                    record.pause_ns,
                    record.scanned,
                    record.reclaimed,
                    record.flagged,
                    record.occupancy_before,
                    record.occupancy_after
                );
            }
        }
        out.push('}');
        out
    }

    /// Dumps the buffered records as JSONL — one JSON object per line,
    /// oldest record first.
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&self.record_json(&r));
            out.push('\n');
        }
        out
    }
}

impl EngineObserver for TraceRecorder {
    fn event_dispatched(&mut self, event: EventId, binding: &Binding, monitors_touched: usize) {
        self.events_seen += 1;
        self.push(TraceKind::Event { event, binding: *binding, touched: monitors_touched });
    }

    fn monitor_created(&mut self, id: MonitorId, binding: &Binding) {
        self.push(TraceKind::Created { id, binding: *binding });
    }

    fn monitor_flagged(
        &mut self,
        id: MonitorId,
        binding: &Binding,
        last_event: EventId,
        dead: ParamSet,
        cause: FlagCause,
    ) {
        self.push(TraceKind::Flagged { id, binding: *binding, last_event, dead, cause });
    }

    fn monitor_collected(&mut self, id: MonitorId) {
        self.push(TraceKind::Collected { id });
    }

    fn dead_key_discovered(&mut self, key: &Binding) {
        self.push(TraceKind::DeadKey { key: *key });
    }

    fn sweep_started(&mut self) {
        self.push(TraceKind::SweepStarted);
    }

    fn sweep_finished(&mut self, flagged: u64, collected: u64) {
        self.push(TraceKind::SweepFinished { flagged, collected });
    }

    fn trigger_fired(&mut self, _step: usize, binding: &Binding, verdict: Verdict) {
        self.push(TraceKind::Trigger { binding: *binding, verdict });
    }

    fn cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    fn cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    fn budget_tripped(&mut self, budget: BudgetKind, observed: u64, limit: u64) {
        self.push(TraceKind::BudgetTripped { budget, observed, limit });
    }

    fn degradation_entered(&mut self, level: DegradationPolicy) {
        self.push(TraceKind::DegradationEntered { level });
    }

    fn degradation_exited(&mut self, level: DegradationPolicy) {
        self.push(TraceKind::DegradationExited { level });
    }

    fn monitor_shed(&mut self, binding: &Binding) {
        self.push(TraceKind::Shed { binding: *binding });
    }

    fn gc_cycle(&mut self, record: &GcCycleRecord) {
        self.push(TraceKind::GcCycle { record: *record });
    }

    fn monitor_quarantined(&mut self, id: MonitorId, binding: &Binding) {
        self.push(TraceKind::Quarantined { id, binding: *binding });
    }

    fn checkpoint_written(&mut self, seq: u64, bytes: u64) {
        self.push(TraceKind::CheckpointWritten { seq, bytes });
    }

    fn recovery_started(&mut self, checkpoint_seq: Option<u64>) {
        self.push(TraceKind::RecoveryStarted { checkpoint_seq });
    }

    fn records_truncated(&mut self, lost_bytes: u64) {
        self.push(TraceKind::RecordsTruncated { lost_bytes });
    }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// A fixed-bucket histogram with power-of-two bucket bounds
/// `1, 2, 4, …, 2^(N−1)` plus an overflow bucket.
///
/// # Error bound
///
/// Only the bucket index is kept per sample, so any quantile estimate is
/// confined to the enclosing power-of-two bucket `(2^(i−1), 2^i]`: the
/// estimate can be off by at most the bucket's width, i.e. it is always
/// within a factor of 2 of the true sample (relative error < 100%,
/// typically far less thanks to the in-bucket linear interpolation).
/// `count`, `sum`, `mean`, and `max` are exact (up to saturation).
/// Ranks falling in the overflow bucket are clamped to the exact
/// [`Histogram::max`], so the top quantile never fabricates a value
/// larger than anything observed.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `counts[i]` counts samples `≤ 2^i`; the last slot is overflow.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Number of power-of-two buckets: covers values up to 2^29 (~0.5 s in
/// nanoseconds, ~500M in event counts) before overflow.
pub const HISTOGRAM_BUCKETS: usize = 30;

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; HISTOGRAM_BUCKETS + 1], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample. All arithmetic saturates: a metrics sink must
    /// degrade to a pegged counter, never wrap (or panic in debug builds)
    /// after 2^64 samples — the same discipline `sum` always had.
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            let b = 64 - u64::leading_zeros(value - 1) as usize;
            b.min(HISTOGRAM_BUCKETS)
        };
        self.counts[bucket] = self.counts[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Accumulates another histogram into this one (bucket-wise), the
    /// aggregation step for per-shard metrics: bucket counts, `count`, and
    /// `sum` add (saturating — merging is where near-full counters actually
    /// meet), `max` takes the larger mark. Bucket layout is fixed at
    /// compile time, so histograms from any two engines are compatible.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw per-bucket counts: slot `i < HISTOGRAM_BUCKETS` counts samples
    /// `≤ 2^i` (and above the previous bound); the final slot is overflow.
    /// Exposed for cumulative renderings (Prometheus `le` buckets).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the power-of-two bucket holding the target
    /// rank. Bucket `i > 0` spans `(2^(i−1), 2^i]`, bucket 0 spans
    /// `[0, 1]`; ranks landing in the overflow bucket — and any
    /// interpolated value past the largest observed sample — clamp to
    /// [`Histogram::max`]. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut below = 0.0f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below + c as f64;
            if through >= rank {
                if i >= HISTOGRAM_BUCKETS {
                    return self.max as f64;
                }
                let lo = if i == 0 { 0.0 } else { (1u64 << (i - 1)) as f64 };
                let hi = (1u64 << i) as f64;
                let frac = ((rank - below) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).min(self.max as f64);
            }
            below = through;
        }
        self.max as f64
    }

    /// Renders the histogram as a JSON object (with p50/p95/p99/p99.9
    /// quantile estimates). Empty buckets are elided from the `buckets`
    /// array to keep snapshots small.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.max,
            json_f64(self.mean()),
            json_f64(self.quantile(0.50)),
            json_f64(self.quantile(0.95)),
            json_f64(self.quantile(0.99)),
            json_f64(self.quantile(0.999))
        );
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            if i < HISTOGRAM_BUCKETS {
                let _ = write!(out, "{{\"le\":{},\"count\":{c}}}", 1u64 << i);
            } else {
                let _ = write!(out, "{{\"le\":\"inf\",\"count\":{c}}}");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Counters and histograms over the monitor-GC pipeline, with a JSON
/// snapshot serializer.
///
/// Counter semantics mirror [`EngineStats`]: after a run the registry's
/// `events`/`created`/`flagged`/`collected` equal the engine's E/M/FM/CM
/// (this is asserted by the `observer_invariants` test suite).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    events: u64,
    created: u64,
    flagged: u64,
    collected: u64,
    dead_keys: u64,
    triggers: u64,
    cache_hits: u64,
    cache_misses: u64,
    sweeps: u64,
    budget_trips: u64,
    degradations_entered: u64,
    degradations_exited: u64,
    shed: u64,
    quarantined: u64,
    checkpoints_written: u64,
    checkpoint_bytes: u64,
    recoveries: u64,
    journal_bytes_truncated: u64,
    /// Creation→collection age in events.
    lifetime_events: Histogram,
    /// Creation→flag age in events.
    flag_latency_events: Histogram,
    /// Matching instances stepped per dispatched event.
    touched_per_event: Histogram,
    /// Monitors reclaimed per safepoint sweep.
    sweep_batch: Histogram,
    /// Per-phase wall-clock nanoseconds (index by [`Phase::index`]).
    phase_nanos: [Histogram; Phase::COUNT],
    /// GC cycles by `[kind][reason]` ([`GcKind::index`] ×
    /// [`GcReason::index`]).
    gc_cycles: [[u64; GcReason::COUNT]; GcKind::COUNT],
    /// Objects/monitors scanned, per [`GcKind::index`].
    gc_scanned: [u64; GcKind::COUNT],
    /// Objects/monitors reclaimed, per [`GcKind::index`].
    gc_reclaimed: [u64; GcKind::COUNT],
    /// Stop-the-world pause nanoseconds, per [`GcKind::index`].
    gc_pause_ns: [Histogram; GcKind::COUNT],
    /// `(end_ns, pause_ns)` per cycle, the raw MMU-curve input (bounded
    /// at [`MAX_GC_PAUSE_RECORDS`]; oldest survive — MMU wants the full
    /// span, and early cycles anchor it).
    gc_pauses: Vec<(u64, u64)>,
    /// Allocation debt: monitors created since the last monitor sweep
    /// minus monitors that sweep reclaimed (the pacer's input signal).
    gc_debt: u64,
    /// End-to-end per-event dispatch latency in nanoseconds.
    event_latency_ns: Histogram,
    /// Birth event-index per live monitor id (removed on collection, so
    /// slot reuse cannot corrupt ages).
    birth: HashMap<MonitorId, u64>,
    /// Flag event-index per flagged-but-uncollected monitor id.
    flagged_at: HashMap<MonitorId, u64>,
}

/// Cap on the raw `(end_ns, pause_ns)` records a [`MetricsRegistry`]
/// retains for MMU computation.
pub const MAX_GC_PAUSE_RECORDS: usize = 1 << 16;

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Events observed (the E column).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Monitors created (M).
    #[must_use]
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Monitors flagged (FM).
    #[must_use]
    pub fn flagged(&self) -> u64 {
        self.flagged
    }

    /// Monitors collected (CM).
    #[must_use]
    pub fn collected(&self) -> u64 {
        self.collected
    }

    /// Dead keys discovered by indexing structures.
    #[must_use]
    pub fn dead_keys(&self) -> u64 {
        self.dead_keys
    }

    /// Goal reports observed.
    #[must_use]
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Safepoint sweeps observed.
    #[must_use]
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Resource-budget violations observed.
    #[must_use]
    pub fn budget_trips(&self) -> u64 {
        self.budget_trips
    }

    /// Degradation-ladder escalations observed.
    #[must_use]
    pub fn degradations_entered(&self) -> u64 {
        self.degradations_entered
    }

    /// Degradation recoveries observed.
    #[must_use]
    pub fn degradations_exited(&self) -> u64 {
        self.degradations_exited
    }

    /// Monitor creations refused under pressure.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Monitors quarantined after handler panics.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Checkpoints durably written.
    #[must_use]
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Total checkpoint payload bytes written.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Crash recoveries started.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Journal bytes discarded as torn or corrupt during recovery.
    #[must_use]
    pub fn journal_bytes_truncated(&self) -> u64 {
        self.journal_bytes_truncated
    }

    /// The creation→collection age histogram (in events).
    #[must_use]
    pub fn lifetime_events(&self) -> &Histogram {
        &self.lifetime_events
    }

    /// The bindings-touched-per-event histogram.
    #[must_use]
    pub fn touched_per_event(&self) -> &Histogram {
        &self.touched_per_event
    }

    /// The per-sweep reclaim-batch histogram.
    #[must_use]
    pub fn sweep_batch(&self) -> &Histogram {
        &self.sweep_batch
    }

    /// The wall-clock histogram for `phase`.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phase_nanos[phase.index()]
    }

    /// GC cycles observed for `kind` with `reason`.
    #[must_use]
    pub fn gc_cycles(&self, kind: GcKind, reason: GcReason) -> u64 {
        self.gc_cycles[kind.index()][reason.index()]
    }

    /// Total GC cycles observed for `kind` across all reasons.
    #[must_use]
    pub fn gc_cycles_total(&self, kind: GcKind) -> u64 {
        self.gc_cycles[kind.index()].iter().sum()
    }

    /// Objects/monitors scanned by `kind` cycles.
    #[must_use]
    pub fn gc_scanned(&self, kind: GcKind) -> u64 {
        self.gc_scanned[kind.index()]
    }

    /// Objects/monitors reclaimed by `kind` cycles.
    #[must_use]
    pub fn gc_reclaimed(&self, kind: GcKind) -> u64 {
        self.gc_reclaimed[kind.index()]
    }

    /// The stop-the-world pause histogram for `kind`.
    #[must_use]
    pub fn gc_pause(&self, kind: GcKind) -> &Histogram {
        &self.gc_pause_ns[kind.index()]
    }

    /// The raw `(end_ns, pause_ns)` cycle records retained for MMU
    /// computation (bounded; see [`MAX_GC_PAUSE_RECORDS`]).
    #[must_use]
    pub fn gc_pauses(&self) -> &[(u64, u64)] {
        &self.gc_pauses
    }

    /// Current allocation debt: monitors created since the last monitor
    /// sweep minus what that sweep reclaimed, saturating at 0.
    #[must_use]
    pub fn gc_debt(&self) -> u64 {
        self.gc_debt
    }

    /// The end-to-end per-event dispatch latency histogram.
    #[must_use]
    pub fn event_latency_ns(&self) -> &Histogram {
        &self.event_latency_ns
    }

    /// Mean monitor allocations per dispatched event — the windowless
    /// allocation rate (a per-event rate, since the registry has no
    /// clock of its own).
    #[must_use]
    pub fn alloc_rate_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.created as f64 / self.events as f64
        }
    }

    /// Mean monitor flaggings per dispatched event.
    #[must_use]
    pub fn flag_rate_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.flagged as f64 / self.events as f64
        }
    }

    /// Accumulates another registry into this one — the per-shard metrics
    /// aggregation path: every counter sums (saturating) and every
    /// histogram merges via [`Histogram::merge_from`].
    ///
    /// The per-monitor age tables (`birth`/`flagged_at`) are deliberately
    /// *not* merged: [`MonitorId`]s are engine-local and collide across
    /// shards, and the tables exist only to feed the lifetime/latency
    /// histograms at flag/collect time — which each shard already did
    /// before its snapshot was shipped.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        self.events = self.events.saturating_add(other.events);
        self.created = self.created.saturating_add(other.created);
        self.flagged = self.flagged.saturating_add(other.flagged);
        self.collected = self.collected.saturating_add(other.collected);
        self.dead_keys = self.dead_keys.saturating_add(other.dead_keys);
        self.triggers = self.triggers.saturating_add(other.triggers);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.sweeps = self.sweeps.saturating_add(other.sweeps);
        self.budget_trips = self.budget_trips.saturating_add(other.budget_trips);
        self.degradations_entered =
            self.degradations_entered.saturating_add(other.degradations_entered);
        self.degradations_exited =
            self.degradations_exited.saturating_add(other.degradations_exited);
        self.shed = self.shed.saturating_add(other.shed);
        self.quarantined = self.quarantined.saturating_add(other.quarantined);
        self.checkpoints_written =
            self.checkpoints_written.saturating_add(other.checkpoints_written);
        self.checkpoint_bytes = self.checkpoint_bytes.saturating_add(other.checkpoint_bytes);
        self.recoveries = self.recoveries.saturating_add(other.recoveries);
        self.journal_bytes_truncated =
            self.journal_bytes_truncated.saturating_add(other.journal_bytes_truncated);
        self.lifetime_events.merge_from(&other.lifetime_events);
        self.flag_latency_events.merge_from(&other.flag_latency_events);
        self.touched_per_event.merge_from(&other.touched_per_event);
        self.sweep_batch.merge_from(&other.sweep_batch);
        for (h, o) in self.phase_nanos.iter_mut().zip(&other.phase_nanos) {
            h.merge_from(o);
        }
        for (row, other_row) in self.gc_cycles.iter_mut().zip(&other.gc_cycles) {
            for (c, &o) in row.iter_mut().zip(other_row) {
                *c = c.saturating_add(o);
            }
        }
        for (c, &o) in self.gc_scanned.iter_mut().zip(&other.gc_scanned) {
            *c = c.saturating_add(o);
        }
        for (c, &o) in self.gc_reclaimed.iter_mut().zip(&other.gc_reclaimed) {
            *c = c.saturating_add(o);
        }
        for (h, o) in self.gc_pause_ns.iter_mut().zip(&other.gc_pause_ns) {
            h.merge_from(o);
        }
        let room = MAX_GC_PAUSE_RECORDS.saturating_sub(self.gc_pauses.len());
        self.gc_pauses.extend(other.gc_pauses.iter().take(room));
        self.gc_debt = self.gc_debt.saturating_add(other.gc_debt);
        self.event_latency_ns.merge_from(&other.event_latency_ns);
    }

    /// Serializes every counter and histogram as one JSON object.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.snapshot_json_with(None, None)
    }

    /// Serializes the registry plus (optionally) the engine's own
    /// [`EngineStats`] and the simulated heap's [`HeapStats`], so one
    /// document carries the full pipeline state.
    #[must_use]
    pub fn snapshot_json_with(
        &self,
        engine: Option<&EngineStats>,
        heap: Option<&HeapStats>,
    ) -> String {
        let mut out = String::from("{\"counters\":{");
        let _ = write!(
            out,
            "\"events\":{},\"monitors_created\":{},\"monitors_flagged\":{},\
             \"monitors_collected\":{},\"dead_keys\":{},\"triggers\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"sweeps\":{},\
             \"budget_trips\":{},\"degradations_entered\":{},\"degradations_exited\":{},\
             \"shed\":{},\"quarantined\":{},\
             \"checkpoints_written\":{},\"checkpoint_bytes\":{},\
             \"recoveries\":{},\"journal_bytes_truncated\":{}",
            self.events,
            self.created,
            self.flagged,
            self.collected,
            self.dead_keys,
            self.triggers,
            self.cache_hits,
            self.cache_misses,
            self.sweeps,
            self.budget_trips,
            self.degradations_entered,
            self.degradations_exited,
            self.shed,
            self.quarantined,
            self.checkpoints_written,
            self.checkpoint_bytes,
            self.recoveries,
            self.journal_bytes_truncated
        );
        let _ = write!(out, ",\"gc_debt\":{}", self.gc_debt);
        for kind in GcKind::ALL {
            for reason in GcReason::ALL {
                let _ = write!(
                    out,
                    ",\"gc_{}_{}_cycles\":{}",
                    kind.label(),
                    reason.label(),
                    self.gc_cycles(kind, reason)
                );
            }
            let _ = write!(out, ",\"gc_{}_scanned\":{}", kind.label(), self.gc_scanned(kind));
            let _ = write!(out, ",\"gc_{}_reclaimed\":{}", kind.label(), self.gc_reclaimed(kind));
        }
        out.push_str("},\"histograms\":{");
        let _ = write!(out, "\"monitor_lifetime_events\":{}", self.lifetime_events.to_json());
        let _ = write!(out, ",\"flag_latency_events\":{}", self.flag_latency_events.to_json());
        let _ = write!(out, ",\"bindings_touched_per_event\":{}", self.touched_per_event.to_json());
        let _ = write!(out, ",\"sweep_batch_collected\":{}", self.sweep_batch.to_json());
        for p in Phase::ALL {
            let _ = write!(out, ",\"phase_{}_ns\":{}", p.label(), self.phase(p).to_json());
        }
        for kind in GcKind::ALL {
            let _ =
                write!(out, ",\"gc_pause_{}_ns\":{}", kind.label(), self.gc_pause(kind).to_json());
        }
        let _ = write!(out, ",\"event_latency_ns\":{}", self.event_latency_ns.to_json());
        out.push('}');
        if let Some(s) = engine {
            let _ = write!(out, ",\"engine\":{}", s.to_json());
        }
        if let Some(h) = heap {
            let _ = write!(out, ",\"heap\":{}", h.to_json());
        }
        out.push('}');
        out
    }
}

impl EngineObserver for MetricsRegistry {
    fn event_dispatched(&mut self, _event: EventId, _binding: &Binding, monitors_touched: usize) {
        self.events += 1;
        self.touched_per_event.record(monitors_touched as u64);
    }

    fn monitor_created(&mut self, id: MonitorId, _binding: &Binding) {
        self.created += 1;
        self.gc_debt = self.gc_debt.saturating_add(1);
        self.birth.insert(id, self.events);
    }

    fn monitor_flagged(
        &mut self,
        id: MonitorId,
        _binding: &Binding,
        _last_event: EventId,
        _dead: ParamSet,
        _cause: FlagCause,
    ) {
        self.flagged += 1;
        if let Some(&born) = self.birth.get(&id) {
            self.flag_latency_events.record(self.events - born);
        }
        self.flagged_at.insert(id, self.events);
    }

    fn monitor_collected(&mut self, id: MonitorId) {
        self.collected += 1;
        if let Some(born) = self.birth.remove(&id) {
            self.lifetime_events.record(self.events - born);
        }
        self.flagged_at.remove(&id);
    }

    fn dead_key_discovered(&mut self, _key: &Binding) {
        self.dead_keys += 1;
    }

    fn sweep_started(&mut self) {
        self.sweeps += 1;
    }

    fn sweep_finished(&mut self, _flagged: u64, collected: u64) {
        self.sweep_batch.record(collected);
    }

    fn trigger_fired(&mut self, _step: usize, _binding: &Binding, _verdict: Verdict) {
        self.triggers += 1;
    }

    fn cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    fn cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    fn phase_timed(&mut self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase.index()].record(nanos);
    }

    fn budget_tripped(&mut self, _budget: BudgetKind, _observed: u64, _limit: u64) {
        self.budget_trips += 1;
    }

    fn degradation_entered(&mut self, _level: DegradationPolicy) {
        self.degradations_entered += 1;
    }

    fn degradation_exited(&mut self, _level: DegradationPolicy) {
        self.degradations_exited += 1;
    }

    fn monitor_shed(&mut self, _binding: &Binding) {
        self.shed += 1;
    }

    fn monitor_quarantined(&mut self, _id: MonitorId, _binding: &Binding) {
        self.quarantined += 1;
    }

    fn checkpoint_written(&mut self, _seq: u64, bytes: u64) {
        self.checkpoints_written += 1;
        self.checkpoint_bytes += bytes;
    }

    fn recovery_started(&mut self, _checkpoint_seq: Option<u64>) {
        self.recoveries += 1;
    }

    fn records_truncated(&mut self, lost_bytes: u64) {
        self.journal_bytes_truncated += lost_bytes;
    }

    fn gc_cycle(&mut self, record: &GcCycleRecord) {
        self.gc_cycles[record.kind.index()][record.reason.index()] += 1;
        self.gc_scanned[record.kind.index()] =
            self.gc_scanned[record.kind.index()].saturating_add(record.scanned);
        self.gc_reclaimed[record.kind.index()] =
            self.gc_reclaimed[record.kind.index()].saturating_add(record.reclaimed);
        self.gc_pause_ns[record.kind.index()].record(record.pause_ns);
        if self.gc_pauses.len() < MAX_GC_PAUSE_RECORDS {
            self.gc_pauses.push((record.end_ns, record.pause_ns));
        }
        if record.kind == GcKind::MonitorSweep {
            self.gc_debt = self.gc_debt.saturating_sub(record.reclaimed);
        }
    }

    fn event_latency(&mut self, nanos: u64) {
        self.event_latency_ns.record(nanos);
    }
}

/// Minimum mutator utilization over any window of `window_ns`
/// nanoseconds within `[0, span_ns]`, given `(end_ns, pause_ns)` cycle
/// records (each pause occupies `[end_ns − pause_ns, end_ns)`).
///
/// Utilization of a window is the fraction of it *not* spent inside a
/// stop-the-world pause; MMU is the minimum over all window placements —
/// the classic real-time GC metric (Cheng & Blelloch 2001). Candidate
/// window positions need only be checked where the overlap function's
/// derivative changes sign: at each pause's start and at each
/// `end − window`, which this evaluates in O(n²) over the pause list.
/// Windows wider than the span degrade to whole-span utilization.
#[must_use]
pub fn mmu(pauses: &[(u64, u64)], span_ns: u64, window_ns: u64) -> f64 {
    if window_ns == 0 {
        return 0.0;
    }
    let span = span_ns.max(1);
    if window_ns >= span {
        let total: u64 = pauses.iter().map(|&(end, p)| p.min(end).min(span)).sum();
        return 1.0 - (total.min(span) as f64 / span as f64);
    }
    let overlap = |w_start: u64| -> u64 {
        let w_end = w_start + window_ns;
        pauses
            .iter()
            .map(|&(end, p)| {
                let start = end.saturating_sub(p);
                end.min(w_end).saturating_sub(start.max(w_start))
            })
            .sum()
    };
    let mut candidates: Vec<u64> = vec![0, span - window_ns];
    for &(end, p) in pauses {
        candidates.push(end.saturating_sub(p).min(span - window_ns));
        candidates.push(end.saturating_sub(window_ns).min(span - window_ns));
    }
    let worst = candidates.into_iter().map(overlap).max().unwrap_or(0).min(window_ns);
    1.0 - worst as f64 / window_ns as f64
}

/// Evaluates [`mmu`] at each window size, returning `(window_ns, mmu)`
/// pairs — the MMU curve.
#[must_use]
pub fn mmu_curve(pauses: &[(u64, u64)], span_ns: u64, windows: &[u64]) -> Vec<(u64, f64)> {
    windows.iter().map(|&w| (w, mmu(pauses, span_ns, w))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_logic::ParamId;

    #[test]
    fn noop_observer_is_disabled() {
        assert!(!NoopObserver::ENABLED);
        assert!(!<(NoopObserver, NoopObserver) as EngineObserver>::ENABLED);
        assert!(<(TraceRecorder, NoopObserver) as EngineObserver>::ENABLED);
        assert!(MetricsRegistry::ENABLED);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        let json = h.to_json();
        assert!(json.contains("\"le\":1,\"count\":2"), "{json}");
        assert!(json.contains("\"le\":2,\"count\":1"), "{json}");
        assert!(json.contains("\"le\":4,\"count\":2"), "{json}");
        assert!(json.contains("\"le\":1024,\"count\":1"), "{json}");
        assert!(json.contains("\"le\":\"inf\",\"count\":1"), "{json}");
    }

    #[test]
    fn histogram_merge_adds_counts_and_keeps_the_max() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(3);
        let mut b = Histogram::new();
        b.record(3);
        b.record(100);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 107);
        assert_eq!(a.max(), 100);
        let json = a.to_json();
        assert!(json.contains("\"le\":1,\"count\":1"), "{json}");
        assert!(json.contains("\"le\":4,\"count\":2"), "two 3s land in the same bucket: {json}");
        assert!(json.contains("\"le\":128,\"count\":1"), "{json}");
    }

    /// Repeated self-merges double every counter; 70 doublings walk the
    /// totals past 2^64, where the pre-fix `+=` would wrap (panicking in
    /// debug builds). Saturation must peg them at `u64::MAX` instead.
    #[test]
    fn histogram_counts_saturate_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(5);
        for _ in 0..70 {
            let snapshot = h.clone();
            h.merge_from(&snapshot);
        }
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), 5, "max is a mark, not a flow: never inflated by merging");
        let json = h.to_json();
        assert!(
            json.contains(&format!("\"le\":8,\"count\":{}", u64::MAX)),
            "bucket counts saturate too: {json}"
        );
    }

    #[test]
    fn metrics_registry_merge_aggregates_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.event_dispatched(EventId(0), &Binding::BOTTOM, 2);
        a.monitor_created(MonitorId::from_raw(0), &Binding::BOTTOM);
        a.trigger_fired(0, &Binding::BOTTOM, Verdict::Match);
        a.cache_hit();
        let mut b = MetricsRegistry::new();
        b.event_dispatched(EventId(1), &Binding::BOTTOM, 5);
        b.event_dispatched(EventId(1), &Binding::BOTTOM, 7);
        b.monitor_created(MonitorId::from_raw(0), &Binding::BOTTOM);
        b.monitor_collected(MonitorId::from_raw(0));
        b.cache_miss();
        b.sweep_started();
        b.sweep_finished(1, 4);
        a.merge_from(&b);
        assert_eq!(a.events(), 3);
        assert_eq!(a.created(), 2);
        assert_eq!(a.collected(), 1);
        assert_eq!(a.triggers(), 1);
        assert_eq!(a.sweeps(), 1);
        assert_eq!(a.touched_per_event().count(), 3, "histograms merge bucket-wise");
        assert_eq!(a.touched_per_event().max(), 7);
        assert_eq!(a.sweep_batch().count(), 1);
        assert_eq!(a.lifetime_events().count(), 1, "b collected one monitor at age 1");
        let json = a.snapshot_json();
        assert!(json.contains("\"events\":3"), "{json}");
        assert!(json.contains("\"monitors_created\":2"), "{json}");
        assert!(json.contains("\"cache_hits\":1"), "{json}");
        assert!(json.contains("\"cache_misses\":1"), "{json}");
    }

    #[test]
    fn ring_buffer_is_bounded_and_keeps_the_suffix() {
        let mut rec = TraceRecorder::new(4);
        for i in 0..10u32 {
            rec.monitor_collected(MonitorId::from_raw(i));
        }
        let records = rec.records();
        assert_eq!(records.len(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(records[0].seq, 6, "oldest surviving record");
        assert_eq!(records[3].seq, 9, "newest record last");
    }

    #[test]
    fn jsonl_dump_is_one_object_per_line() {
        let mut rec = TraceRecorder::new(16);
        rec.sweep_started();
        rec.sweep_finished(2, 3);
        rec.trigger_fired(0, &Binding::BOTTOM, Verdict::Match);
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"sweep_started\""));
        assert!(lines[1].contains("\"flagged\":2") && lines[1].contains("\"collected\":3"));
        assert!(lines[2].contains("\"verdict\":\"match\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn metrics_snapshot_contains_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        let id = MonitorId::from_raw(0);
        m.event_dispatched(EventId(0), &Binding::BOTTOM, 2);
        m.monitor_created(id, &Binding::BOTTOM);
        m.event_dispatched(EventId(1), &Binding::BOTTOM, 1);
        m.monitor_flagged(id, &Binding::BOTTOM, EventId(1), ParamSet::EMPTY, FlagCause::Aliveness);
        m.monitor_collected(id);
        let json = m.snapshot_json();
        assert!(json.contains("\"events\":2"), "{json}");
        assert!(json.contains("\"monitors_created\":1"), "{json}");
        assert!(json.contains("\"monitors_flagged\":1"), "{json}");
        assert!(json.contains("\"monitors_collected\":1"), "{json}");
        assert!(json.contains("\"monitor_lifetime_events\""), "{json}");
        assert!(json.contains("\"phase_index_lookup_ns\""), "{json}");
        // The lifetime histogram recorded 2 − 1 = 1 event of age.
        assert_eq!(m.lifetime_events().count(), 1);
        assert_eq!(m.lifetime_events().sum(), 1);
    }

    #[test]
    fn robustness_callbacks_reach_traces_and_metrics() {
        let mut rec = TraceRecorder::new(16);
        rec.budget_tripped(BudgetKind::LiveMonitors, 12, 10);
        rec.degradation_entered(DegradationPolicy::ForcedSweep);
        rec.monitor_shed(&Binding::BOTTOM);
        rec.monitor_quarantined(MonitorId::from_raw(3), &Binding::BOTTOM);
        rec.degradation_exited(DegradationPolicy::ForcedSweep);
        let dump = rec.dump_jsonl();
        assert!(
            dump.contains("\"kind\":\"budget_tripped\",\"budget\":\"live_monitors\""),
            "{dump}"
        );
        assert!(dump.contains("\"observed\":12,\"limit\":10"), "{dump}");
        assert!(dump.contains("\"kind\":\"degradation_entered\",\"level\":\"forced_sweep\""));
        assert!(dump.contains("\"kind\":\"degradation_exited\",\"level\":\"forced_sweep\""));
        assert!(dump.contains("\"kind\":\"shed\""));
        assert!(dump.contains("\"kind\":\"quarantined\",\"monitor\":3"));

        let mut m = MetricsRegistry::new();
        m.budget_tripped(BudgetKind::TrackedBytes, 2048, 1024);
        m.degradation_entered(DegradationPolicy::EagerCollect);
        m.degradation_entered(DegradationPolicy::ShedNewMonitors);
        m.monitor_shed(&Binding::BOTTOM);
        m.monitor_quarantined(MonitorId::from_raw(0), &Binding::BOTTOM);
        m.degradation_exited(DegradationPolicy::ShedNewMonitors);
        assert_eq!(m.budget_trips(), 1);
        assert_eq!(m.degradations_entered(), 2);
        assert_eq!(m.degradations_exited(), 1);
        assert_eq!(m.shed(), 1);
        assert_eq!(m.quarantined(), 1);
        let json = m.snapshot_json();
        for key in [
            "\"budget_trips\":1",
            "\"degradations_entered\":2",
            "\"degradations_exited\":1",
            "\"shed\":1",
            "\"quarantined\":1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn durability_callbacks_reach_traces_and_metrics() {
        let mut rec = TraceRecorder::new(16);
        rec.checkpoint_written(42, 1024);
        rec.recovery_started(Some(42));
        rec.recovery_started(None);
        rec.records_truncated(17);
        let dump = rec.dump_jsonl();
        assert!(dump.contains("\"kind\":\"checkpoint_written\",\"covered_seq\":42,\"bytes\":1024"));
        assert!(dump.contains("\"kind\":\"recovery_started\",\"checkpoint_seq\":42"), "{dump}");
        assert!(dump.contains("\"kind\":\"recovery_started\",\"checkpoint_seq\":null"), "{dump}");
        assert!(dump.contains("\"kind\":\"records_truncated\",\"lost_bytes\":17"), "{dump}");

        let mut m = MetricsRegistry::new();
        m.checkpoint_written(42, 1024);
        m.checkpoint_written(99, 512);
        m.recovery_started(None);
        m.records_truncated(17);
        assert_eq!(m.checkpoints_written(), 2);
        assert_eq!(m.checkpoint_bytes(), 1536);
        assert_eq!(m.recoveries(), 1);
        assert_eq!(m.journal_bytes_truncated(), 17);
        let json = m.snapshot_json();
        for key in [
            "\"checkpoints_written\":2",
            "\"checkpoint_bytes\":1536",
            "\"recoveries\":1",
            "\"journal_bytes_truncated\":17",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    /// Every C0 control character must leave `json_escape` as a valid JSON
    /// escape sequence — raw control bytes inside a string literal are
    /// malformed JSON.
    #[test]
    fn escape_covers_every_control_character() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let escaped = json_escape(&c.to_string());
            assert!(escaped.starts_with('\\'), "U+{code:04X} not escaped: {escaped:?}");
            let expected = match c {
                '\n' => "\\n".to_owned(),
                '\r' => "\\r".to_owned(),
                '\t' => "\\t".to_owned(),
                _ => format!("\\u{code:04x}"),
            };
            assert_eq!(escaped, expected, "U+{code:04X}");
        }
        // DEL and non-ASCII pass through: both are legal raw in JSON strings.
        assert_eq!(json_escape("\u{7f}é"), "\u{7f}é");
    }

    /// Non-finite floats have no JSON representation; the serializer must
    /// degrade to `null`, never emit `NaN`/`inf` tokens.
    #[test]
    fn json_f64_nulls_non_finite_values() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(-0.0), "-0");
        assert_eq!(json_f64(1.5), "1.5");
        // Extremes render as plain decimals (no exponent tokens JSON
        // parsers could choke on) and stay finite.
        let big = json_f64(f64::MAX);
        assert!(!big.contains('e') && !big.contains('E'), "{big}");
        let mean_of_empty = json_f64(0.0 / 1.0);
        assert_eq!(mean_of_empty, "0");
    }

    /// Quantile estimates interpolate inside power-of-two buckets: a
    /// bucket `(2^(i−1), 2^i]` holding the target rank yields a value
    /// inside those bounds, clamped to the observed max.
    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(1); // bucket 0: [0, 1]
        }
        for _ in 0..50 {
            h.record(100); // bucket 7: (64, 128]
        }
        let p50 = h.quantile(0.50);
        assert!((0.0..=1.0).contains(&p50), "p50 inside bucket 0: {p50}");
        let p95 = h.quantile(0.95);
        assert!((64.0..=100.0).contains(&p95), "p95 in (64, max]: {p95}");
        assert_eq!(h.quantile(1.0), 100.0, "p100 is the max");
        assert_eq!(Histogram::new().quantile(0.5), 0.0, "empty histogram");
        // A single sample: every quantile is that sample's bucket, capped
        // at the max itself.
        let mut one = Histogram::new();
        one.record(5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = one.quantile(q);
            assert!((4.0..=5.0).contains(&v), "q={q}: {v}");
        }
        let json = h.to_json();
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p95\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
    }

    /// Overflow-bucket ranks and saturated counts must not poison the
    /// estimate: the quantile clamps to the recorded max.
    #[test]
    fn histogram_quantiles_survive_overflow_and_saturation() {
        let mut h = Histogram::new();
        h.record(u64::MAX); // overflow bucket
        assert_eq!(h.quantile(0.5), u64::MAX as f64);
        let mut s = Histogram::new();
        s.record(5);
        for _ in 0..70 {
            let snapshot = s.clone();
            s.merge_from(&snapshot);
        }
        assert_eq!(s.count(), u64::MAX);
        let p99 = s.quantile(0.99);
        assert!((4.0..=5.0).contains(&p99), "saturated counts still estimate: {p99}");
    }

    /// Merging is associative on every exposed statistic: (a⊕b)⊕c equals
    /// a⊕(b⊕c) bucket-for-bucket, so shard aggregation order is
    /// irrelevant.
    #[test]
    fn histogram_merge_is_associative() {
        let mk = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[0, 1, 7]), mk(&[8, 9, 1_000_000]), mk(&[3, u64::MAX]));
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.to_json(), right.to_json(), "bucket-for-bucket equality");
    }

    /// Exact bucket boundaries: `2^i` lands in bucket `i`, `2^i + 1` in
    /// bucket `i+1`, mirroring `le`-labelled upper bounds in the JSON.
    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        for i in 1..10u32 {
            let edge = 1u64 << i;
            let mut h = Histogram::new();
            h.record(edge);
            assert!(h.to_json().contains(&format!("\"le\":{edge},\"count\":1")), "2^{i}");
            let mut h2 = Histogram::new();
            h2.record(edge + 1);
            assert!(
                h2.to_json().contains(&format!("\"le\":{},\"count\":1", edge << 1)),
                "2^{i}+1 overflows into the next bucket"
            );
        }
    }

    #[test]
    fn phase_labels_round_trip_and_cover_the_hot_path() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("nonsense"), None);
        let mut m = MetricsRegistry::new();
        for p in Phase::ALL {
            m.phase_timed(p, 10);
        }
        let json = m.snapshot_json();
        for p in Phase::ALL {
            assert!(json.contains(&format!("\"phase_{}_ns\"", p.label())), "{json}");
        }
    }

    #[test]
    fn binding_renders_without_names() {
        let obj = rv_heap::ObjId::from_bits((1 << 32) | 5);
        let b = Binding::from_pairs(&[(ParamId(0), obj)]);
        assert_eq!(render_binding(&b, None), "x0=#1g5");
    }

    /// Satellite: `quantile()` edge-case battery — empty, single-sample,
    /// and saturated-top-bucket inputs.
    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(empty.quantile(q), 0.0, "empty histogram at q={q}");
        }

        // Single sample: every quantile stays inside the enclosing
        // power-of-two bucket and never exceeds the exact max.
        let mut single = Histogram::new();
        single.record(100); // bucket (64, 128]
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = single.quantile(q);
            assert!(est > 64.0 - f64::EPSILON && est <= 100.0, "q={q} gave {est}");
        }
        assert_eq!(single.quantile(1.0), 100.0, "p100 of one sample is that sample");

        // Saturated top bucket: all mass in overflow clamps to max.
        let mut over = Histogram::new();
        over.record(u64::MAX);
        over.record(u64::MAX - 7);
        for q in [0.1, 0.5, 0.999] {
            assert_eq!(over.quantile(q), u64::MAX as f64, "overflow clamps to max at q={q}");
        }

        // Out-of-range q clamps rather than panicking.
        let mut h = Histogram::new();
        h.record(4);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));

        // The documented power-of-2 error bound: estimate within 2× of
        // the true value for a uniform-ish fill.
        let mut u = Histogram::new();
        for v in 1..=1024u64 {
            u.record(v);
        }
        let p50 = u.quantile(0.5);
        assert!(p50 >= 256.0 && p50 <= 1024.0, "true p50=512, bound allows (256,1024]: {p50}");
        assert!(u.to_json().contains("\"p999\":"), "p99.9 is exported");
    }

    #[test]
    fn gc_cycle_record_round_trips_through_bytes() {
        for kind in GcKind::ALL {
            for reason in GcReason::ALL {
                let rec = GcCycleRecord {
                    kind,
                    reason,
                    end_ns: 123_456_789,
                    pause_ns: 42_000,
                    scanned: 1000,
                    reclaimed: 37,
                    flagged: 5,
                    occupancy_before: 900,
                    occupancy_after: 863,
                };
                let bytes = rec.to_bytes();
                assert_eq!(bytes.len(), GcCycleRecord::ENCODED_LEN);
                assert_eq!(GcCycleRecord::from_bytes(&bytes), Some(rec));
            }
        }
        assert_eq!(GcCycleRecord::from_bytes(&[]), None);
        assert_eq!(GcCycleRecord::from_bytes(&[9; GcCycleRecord::ENCODED_LEN]), None);
        let mut short = vec![0; GcCycleRecord::ENCODED_LEN - 1];
        short[0] = 0;
        assert_eq!(GcCycleRecord::from_bytes(&short), None);
    }

    #[test]
    fn metrics_registry_accounts_gc_cycles_and_debt() {
        let mut m = MetricsRegistry::new();
        for i in 0..3u32 {
            m.monitor_created(MonitorId::from_raw(i), &Binding::BOTTOM);
        }
        assert_eq!(m.gc_debt(), 3, "creations accrue debt");
        m.gc_cycle(&GcCycleRecord {
            kind: GcKind::MonitorSweep,
            reason: GcReason::Forced,
            end_ns: 1000,
            pause_ns: 100,
            scanned: 3,
            reclaimed: 2,
            flagged: 1,
            occupancy_before: 3,
            occupancy_after: 1,
        });
        assert_eq!(m.gc_debt(), 1, "sweep reclaim pays debt down");
        m.gc_cycle(&GcCycleRecord {
            kind: GcKind::HeapCollect,
            reason: GcReason::Periodic,
            end_ns: 2000,
            pause_ns: 50,
            scanned: 10,
            reclaimed: 4,
            flagged: 0,
            occupancy_before: 10,
            occupancy_after: 6,
        });
        assert_eq!(m.gc_debt(), 1, "heap cycles do not touch monitor debt");
        assert_eq!(m.gc_cycles(GcKind::MonitorSweep, GcReason::Forced), 1);
        assert_eq!(m.gc_cycles(GcKind::HeapCollect, GcReason::Periodic), 1);
        assert_eq!(m.gc_cycles_total(GcKind::MonitorSweep), 1);
        assert_eq!(m.gc_scanned(GcKind::MonitorSweep), 3);
        assert_eq!(m.gc_reclaimed(GcKind::HeapCollect), 4);
        assert_eq!(m.gc_pause(GcKind::MonitorSweep).count(), 1);
        assert_eq!(m.gc_pauses(), &[(1000, 100), (2000, 50)]);

        // Merge aggregates all GC state.
        let mut other = MetricsRegistry::new();
        other.gc_cycle(&GcCycleRecord {
            kind: GcKind::MonitorSweep,
            reason: GcReason::Budget,
            end_ns: 500,
            pause_ns: 10,
            scanned: 1,
            reclaimed: 0,
            flagged: 0,
            occupancy_before: 1,
            occupancy_after: 1,
        });
        m.merge_from(&other);
        assert_eq!(m.gc_cycles_total(GcKind::MonitorSweep), 2);
        assert_eq!(m.gc_pauses().len(), 3);
        assert_eq!(m.gc_pause(GcKind::MonitorSweep).count(), 2);

        let json = m.snapshot_json();
        assert!(json.contains("\"gc_debt\":1"), "{json}");
        assert!(json.contains("\"gc_monitor_sweep_forced_cycles\":1"), "{json}");
        assert!(json.contains("\"gc_heap_periodic_cycles\":1"), "{json}");
        assert!(json.contains("\"gc_pause_monitor_sweep_ns\""), "{json}");
        assert!(json.contains("\"event_latency_ns\""), "{json}");
    }

    #[test]
    fn mmu_matches_hand_computed_windows() {
        // One 10 ns pause ending at t=50 in a 100 ns span.
        let pauses = [(50u64, 10u64)];
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        assert!(close(mmu(&pauses, 100, 100), 0.9), "whole span: 90 of 100 mutating");
        assert!(close(mmu(&pauses, 100, 10), 0.0), "a 10 ns window fits inside the pause");
        assert!(close(mmu(&pauses, 100, 20), 0.5), "worst 20 ns window holds the full pause");
        assert!(close(mmu(&pauses, 100, 40), 0.75), "worst 40 ns window holds the full pause");

        // Two adjacent pauses merge their effect within one window.
        let two = [(20u64, 10u64), (40u64, 10u64)];
        assert!(close(mmu(&two, 100, 30), 1.0 / 3.0), "window [10,40) holds both pauses");
        assert!(close(mmu(&two, 100, 100), 0.8));

        // No pauses: utilization 1 at every window.
        assert!(close(mmu(&[], 100, 10), 1.0));
        assert!(close(mmu(&[], 100, 1000), 1.0), "window wider than span");

        // Degenerate inputs.
        assert!(close(mmu(&pauses, 100, 0), 0.0), "zero window is defined as 0");

        let curve = mmu_curve(&pauses, 100, &[10, 20, 100]);
        assert_eq!(curve.len(), 3);
        assert!(close(curve[0].1, 0.0) && close(curve[1].1, 0.5) && close(curve[2].1, 0.9));
        assert!(
            curve.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-9),
            "MMU is monotone in window size for a single pause"
        );
    }
}
