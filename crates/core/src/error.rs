//! Typed, recoverable errors for the monitoring engine.
//!
//! The engine originally panicked on internal inconsistencies (a missing
//! indexing tree, a stale monitor id). For the ROADMAP's "production-scale
//! system serving heavy traffic" those must be *recoverable*: a monitoring
//! layer that can take the monitored program down is worse than no
//! monitoring at all. [`EngineError`] is the error type of the fallible
//! engine API ([`Engine::try_process`](crate::Engine::try_process),
//! [`Engine::check_invariants`](crate::Engine::check_invariants)); the
//! legacy panicking entry points are thin wrappers over it.

use std::fmt;

use rv_logic::{EventId, ParamSet};

use crate::store::MonitorId;

/// An internal engine failure surfaced as a recoverable error instead of a
/// panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// An event instance was not `D`-consistent (Definition 4): the
    /// binding's domain differs from the event's declared parameter set.
    InconsistentEvent {
        /// The dispatched event.
        event: EventId,
        /// The parameter set `D(e)` the event declares.
        expected: ParamSet,
        /// The domain of the binding actually supplied.
        got: ParamSet,
    },
    /// The event id lies outside the property's alphabet.
    EventOutOfAlphabet(EventId),
    /// The indexing tree for a tracked parameter subset is missing — the
    /// engine's tree family no longer covers `D(e)`.
    MissingTree(ParamSet),
    /// A monitor id referenced by an indexing structure was already
    /// collected.
    StaleMonitor(MonitorId),
    /// A named event does not belong to the spec (the fallible face of
    /// [`PropertyMonitor::process_named`](crate::PropertyMonitor::process_named)).
    UnknownEvent(String),
    /// A store/tree/stats consistency invariant failed
    /// ([`Engine::check_invariants`](crate::Engine::check_invariants)).
    InvariantViolation(String),
    /// A write-ahead journal artifact is unusable: bad magic, a stale
    /// format version, or corruption at a point recovery cannot skip
    /// (e.g. the spec header record). Torn *tails* are not errors — the
    /// recovery reader truncates them — so this fires only when the head
    /// of the log is gone.
    CorruptJournal {
        /// The offending journal segment (or the journal directory).
        file: String,
        /// Byte offset of the corruption within that file.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A checkpoint file failed validation (magic/version/CRC/decode) —
    /// reported when recovery has no older generation to fall back to,
    /// or when a caller asked for this checkpoint specifically.
    CorruptSnapshot {
        /// The offending checkpoint file.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// A shard worker thread of a [`ShardedMonitor`] hung up its channel —
    /// it either panicked or was torn down early. Events routed to that
    /// shard after the disconnect are lost.
    ///
    /// [`ShardedMonitor`]: crate::shard::ShardedMonitor
    ShardDisconnected {
        /// Index of the shard whose worker disconnected.
        shard: usize,
    },
    /// A journal append failed persistently: every retry the
    /// [`RetryPolicy`](crate::journal::RetryPolicy) allowed was spent (or
    /// the failure was non-transient to begin with). The on-disk journal
    /// is still a valid durable prefix — the writer repairs its tail
    /// before reporting — but the record was not appended.
    Journal {
        /// The active journal segment at failure time.
        file: String,
        /// Write attempts made (1 = the failure was immediately fatal).
        attempts: u32,
        /// The underlying IO error.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InconsistentEvent { event, expected, got } => write!(
                f,
                "event e{} is not D-consistent: expected domain {expected:?}, got {got:?}",
                event.as_usize()
            ),
            EngineError::EventOutOfAlphabet(e) => {
                write!(f, "event e{} is outside the property's alphabet", e.as_usize())
            }
            EngineError::MissingTree(p) => {
                write!(f, "no indexing tree for parameter subset {p:?}")
            }
            EngineError::StaleMonitor(id) => {
                write!(f, "monitor #{} was already collected", id.as_usize())
            }
            EngineError::UnknownEvent(name) => write!(f, "unknown event `{name}`"),
            EngineError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            EngineError::CorruptJournal { file, offset, detail } => {
                write!(f, "corrupt journal: {file} at byte {offset}: {detail}")
            }
            EngineError::CorruptSnapshot { file, detail } => {
                write!(f, "corrupt snapshot: {file}: {detail}")
            }
            EngineError::ShardDisconnected { shard } => {
                write!(f, "shard {shard} worker disconnected")
            }
            EngineError::Journal { file, attempts, detail } => {
                write!(f, "journal append failed after {attempts} attempt(s) on {file}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = EngineError::UnknownEvent("zap".into());
        assert_eq!(e.to_string(), "unknown event `zap`");
        let e = EngineError::InvariantViolation("live != created - collected".into());
        assert!(e.to_string().contains("invariant violation"));
        let e = EngineError::EventOutOfAlphabet(EventId(9));
        assert!(e.to_string().contains("e9"));
    }

    #[test]
    fn durability_errors_carry_file_and_offset_context() {
        let e = EngineError::CorruptJournal {
            file: "journal-00000000".into(),
            offset: 17,
            detail: "bad magic".into(),
        };
        let s = e.to_string();
        assert!(s.contains("journal-00000000") && s.contains("byte 17") && s.contains("bad magic"));
        let e = EngineError::CorruptSnapshot {
            file: "checkpoint-00000002".into(),
            detail: "CRC mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("checkpoint-00000002") && s.contains("CRC mismatch"));
        let e = EngineError::Journal {
            file: "journal-00000003".into(),
            attempts: 5,
            detail: "injected transient fault".into(),
        };
        let s = e.to_string();
        assert!(s.contains("journal-00000003") && s.contains("5 attempt"), "{s}");
    }
}
