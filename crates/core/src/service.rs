//! Multi-tenant monitoring service core — the engine room of `rvmond`.
//!
//! The slicing engine is per-trace-slice independent, which makes hard
//! per-tenant isolation tractable: each tenant owns a private
//! [`PropertyMonitor`] (every property block its own engine), its own
//! [`EngineConfig`] budgets and degradation ladder, its own write-ahead
//! journal directory under the service root, and a panic boundary (a
//! dedicated worker thread whose message loop runs under
//! `catch_unwind`). A tenant whose trigger handler panics or who trips
//! `shed_new_monitors` is quarantined or degraded *alone* — neighbor
//! tenants' trigger streams are byte-identical to a solo run, because a
//! tenant's journal is a pure function of its own event stream.
//!
//! ## Isolation domains
//!
//! ```text
//!  connection threads          tenant workers (one thread each)
//!  ┌──────────────┐  frames   ┌───────────────────────────────┐
//!  │ serve_       │──────────▶│ tenant "a": monitor + heap +  │──▶ root/a/journal-…
//!  │ connection   │  bounded  │   journal + budgets + ladder  │
//!  │ (admission,  │  ingest   ├───────────────────────────────┤
//!  │  timeouts,   │  queues   │ tenant "b": …                 │──▶ root/b/journal-…
//!  │  backpressure│──────────▶│   (panics stay inside)        │
//!  └──────────────┘           └───────────────────────────────┘
//! ```
//!
//! ## Wire protocol
//!
//! Length-prefixed frames over any ordered byte stream (TCP in
//! `rvmond`): `[len: u32 LE][kind: u8][payload: len-1 bytes]`. Clients
//! send [`FRAME_HELLO`] (attach to a tenant, creating it with a spec on
//! first contact), [`FRAME_EVENT`] (one line of the `rvmon trace`
//! grammar), [`FRAME_SYNC`] (durability barrier: the reply arrives after
//! everything enqueued before it is processed *and* fsynced),
//! [`FRAME_STATS`] and [`FRAME_BYE`]. The server answers with
//! [`FRAME_OK`], [`FRAME_SYNCED`], [`FRAME_STATS_REPLY`] or a typed
//! [`FRAME_REJECT`] carrying a `429`-style code ([`REJECT_QUEUE_FULL`],
//! [`REJECT_TOO_MANY_TENANTS`], …).
//!
//! ## Backpressure
//!
//! Each tenant has a bounded ingest queue. Under [`Backpressure::Block`]
//! a full queue blocks the connection thread (TCP backpressure reaches
//! the client); under [`Backpressure::Shed`] the event is dropped and
//! the client gets a [`REJECT_QUEUE_FULL`] frame, counted in
//! [`ServiceStats::events_shed`] and the tenant's snapshot.
//!
//! ## Drain protocol and recovery
//!
//! [`Service::drain`] stops admissions, sends every worker a drain
//! message, and joins them; each worker fsyncs its journal and writes a
//! final checkpoint (PR-3 RVCK), so a restarted service resumes from a
//! near-instant restore. After a hard kill, [`Service::recover_all`]
//! rebuilds every tenant from its journal directory: checkpoint restore
//! plus suffix replay with `(event_seq, ordinal)` high-water-mark
//! duplicate suppression — triggers are delivered exactly once across
//! the crash.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rv_heap::{Heap, HeapConfig, ObjId};
use rv_spec::CompiledSpec;

use crate::binding::Binding;
use crate::engine::EngineConfig;
use crate::journal::{
    read_journal, JournalScan, JournalWriter, Record, RetryPolicy, AUX_FREE, AUX_GC, AUX_OBJ,
    AUX_SPEC, AUX_SWEEP,
};
use crate::multi::PropertyMonitor;
use crate::obs::MetricsRegistry;
use crate::snapshot::{list_checkpoints, load_latest_checkpoint, write_checkpoint};

// --- Wire protocol -------------------------------------------------------

/// Upper bound on a frame payload; larger length prefixes are rejected
/// without allocating.
pub const FRAME_MAX: u32 = 1 << 20;

/// Client → server: attach to (or create) a tenant. Payload:
/// `[flags: u8][max_live_monitors: u32 LE, 0 = unbounded][name]\n[spec]`
/// — the spec may be empty when attaching to an existing tenant.
pub const FRAME_HELLO: u8 = 0x01;
/// Client → server: one line of the `rvmon trace` grammar (`event obj…`,
/// `!free obj…`, `!gc`, `!sweep`) for the connection's tenant.
pub const FRAME_EVENT: u8 = 0x02;
/// Client → server: durability barrier. Payload: an opaque `u64 LE`
/// token; the matching [`FRAME_SYNCED`] is sent only after every event
/// enqueued before it has been processed and the journal fsynced.
pub const FRAME_SYNC: u8 = 0x03;
/// Client → server: request the tenant's stats JSON.
pub const FRAME_STATS: u8 = 0x04;
/// Client → server: graceful goodbye; the server closes the connection.
pub const FRAME_BYE: u8 = 0x05;

/// Server → client: HELLO accepted. Payload: the tenant name.
pub const FRAME_OK: u8 = 0x80;
/// Server → client: barrier reached. Payload: the echoed `u64` token.
pub const FRAME_SYNCED: u8 = 0x81;
/// Server → client: stats JSON payload.
pub const FRAME_STATS_REPLY: u8 = 0x82;
/// Server → client: typed rejection. Payload:
/// `[code: u16 LE][message UTF-8]`.
pub const FRAME_REJECT: u8 = 0x83;

/// Reject code: malformed frame or a frame sent before a HELLO.
pub const REJECT_BAD_FRAME: u16 = 400;
/// Reject code: a HELLO for an existing tenant carried a different spec.
pub const REJECT_SPEC_MISMATCH: u16 = 409;
/// Reject code: the HELLO spec failed to compile.
pub const REJECT_BAD_SPEC: u16 = 422;
/// Reject code: the tenant table is full ([`ServiceConfig::max_tenants`]).
pub const REJECT_TOO_MANY_TENANTS: u16 = 429;
/// Reject code: the tenant's connection cap is reached
/// ([`ServiceConfig::max_conns_per_tenant`]).
pub const REJECT_TOO_MANY_CONNS: u16 = 430;
/// Reject code: the tenant's ingest queue is full and the backpressure
/// policy is [`Backpressure::Shed`] — the event was dropped.
pub const REJECT_QUEUE_FULL: u16 = 431;
/// Reject code: the tenant's worker failed (panic or persistent journal
/// failure) and is quarantined; its neighbors are unaffected.
pub const REJECT_TENANT_FAILED: u16 = 500;
/// Reject code: the service is draining and admits no new work.
pub const REJECT_DRAINING: u16 = 503;
/// Reject code: a barrier or stats request timed out inside the service.
pub const REJECT_TIMEOUT: u16 = 504;

/// A typed rejection: the `429`-style code plus a human-readable reason.
pub type Reject = (u16, String);

/// Writes one `[len][kind][payload]` frame.
///
/// # Errors
///
/// Any IO error from the underlying stream.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len() + 1).map_err(|_| ErrorKind::InvalidInput)?;
    if len > FRAME_MAX {
        return Err(std::io::Error::new(ErrorKind::InvalidInput, "frame exceeds FRAME_MAX"));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// IO errors from the stream (including read timeouts, surfaced as
/// `WouldBlock`/`TimedOut`), an EOF mid-frame, or an implausible length
/// prefix (`InvalidData`).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    let mut n = 0;
    while n < 4 {
        match r.read(&mut len_buf[n..])? {
            0 if n == 0 => return Ok(None),
            0 => return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "EOF mid-frame")),
            read => n += read,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > FRAME_MAX {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let kind = body[0];
    body.remove(0);
    Ok(Some((kind, body)))
}

/// Encodes a HELLO payload (client-side helper shared with `loadgen`).
#[must_use]
pub fn encode_hello(name: &str, spec: &str, opts: &TenantOptions) -> Vec<u8> {
    let mut p = Vec::with_capacity(6 + name.len() + 1 + spec.len());
    p.push(opts.flags);
    p.extend_from_slice(&opts.max_live_monitors.map_or(0, |n| n.max(1)).to_le_bytes());
    p.extend_from_slice(name.as_bytes());
    p.push(b'\n');
    p.extend_from_slice(spec.as_bytes());
    p
}

/// Decodes a HELLO payload into `(name, spec, options)`.
#[must_use]
pub fn decode_hello(payload: &[u8]) -> Option<(String, String, TenantOptions)> {
    let flags = *payload.first()?;
    let max_live = u32::from_le_bytes(payload.get(1..5)?.try_into().ok()?);
    let rest = payload.get(5..)?;
    let split = rest.iter().position(|&b| b == b'\n')?;
    let name = String::from_utf8(rest[..split].to_vec()).ok()?;
    let spec = String::from_utf8(rest[split + 1..].to_vec()).ok()?;
    let opts = TenantOptions { flags, max_live_monitors: (max_live > 0).then_some(max_live) };
    Some((name, spec, opts))
}

// --- Configuration -------------------------------------------------------

/// What a full per-tenant ingest queue does to the next event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backpressure {
    /// Block the submitting connection thread until the queue drains —
    /// TCP backpressure propagates to the client.
    #[default]
    Block,
    /// Drop the event and answer a [`REJECT_QUEUE_FULL`] frame; the drop
    /// is counted in [`ServiceStats::events_shed`].
    Shed,
}

/// Tenant option flag: install a trigger handler that panics on every
/// goal report — the chaos hook CI uses to prove the panic boundary.
pub const TENANT_FLAG_PANIC_HANDLER: u8 = 0x01;

/// Per-tenant options carried in the HELLO frame and persisted beside
/// the tenant's journal for recovery.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TenantOptions {
    /// Flag bits ([`TENANT_FLAG_PANIC_HANDLER`]).
    pub flags: u8,
    /// Overrides [`EngineConfig::max_live_monitors`] for this tenant —
    /// the knob that arms the degradation ladder per tenant.
    pub max_live_monitors: Option<u32>,
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory; tenant `t` journals into `root/t/`.
    pub root: PathBuf,
    /// Admission cap on concurrently registered tenants.
    pub max_tenants: usize,
    /// Admission cap on concurrent connections per tenant.
    pub max_conns_per_tenant: usize,
    /// Bounded ingest queue depth per tenant (events in flight).
    pub queue_depth: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// Events between tenant checkpoints.
    pub checkpoint_every: u64,
    /// Template engine configuration for tenants (`record_triggers` is
    /// forced on — the journal needs the reports).
    pub engine: EngineConfig,
    /// Retry policy for journal appends.
    pub retry: RetryPolicy,
    /// How long a barrier or stats round trip may take before the
    /// service answers [`REJECT_TIMEOUT`].
    pub reply_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            root: PathBuf::from("rvmond-data"),
            max_tenants: 8,
            max_conns_per_tenant: 4,
            queue_depth: 256,
            backpressure: Backpressure::Block,
            checkpoint_every: 256,
            engine: EngineConfig::default(),
            retry: RetryPolicy::default(),
            reply_timeout: Duration::from_secs(10),
        }
    }
}

// --- Service-wide stats --------------------------------------------------

/// Service-level counters (tenant-level ones live in the snapshots).
/// All atomics: connection threads and workers bump them lock-free.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Tenants admitted (fresh creations plus recoveries).
    pub tenants_admitted: AtomicU64,
    /// Tenant admissions rejected (table full, bad spec, draining…).
    pub tenants_rejected: AtomicU64,
    /// Connection permits granted.
    pub conns_opened: AtomicU64,
    /// Connection permits refused (per-tenant cap).
    pub conns_rejected: AtomicU64,
    /// Events accepted into ingest queues.
    pub events_submitted: AtomicU64,
    /// Events dropped by [`Backpressure::Shed`].
    pub events_shed: AtomicU64,
    /// Malformed frames answered with [`REJECT_BAD_FRAME`].
    pub bad_frames: AtomicU64,
    /// Connections closed because a read idled past the timeout.
    pub idle_reaped: AtomicU64,
}

impl ServiceStats {
    /// Renders the counters as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenants_admitted\":{},\"tenants_rejected\":{},\"conns_opened\":{},\
             \"conns_rejected\":{},\"events_submitted\":{},\"events_shed\":{},\
             \"bad_frames\":{},\"idle_reaped\":{}}}",
            self.tenants_admitted.load(Ordering::Relaxed),
            self.tenants_rejected.load(Ordering::Relaxed),
            self.conns_opened.load(Ordering::Relaxed),
            self.conns_rejected.load(Ordering::Relaxed),
            self.events_submitted.load(Ordering::Relaxed),
            self.events_shed.load(Ordering::Relaxed),
            self.bad_frames.load(Ordering::Relaxed),
            self.idle_reaped.load(Ordering::Relaxed),
        )
    }
}

// --- Tenant state --------------------------------------------------------

/// Lifecycle state of a tenant's isolation domain.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum TenantState {
    /// Worker alive and consuming.
    #[default]
    Running,
    /// Worker stopped after a drain checkpoint — restart-ready.
    Drained,
    /// Worker quarantined after a panic or persistent journal failure;
    /// the string is the failure rendering. Neighbors are unaffected.
    Failed(String),
}

impl TenantState {
    /// Short label for health output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TenantState::Running => "running",
            TenantState::Drained => "drained",
            TenantState::Failed(_) => "failed",
        }
    }
}

/// A point-in-time public view of one tenant, maintained by its worker
/// and read by `/healthz`, `/metrics` and the stats frames.
#[derive(Clone, Debug, Default)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// Lifecycle state.
    pub state: TenantState,
    /// Event lines processed (journaled and dispatched).
    pub events: u64,
    /// Goal reports delivered (journaled).
    pub triggers: u64,
    /// Events dropped at the ingest queue by [`Backpressure::Shed`].
    pub shed_events: u64,
    /// Client lines rejected as malformed (unknown event, bad arity…).
    pub bad_lines: u64,
    /// Monitors quarantined after trigger-handler panics.
    pub quarantined: u64,
    /// Budget trips counted by the engines.
    pub budget_trips: u64,
    /// Degradation-ladder transitions entered.
    pub degradations: u64,
    /// Monitor creations shed by the `shed_new_monitors` rung.
    pub shed_monitors: u64,
    /// Live monitor instances.
    pub monitors_live: u64,
    /// Checkpoints written (drain and periodic).
    pub checkpoints: u64,
    /// Journal records appended.
    pub journal_records: u64,
    /// Transient journal-append retries spent.
    pub journal_retries: u64,
    /// Events replayed during recovery (0 for a fresh tenant).
    pub recovered_events: u64,
    /// Goal reports suppressed as already-delivered during recovery.
    pub suppressed_triggers: u64,
}

impl TenantSnapshot {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let state = match &self.state {
            TenantState::Failed(e) => format!("\"failed: {}\"", e.replace('"', "'")),
            s => format!("\"{}\"", s.label()),
        };
        format!(
            "{{\"name\":\"{}\",\"state\":{state},\"events\":{},\"triggers\":{},\
             \"shed_events\":{},\"bad_lines\":{},\"quarantined\":{},\"budget_trips\":{},\
             \"degradations\":{},\"shed_monitors\":{},\"monitors_live\":{},\
             \"checkpoints\":{},\"journal_records\":{},\"journal_retries\":{},\
             \"recovered_events\":{},\"suppressed_triggers\":{}}}",
            self.name,
            self.events,
            self.triggers,
            self.shed_events,
            self.bad_lines,
            self.quarantined,
            self.budget_trips,
            self.degradations,
            self.shed_monitors,
            self.monitors_live,
            self.checkpoints,
            self.journal_records,
            self.journal_retries,
            self.recovered_events,
            self.suppressed_triggers,
        )
    }
}

enum TenantMsg {
    Line(String),
    Sync { token: u64, reply: SyncSender<u64> },
    Stats { reply: SyncSender<String> },
    Drain,
}

struct Tenant {
    ingest: SyncSender<TenantMsg>,
    conns: Arc<AtomicUsize>,
    shared: Arc<Mutex<TenantSnapshot>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// A granted connection slot; dropping it releases the slot.
#[derive(Debug)]
pub struct ConnPermit {
    conns: Arc<AtomicUsize>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.conns.fetch_sub(1, Ordering::AcqRel);
    }
}

// --- The service ---------------------------------------------------------

/// The multi-tenant service core: tenant registry, admission control,
/// ingest routing, drain, and recovery. `rvmond` wraps it in TCP;
/// tests drive it directly.
pub struct Service {
    config: ServiceConfig,
    tenants: Mutex<HashMap<String, Tenant>>,
    /// Service-level counters.
    pub stats: ServiceStats,
    draining: AtomicBool,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("root", &self.config.root).finish()
    }
}

fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

const OPTIONS_FILE: &str = "tenant.opts";

fn write_options(dir: &Path, opts: &TenantOptions) -> std::io::Result<()> {
    std::fs::write(
        dir.join(OPTIONS_FILE),
        format!(
            "flags={}\nmax_live_monitors={}\n",
            opts.flags,
            opts.max_live_monitors.unwrap_or(0)
        ),
    )
}

fn read_options(dir: &Path) -> TenantOptions {
    let mut opts = TenantOptions::default();
    let Ok(text) = std::fs::read_to_string(dir.join(OPTIONS_FILE)) else {
        return opts;
    };
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("flags=") {
            opts.flags = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("max_live_monitors=") {
            let n: u32 = v.trim().parse().unwrap_or(0);
            opts.max_live_monitors = (n > 0).then_some(n);
        }
    }
    opts
}

impl Service {
    /// Creates the service, making the root directory.
    ///
    /// # Errors
    ///
    /// Any IO error creating the root directory.
    pub fn new(config: ServiceConfig) -> std::io::Result<Service> {
        std::fs::create_dir_all(&config.root)?;
        Ok(Service {
            config,
            tenants: Mutex::new(HashMap::new()),
            stats: ServiceStats::default(),
            draining: AtomicBool::new(false),
        })
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Whether the service is draining (no new admissions or events).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Admits (or attaches to) tenant `name`. A fresh tenant needs a
    /// non-empty `spec` source; attaching to a live tenant accepts an
    /// empty spec or the identical source. A tenant directory left by a
    /// previous run is recovered: checkpoint restore + journal suffix
    /// replay with duplicate-trigger suppression.
    ///
    /// # Errors
    ///
    /// A typed [`Reject`]: [`REJECT_DRAINING`], [`REJECT_BAD_FRAME`]
    /// (bad name / missing spec), [`REJECT_TOO_MANY_TENANTS`],
    /// [`REJECT_BAD_SPEC`], [`REJECT_SPEC_MISMATCH`] or
    /// [`REJECT_TENANT_FAILED`] (recovery failed).
    pub fn admit(&self, name: &str, spec: &str, opts: TenantOptions) -> Result<(), Reject> {
        if self.is_draining() {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((REJECT_DRAINING, "service is draining".into()));
        }
        if !valid_tenant_name(name) {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((REJECT_BAD_FRAME, "tenant names are 1-64 chars of [A-Za-z0-9_-]".into()));
        }
        let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
        if let Some(t) = tenants.get(name) {
            let state = t.shared.lock().expect("snapshot poisoned").state.clone();
            if let TenantState::Failed(e) = state {
                self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
                return Err((REJECT_TENANT_FAILED, format!("tenant quarantined: {e}")));
            }
            return Ok(());
        }
        if tenants.len() >= self.config.max_tenants {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                REJECT_TOO_MANY_TENANTS,
                format!("tenant table full ({} tenants)", tenants.len()),
            ));
        }
        let dir = self.config.root.join(name);
        let has_journal = dir.join("journal-00000000").exists();
        if !has_journal && spec.trim().is_empty() {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}` and no spec given")));
        }
        let tenant = spawn_worker(
            name,
            &dir,
            if spec.trim().is_empty() { None } else { Some(spec.to_owned()) },
            opts,
            &self.config,
        )
        .map_err(|r| {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            r
        })?;
        tenants.insert(name.to_owned(), tenant);
        self.stats.tenants_admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Recovers every tenant directory under the root (kill -9 or
    /// post-drain restart), returning the recovered names sorted.
    ///
    /// # Errors
    ///
    /// Per-tenant failures are returned alongside the successes; the IO
    /// error is for an unreadable root directory.
    pub fn recover_all(&self) -> std::io::Result<(Vec<String>, Vec<(String, Reject)>)> {
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.config.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() && path.join("journal-00000000").exists() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        for name in names {
            let opts = read_options(&self.config.root.join(&name));
            match self.admit(&name, "", opts) {
                Ok(()) => ok.push(name),
                Err(r) => failed.push((name, r)),
            }
        }
        Ok((ok, failed))
    }

    /// Grants a connection slot for `name`, enforcing the per-tenant cap.
    ///
    /// # Errors
    ///
    /// [`REJECT_TOO_MANY_CONNS`] at the cap, or a bad-name reject for an
    /// unknown tenant.
    pub fn connect(&self, name: &str) -> Result<ConnPermit, Reject> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let Some(t) = tenants.get(name) else {
            return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}`")));
        };
        let cap = self.config.max_conns_per_tenant;
        let granted = t
            .conns
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| (n < cap).then_some(n + 1))
            .is_ok();
        if !granted {
            self.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                REJECT_TOO_MANY_CONNS,
                format!("tenant `{name}` is at its connection cap ({cap})"),
            ));
        }
        self.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
        Ok(ConnPermit { conns: Arc::clone(&t.conns) })
    }

    fn ingest_of(
        &self,
        name: &str,
    ) -> Result<(SyncSender<TenantMsg>, Arc<Mutex<TenantSnapshot>>), Reject> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let Some(t) = tenants.get(name) else {
            return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}`")));
        };
        let state = t.shared.lock().expect("snapshot poisoned").state.clone();
        match state {
            TenantState::Failed(e) => {
                Err((REJECT_TENANT_FAILED, format!("tenant quarantined: {e}")))
            }
            TenantState::Drained => Err((REJECT_DRAINING, "tenant is drained".into())),
            TenantState::Running => Ok((t.ingest.clone(), Arc::clone(&t.shared))),
        }
    }

    /// Submits one trace-grammar line to tenant `name`, applying the
    /// configured backpressure policy at a full queue.
    ///
    /// # Errors
    ///
    /// [`REJECT_QUEUE_FULL`] under [`Backpressure::Shed`],
    /// [`REJECT_TENANT_FAILED`] / [`REJECT_DRAINING`] for dead tenants,
    /// [`REJECT_DRAINING`] while the service drains.
    pub fn submit(&self, name: &str, line: &str) -> Result<(), Reject> {
        if self.is_draining() {
            return Err((REJECT_DRAINING, "service is draining".into()));
        }
        let (ingest, shared) = self.ingest_of(name)?;
        let msg = TenantMsg::Line(line.to_owned());
        match self.config.backpressure {
            Backpressure::Block => ingest
                .send(msg)
                .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))?,
            Backpressure::Shed => match ingest.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.stats.events_shed.fetch_add(1, Ordering::Relaxed);
                    shared.lock().expect("snapshot poisoned").shed_events += 1;
                    return Err((
                        REJECT_QUEUE_FULL,
                        format!("tenant `{name}` ingest queue is full — event shed"),
                    ));
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err((REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")));
                }
            },
        }
        self.stats.events_submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Durability barrier: returns once everything submitted to `name`
    /// before this call is processed and fsynced. Echoes `token`.
    ///
    /// # Errors
    ///
    /// [`REJECT_TIMEOUT`] past
    /// [`ServiceConfig::reply_timeout`], or the dead-tenant rejects.
    pub fn sync(&self, name: &str, token: u64) -> Result<u64, Reject> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.sync_with(name, token, reply_tx)?;
        reply_rx
            .recv_timeout(self.config.reply_timeout)
            .map_err(|_| (REJECT_TIMEOUT, format!("barrier timed out for tenant `{name}`")))
    }

    /// Lower-level barrier: the reply lands on the caller's channel.
    /// Tests use a rendezvous channel here to stall a worker
    /// deterministically.
    ///
    /// # Errors
    ///
    /// The dead-tenant rejects; the send itself blocks at a full queue
    /// regardless of the backpressure policy (barriers are never shed).
    pub fn sync_with(&self, name: &str, token: u64, reply: SyncSender<u64>) -> Result<(), Reject> {
        let (ingest, _) = self.ingest_of(name)?;
        ingest
            .send(TenantMsg::Sync { token, reply })
            .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))
    }

    /// The tenant's stats JSON (engine + journal + snapshot counters),
    /// produced by the worker itself at a message boundary.
    ///
    /// # Errors
    ///
    /// [`REJECT_TIMEOUT`] or the dead-tenant rejects.
    pub fn tenant_stats_json(&self, name: &str) -> Result<String, Reject> {
        let (ingest, _) = self.ingest_of(name)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        ingest
            .send(TenantMsg::Stats { reply: reply_tx })
            .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))?;
        reply_rx
            .recv_timeout(self.config.reply_timeout)
            .map_err(|_| (REJECT_TIMEOUT, format!("stats timed out for tenant `{name}`")))
    }

    /// Snapshots of every tenant, sorted by name.
    #[must_use]
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let mut snaps: Vec<TenantSnapshot> =
            tenants.values().map(|t| t.shared.lock().expect("snapshot poisoned").clone()).collect();
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        snaps
    }

    /// Plain-text liveness body for `/healthz`: a leading `ok` (or
    /// `draining`), then one line per tenant.
    #[must_use]
    pub fn healthz(&self) -> String {
        let snaps = self.snapshots();
        let mut out = String::new();
        out.push_str(if self.is_draining() { "draining\n" } else { "ok\n" });
        out.push_str(&format!("tenants {}\n", snaps.len()));
        for s in &snaps {
            out.push_str(&format!(
                "tenant {} state={} events={} triggers={} shed_events={} bad_lines={} \
                 quarantined={} budget_trips={} shed_monitors={} monitors_live={} checkpoints={}\n",
                s.name,
                s.state.label(),
                s.events,
                s.triggers,
                s.shed_events,
                s.bad_lines,
                s.quarantined,
                s.budget_trips,
                s.shed_monitors,
                s.monitors_live,
                s.checkpoints,
            ));
        }
        out
    }

    /// Prometheus text exposition of the service and per-tenant counters
    /// (`rvmond_*` namespace, tenant-labeled).
    #[must_use]
    pub fn prometheus(&self) -> String {
        let snaps = self.snapshots();
        let mut out = String::new();
        let service: &[(&str, &str, u64)] = &[
            (
                "rvmond_tenants_admitted_total",
                "Tenants admitted",
                self.stats.tenants_admitted.load(Ordering::Relaxed),
            ),
            (
                "rvmond_tenants_rejected_total",
                "Tenant admissions rejected",
                self.stats.tenants_rejected.load(Ordering::Relaxed),
            ),
            (
                "rvmond_conns_opened_total",
                "Connection permits granted",
                self.stats.conns_opened.load(Ordering::Relaxed),
            ),
            (
                "rvmond_conns_rejected_total",
                "Connection permits refused",
                self.stats.conns_rejected.load(Ordering::Relaxed),
            ),
            (
                "rvmond_events_submitted_total",
                "Events accepted into ingest queues",
                self.stats.events_submitted.load(Ordering::Relaxed),
            ),
            (
                "rvmond_events_shed_total",
                "Events dropped by shed backpressure",
                self.stats.events_shed.load(Ordering::Relaxed),
            ),
            (
                "rvmond_bad_frames_total",
                "Malformed frames rejected",
                self.stats.bad_frames.load(Ordering::Relaxed),
            ),
            (
                "rvmond_idle_reaped_total",
                "Connections reaped for idling",
                self.stats.idle_reaped.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in service {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        }
        let per_tenant: &[(&str, &str, fn(&TenantSnapshot) -> u64)] = &[
            ("rvmond_tenant_events_total", "Events processed", |s| s.events),
            ("rvmond_tenant_triggers_total", "Goal reports delivered", |s| s.triggers),
            ("rvmond_tenant_shed_events_total", "Events shed at the queue", |s| s.shed_events),
            ("rvmond_tenant_bad_lines_total", "Malformed client lines", |s| s.bad_lines),
            ("rvmond_tenant_quarantined_total", "Monitors quarantined", |s| s.quarantined),
            ("rvmond_tenant_budget_trips_total", "Budget trips", |s| s.budget_trips),
            ("rvmond_tenant_shed_monitors_total", "Monitor creations shed", |s| s.shed_monitors),
            ("rvmond_tenant_checkpoints_total", "Checkpoints written", |s| s.checkpoints),
            ("rvmond_tenant_journal_retries_total", "Journal append retries", |s| {
                s.journal_retries
            }),
        ];
        for (name, help, get) in per_tenant {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for s in &snaps {
                out.push_str(&format!("{name}{{tenant=\"{}\"}} {}\n", s.name, get(s)));
            }
        }
        out.push_str("# HELP rvmond_tenant_monitors_live Live monitor instances\n");
        out.push_str("# TYPE rvmond_tenant_monitors_live gauge\n");
        for s in &snaps {
            out.push_str(&format!(
                "rvmond_tenant_monitors_live{{tenant=\"{}\"}} {}\n",
                s.name, s.monitors_live
            ));
        }
        out
    }

    /// Graceful drain: stop admitting, checkpoint every running tenant,
    /// and join the workers. Idempotent; returns the number of tenants
    /// that drained to a checkpoint this call.
    #[must_use]
    pub fn drain(&self) -> usize {
        self.draining.store(true, Ordering::Release);
        let mut handles = Vec::new();
        {
            let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
            for t in tenants.values_mut() {
                let _ = t.ingest.send(TenantMsg::Drain);
                if let Some(h) = t.worker.take() {
                    handles.push(h);
                }
            }
        }
        let joined = handles.len();
        for h in handles {
            let _ = h.join();
        }
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let drained = tenants
            .values()
            .filter(|t| t.shared.lock().expect("snapshot poisoned").state == TenantState::Drained)
            .count();
        drained.min(joined.max(drained))
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Dropping without drain() is the crash path tests use: the
        // workers see a channel disconnect and exit without a
        // checkpoint. Join them so their journals finish flushing before
        // the test inspects the files.
        let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
        let handles: Vec<_> = tenants.values_mut().filter_map(|t| t.worker.take()).collect();
        tenants.clear();
        drop(tenants);
        for h in handles {
            let _ = h.join();
        }
    }
}

// --- Connection loop ------------------------------------------------------

fn write_reject(w: &mut impl Write, code: u16, msg: &str) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(2 + msg.len());
    payload.extend_from_slice(&code.to_le_bytes());
    payload.extend_from_slice(msg.as_bytes());
    write_frame(w, FRAME_REJECT, &payload)
}

/// Serves one framed client connection against the service: HELLO →
/// admission + connection permit, EVENT → submit with backpressure,
/// SYNC → durability barrier, STATS → tenant JSON, BYE/EOF → close.
/// Read timeouts (surfaced as `WouldBlock`/`TimedOut` from the stream)
/// reap the connection and are counted in
/// [`ServiceStats::idle_reaped`].
///
/// # Errors
///
/// The IO error that ended the connection, if it was not a clean close.
pub fn serve_connection<S: Read + Write>(service: &Service, stream: &mut S) -> std::io::Result<()> {
    let mut session: Option<(String, ConnPermit)> = None;
    loop {
        let frame = match read_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(e) if crate::journal::is_transient(e.kind()) => {
                service.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                let _ = write_reject(stream, REJECT_BAD_FRAME, "idle timeout — closing");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match frame {
            (FRAME_HELLO, payload) => {
                let Some((name, spec, opts)) = decode_hello(&payload) else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "malformed HELLO payload")?;
                    return Ok(());
                };
                if let Err((code, msg)) = service.admit(&name, &spec, opts) {
                    write_reject(stream, code, &msg)?;
                    return Ok(());
                }
                match service.connect(&name) {
                    Ok(permit) => {
                        session = Some((name.clone(), permit));
                        write_frame(stream, FRAME_OK, name.as_bytes())?;
                    }
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_EVENT, payload) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "EVENT before HELLO")?;
                    return Ok(());
                };
                let Ok(line) = String::from_utf8(payload) else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "EVENT payload is not UTF-8")?;
                    continue;
                };
                match service.submit(name, &line) {
                    Ok(()) => {}
                    // Shed is a per-event outcome, not a connection
                    // failure: report and keep serving.
                    Err((code @ REJECT_QUEUE_FULL, msg)) => write_reject(stream, code, &msg)?,
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_SYNC, payload) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "SYNC before HELLO")?;
                    return Ok(());
                };
                let token =
                    payload.get(..8).and_then(|b| b.try_into().ok()).map_or(0, u64::from_le_bytes);
                match service.sync(name, token) {
                    Ok(echoed) => write_frame(stream, FRAME_SYNCED, &echoed.to_le_bytes())?,
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_STATS, _) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "STATS before HELLO")?;
                    return Ok(());
                };
                match service.tenant_stats_json(name) {
                    Ok(json) => write_frame(stream, FRAME_STATS_REPLY, json.as_bytes())?,
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_BYE, _) => return Ok(()),
            (kind, _) => {
                service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                write_reject(stream, REJECT_BAD_FRAME, &format!("unknown frame kind {kind:#x}"))?;
                return Ok(());
            }
        }
    }
}

// --- Tenant worker --------------------------------------------------------

fn spawn_worker(
    name: &str,
    dir: &Path,
    spec_source: Option<String>,
    opts: TenantOptions,
    config: &ServiceConfig,
) -> Result<Tenant, Reject> {
    let (ingest_tx, ingest_rx) = sync_channel::<TenantMsg>(config.queue_depth.max(1));
    let shared =
        Arc::new(Mutex::new(TenantSnapshot { name: name.to_owned(), ..TenantSnapshot::default() }));
    let (init_tx, init_rx) = sync_channel::<Result<(), Reject>>(1);
    let worker = {
        let name = name.to_owned();
        let dir = dir.to_path_buf();
        let shared = Arc::clone(&shared);
        let config = config.clone();
        std::thread::Builder::new()
            .name(format!("rvmond-tenant-{name}"))
            .spawn(move || {
                let mut w = match Worker::init(&name, &dir, spec_source, opts, &config, &shared) {
                    Ok(w) => {
                        let _ = init_tx.send(Ok(()));
                        w
                    }
                    Err(r) => {
                        let _ = init_tx.send(Err(r));
                        return;
                    }
                };
                w.run(&ingest_rx);
            })
            .map_err(|e| (REJECT_TENANT_FAILED, format!("cannot spawn worker: {e}")))?
    };
    match init_rx.recv_timeout(Duration::from_secs(60)) {
        Ok(Ok(())) => Ok(Tenant {
            ingest: ingest_tx,
            conns: Arc::new(AtomicUsize::new(0)),
            shared,
            worker: Some(worker),
        }),
        Ok(Err(r)) => {
            let _ = worker.join();
            Err(r)
        }
        Err(_) => Err((REJECT_TIMEOUT, "tenant worker initialisation timed out".into())),
    }
}

/// Everything a tenant worker owns — engines, heap, naming, journal.
/// Lives entirely on the worker thread; nothing here is `Send`.
struct Worker {
    monitor: PropertyMonitor<MetricsRegistry>,
    heap: Heap,
    class: rv_heap::ClassId,
    objects: HashMap<String, ObjId>,
    journal: JournalWriter,
    dir: PathBuf,
    retry: RetryPolicy,
    checkpoint_every: u64,
    events_since_checkpoint: u64,
    generation: u64,
    alphabet: rv_logic::Alphabet,
    event_params: Vec<Vec<rv_logic::ParamId>>,
    shared: Arc<Mutex<TenantSnapshot>>,
    bad_lines: u64,
}

/// A worker-fatal failure: the tenant quarantines, neighbors continue.
struct Fatal(String);

impl Worker {
    #[allow(clippy::too_many_lines)]
    fn init(
        name: &str,
        dir: &Path,
        spec_source: Option<String>,
        opts: TenantOptions,
        config: &ServiceConfig,
        shared: &Arc<Mutex<TenantSnapshot>>,
    ) -> Result<Worker, Reject> {
        let mut engine_cfg = config.engine.clone();
        engine_cfg.record_triggers = true;
        if let Some(n) = opts.max_live_monitors {
            engine_cfg.max_live_monitors = Some(n as usize);
        }
        let internal = |msg: String| (REJECT_TENANT_FAILED, msg);

        let has_journal = dir.join("journal-00000000").exists();
        let mut recovered_events = 0u64;
        let mut suppressed = 0u64;
        let (monitor, heap, class, objects, journal, generation) = if has_journal {
            let scan = read_journal(dir).map_err(|e| internal(e.to_string()))?;
            let journaled_src = spec_source_of(&scan)
                .ok_or_else(|| internal("journal carries no spec header".into()))?;
            if let Some(src) = &spec_source {
                if src != &journaled_src {
                    return Err((
                        REJECT_SPEC_MISMATCH,
                        format!("tenant `{name}` already exists with a different spec"),
                    ));
                }
            }
            let spec = CompiledSpec::from_source(&journaled_src).map_err(|d| {
                (REJECT_BAD_SPEC, format!("journaled spec no longer compiles: {}", d.message))
            })?;
            let mut monitor =
                PropertyMonitor::with_observers(spec, &engine_cfg, |_| MetricsRegistry::new());
            let (checkpoint, _skipped) = load_latest_checkpoint(dir, scan.next_seq);
            let mut replay_from = 0u64;
            if let Some(cp) = &checkpoint {
                monitor
                    .restore_snapshot(&cp.payload, &cp.file)
                    .map_err(|e| internal(e.to_string()))?;
                replay_from = cp.seq;
            }
            let hwm = scan.trigger_high_water_mark();
            let replayed =
                replay_tenant(&scan, &mut monitor, replay_from, hwm).map_err(|m| internal(m))?;
            recovered_events = replayed.events;
            suppressed = replayed.suppressed;
            monitor.reflag_dead_keys(&replayed.heap);
            monitor.check_invariants(&replayed.heap).map_err(|e| internal(e.to_string()))?;
            let journal = JournalWriter::resume(dir, &scan).map_err(|e| internal(e.to_string()))?;
            let generation = list_checkpoints(dir).last().map_or(0, |g| g + 1);
            (monitor, replayed.heap, replayed.class, replayed.objects, journal, generation)
        } else {
            let source = spec_source.expect("admit() requires a spec for fresh tenants");
            let spec = CompiledSpec::from_source(&source)
                .map_err(|d| (REJECT_BAD_SPEC, format!("spec does not compile: {}", d.message)))?;
            let monitor =
                PropertyMonitor::with_observers(spec, &engine_cfg, |_| MetricsRegistry::new());
            std::fs::create_dir_all(dir).map_err(|e| internal(e.to_string()))?;
            write_options(dir, &opts).map_err(|e| internal(e.to_string()))?;
            let mut journal = JournalWriter::create(dir).map_err(|e| internal(e.to_string()))?;
            journal
                .append_retry(
                    &Record::Aux { tag: AUX_SPEC, bytes: source.into_bytes() },
                    &config.retry,
                )
                .map_err(|e| internal(e.to_string()))?;
            let mut heap = Heap::new(HeapConfig::manual());
            let class = heap.register_class("Obj");
            (monitor, heap, class, HashMap::new(), journal, 0)
        };

        let mut w = Worker {
            alphabet: monitor.spec().alphabet.clone(),
            event_params: monitor.spec().event_params.clone(),
            monitor,
            heap,
            class,
            objects,
            journal,
            dir: dir.to_path_buf(),
            retry: config.retry,
            checkpoint_every: config.checkpoint_every.max(1),
            events_since_checkpoint: 0,
            generation,
            shared: Arc::clone(shared),
            bad_lines: 0,
        };
        if opts.flags & TENANT_FLAG_PANIC_HANDLER != 0 {
            for engine in w.monitor.engines_mut() {
                engine.set_trigger_handler(|_, _, _| {
                    panic!("injected rvmond tenant handler panic");
                });
            }
        }
        {
            let mut snap = w.shared.lock().expect("snapshot poisoned");
            snap.recovered_events = recovered_events;
            snap.suppressed_triggers = suppressed;
            // The checkpoint counter survives restarts: prior generations
            // are on disk, and the exposition's `_total` series should
            // stay monotonic across a clean drain/restart cycle.
            snap.checkpoints = list_checkpoints(&w.dir).len() as u64;
        }
        w.publish();
        Ok(w)
    }

    /// Pushes the worker's counters into the shared snapshot.
    fn publish(&self) {
        let stats = self.monitor.stats();
        let jstats = self.journal.stats();
        let mut snap = self.shared.lock().expect("snapshot poisoned");
        snap.events = stats.events;
        snap.triggers = stats.triggers;
        snap.bad_lines = self.bad_lines;
        snap.quarantined = stats.quarantined;
        snap.budget_trips = stats.budget_trips;
        snap.degradations = stats.degradations;
        snap.shed_monitors = stats.shed;
        snap.monitors_live = stats.live_monitors as u64;
        snap.journal_records = jstats.records;
        snap.journal_retries = jstats.retries;
    }

    fn set_state(&self, state: TenantState) {
        self.shared.lock().expect("snapshot poisoned").state = state;
    }

    fn run(&mut self, rx: &Receiver<TenantMsg>) {
        while let Ok(msg) = rx.recv() {
            let drain = matches!(msg, TenantMsg::Drain);
            // The panic boundary: anything that unwinds out of message
            // handling — including engine internals beyond the engine's
            // own handler quarantine — fails THIS tenant only.
            let outcome = catch_unwind(AssertUnwindSafe(|| self.handle(msg)));
            match outcome {
                Ok(Ok(())) => {
                    self.publish();
                    if drain {
                        self.set_state(TenantState::Drained);
                        return;
                    }
                }
                Ok(Err(Fatal(msg))) => {
                    self.publish();
                    self.set_state(TenantState::Failed(msg));
                    return;
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".into());
                    self.set_state(TenantState::Failed(format!("panic: {msg}")));
                    return;
                }
            }
        }
        // Channel disconnected without a drain: the crash path. No
        // checkpoint — recovery replays the journal.
    }

    fn handle(&mut self, msg: TenantMsg) -> Result<(), Fatal> {
        match msg {
            TenantMsg::Line(line) => self.process_line(&line),
            TenantMsg::Sync { token, reply } => {
                self.journal.sync().map_err(|e| Fatal(format!("journal sync failed: {e}")))?;
                let _ = reply.send(token);
                Ok(())
            }
            TenantMsg::Stats { reply } => {
                let json = format!(
                    "{{\"tenant\":{},\"engine\":{},\"journal\":{}}}",
                    self.shared.lock().expect("snapshot poisoned").to_json(),
                    self.monitor.stats().to_json(),
                    self.journal.stats().to_json()
                );
                let _ = reply.send(json);
                Ok(())
            }
            TenantMsg::Drain => self.checkpoint_now(),
        }
    }

    fn append(&mut self, record: &Record) -> Result<u64, Fatal> {
        self.journal.append_retry(record, &self.retry).map_err(|e| Fatal(e.to_string()))
    }

    fn checkpoint_now(&mut self) -> Result<(), Fatal> {
        self.journal.sync().map_err(|e| Fatal(format!("journal sync failed: {e}")))?;
        if let Some(payload) = self.monitor.snapshot_bytes() {
            let covered = self.journal.next_seq();
            write_checkpoint(&self.dir, self.generation, covered, &payload)
                .map_err(|e| Fatal(format!("checkpoint write failed: {e}")))?;
            self.append(&Record::CheckpointMark { generation: self.generation, seq: covered })?;
            self.journal.sync().map_err(|e| Fatal(format!("journal sync failed: {e}")))?;
            self.generation += 1;
            self.shared.lock().expect("snapshot poisoned").checkpoints += 1;
        }
        Ok(())
    }

    /// One line of the trace grammar. Malformed client input is counted
    /// (`bad_lines`) and skipped — a hostile client cannot fail its
    /// tenant with garbage, let alone a neighbor. Journal and engine
    /// failures are fatal for this tenant only.
    fn process_line(&mut self, raw: &str) -> Result<(), Fatal> {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(());
        }
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else {
            return Ok(());
        };
        match head {
            "!gc" => {
                self.append(&Record::Aux { tag: AUX_GC, bytes: Vec::new() })?;
                self.heap.collect();
            }
            "!sweep" => {
                self.append(&Record::Aux { tag: AUX_SWEEP, bytes: Vec::new() })?;
                for engine in self.monitor.engines_mut() {
                    engine.full_sweep(&self.heap);
                }
            }
            "!free" => {
                let mut freed = Vec::new();
                let mut payload = Vec::new();
                for name in words {
                    let Some(&obj) = self.objects.get(name) else {
                        self.bad_lines += 1;
                        return Ok(());
                    };
                    payload.extend_from_slice(&obj.to_bits().to_le_bytes());
                    freed.push(obj);
                }
                self.append(&Record::Aux { tag: AUX_FREE, bytes: payload })?;
                for obj in freed {
                    self.heap.unpin(obj);
                }
            }
            event_name => {
                let Some(event) = self.alphabet.lookup(event_name) else {
                    self.bad_lines += 1;
                    return Ok(());
                };
                let params = self.event_params[event.as_usize()].clone();
                let names: Vec<&str> = words.collect();
                if names.len() != params.len() {
                    self.bad_lines += 1;
                    return Ok(());
                }
                // First-mention allocations are journaled as AUX_OBJ
                // (object bits + client name) ahead of the event, so
                // recovery rebuilds the same name → ObjId map.
                let mut pairs = Vec::with_capacity(params.len());
                let mut fresh: Vec<Record> = Vec::new();
                for (&p, &name) in params.iter().zip(&names) {
                    let obj = match self.objects.get(name) {
                        Some(&o) => o,
                        None => {
                            let frame = self.heap.enter_frame();
                            let o = self.heap.alloc(self.class);
                            self.heap.pin(o);
                            self.heap.exit_frame(frame);
                            self.objects.insert(name.to_owned(), o);
                            let mut bytes = o.to_bits().to_le_bytes().to_vec();
                            bytes.extend_from_slice(name.as_bytes());
                            fresh.push(Record::Aux { tag: AUX_OBJ, bytes });
                            o
                        }
                    };
                    pairs.push((p, obj));
                }
                for r in &fresh {
                    self.append(r)?;
                }
                let binding = Binding::from_pairs(&pairs);
                let seq = self.append(&Record::Event { event, binding })?;
                let before: Vec<usize> =
                    self.monitor.engines().iter().map(|e| e.triggers().len()).collect();
                self.monitor
                    .try_process(&self.heap, event, binding)
                    .map_err(|e| Fatal(format!("engine error: {e}")))?;
                let mut ordinal = 0u32;
                let fired: Vec<Record> = self
                    .monitor
                    .engines()
                    .iter()
                    .enumerate()
                    .flat_map(|(bi, engine)| {
                        engine.triggers()[before[bi]..].iter().map(move |t| (bi, *t))
                    })
                    .map(|(bi, t)| {
                        let r = Record::Trigger {
                            event_seq: seq,
                            ordinal,
                            block: bi as u16,
                            step: t.step as u64,
                            verdict: t.verdict,
                            binding: t.binding,
                        };
                        ordinal += 1;
                        r
                    })
                    .collect();
                for r in &fired {
                    self.append(r)?;
                }
                self.events_since_checkpoint += 1;
                if self.events_since_checkpoint >= self.checkpoint_every {
                    self.events_since_checkpoint = 0;
                    self.checkpoint_now()?;
                }
            }
        }
        Ok(())
    }
}

// --- Recovery ------------------------------------------------------------

/// The spec source carried in the journal's sequence-0 record.
#[must_use]
pub fn spec_source_of(scan: &JournalScan) -> Option<String> {
    let first = scan.records.first()?;
    match &first.record {
        Record::Aux { tag, bytes } if *tag == AUX_SPEC => String::from_utf8(bytes.clone()).ok(),
        _ => None,
    }
}

struct Replayed {
    heap: Heap,
    class: rv_heap::ClassId,
    objects: HashMap<String, ObjId>,
    events: u64,
    suppressed: u64,
}

/// Replays a tenant journal: rebuilds the heap and the client-visible
/// name → `ObjId` map from `AUX_OBJ` records, feeds events with seq ≥
/// `replay_from`, and suppresses goal reports at or below the durable
/// high-water mark — exactly-once delivery across the crash.
fn replay_tenant(
    scan: &JournalScan,
    monitor: &mut PropertyMonitor<MetricsRegistry>,
    replay_from: u64,
    hwm: Option<(u64, u32)>,
) -> Result<Replayed, String> {
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut objects: HashMap<String, ObjId> = HashMap::new();
    let mut known: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut events = 0u64;
    let mut suppressed = 0u64;
    for sr in &scan.records {
        match &sr.record {
            Record::Aux { tag, .. } if *tag == AUX_GC => {
                heap.collect();
            }
            Record::Aux { tag, bytes } if *tag == AUX_OBJ => {
                let Some(bits) =
                    bytes.get(..8).and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
                else {
                    return Err(format!("journal record {}: truncated AUX_OBJ", sr.seq));
                };
                let name = String::from_utf8_lossy(&bytes[8..]).into_owned();
                let obj = ObjId::from_bits(bits);
                if known.insert(bits) {
                    let frame = heap.enter_frame();
                    let fresh = heap.alloc(class);
                    heap.pin(fresh);
                    heap.exit_frame(frame);
                    if fresh != obj {
                        return Err(format!(
                            "heap replay diverged at record {}: journal names object {bits:#x} \
                             but the rebuilt heap allocated {:#x}",
                            sr.seq,
                            fresh.to_bits()
                        ));
                    }
                }
                objects.insert(name, obj);
            }
            Record::Aux { tag, bytes } if *tag == AUX_FREE => {
                for chunk in bytes.chunks_exact(8) {
                    let bits = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    if !known.contains(&bits) {
                        return Err(format!(
                            "journal record {} frees object {bits:#x} never allocated",
                            sr.seq
                        ));
                    }
                    heap.unpin(ObjId::from_bits(bits));
                }
            }
            Record::Aux { tag, .. } if *tag == AUX_SWEEP => {
                if sr.seq >= replay_from {
                    for engine in monitor.engines_mut() {
                        engine.full_sweep(&heap);
                    }
                }
            }
            Record::Event { event, binding } => {
                for (_, obj) in binding.iter() {
                    if !known.contains(&obj.to_bits()) {
                        return Err(format!(
                            "journal record {} references object {:#x} with no AUX_OBJ record",
                            sr.seq,
                            obj.to_bits()
                        ));
                    }
                }
                if sr.seq >= replay_from {
                    let before: Vec<usize> =
                        monitor.engines().iter().map(|e| e.triggers().len()).collect();
                    monitor
                        .try_process(&heap, *event, *binding)
                        .map_err(|e| format!("engine error at record {}: {e}", sr.seq))?;
                    let fired: usize = monitor
                        .engines()
                        .iter()
                        .enumerate()
                        .map(|(bi, e)| e.triggers().len() - before[bi])
                        .sum();
                    for ord in 0..fired as u32 {
                        if hwm.is_some_and(|h| (sr.seq, ord) <= h) {
                            suppressed += 1;
                        }
                    }
                    events += 1;
                }
            }
            _ => {}
        }
    }
    Ok(Replayed { heap, class, objects, events, suppressed })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report \"improper Concurrent Modification found!\"; }
}
";

    fn temp_root(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rv-svc-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(root: &Path) -> ServiceConfig {
        ServiceConfig { root: root.to_path_buf(), ..ServiceConfig::default() }
    }

    #[test]
    fn frames_round_trip_through_the_codec() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_EVENT, b"create c1 i1").unwrap();
        write_frame(&mut buf, FRAME_SYNC, &7u64.to_le_bytes()).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((FRAME_EVENT, b"create c1 i1".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((FRAME_SYNC, 7u64.to_le_bytes().to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        // Torn length prefix is an error, not a hang or a bad parse.
        let mut torn = &buf[..2];
        assert!(read_frame(&mut torn).is_err());
        // Implausible length is rejected without allocating.
        let mut bogus: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(read_frame(&mut bogus).is_err());
    }

    #[test]
    fn hello_payload_round_trips() {
        let opts = TenantOptions { flags: TENANT_FLAG_PANIC_HANDLER, max_live_monitors: Some(8) };
        let p = encode_hello("tenant-a", SPEC, &opts);
        let (name, spec, got) = decode_hello(&p).unwrap();
        assert_eq!(name, "tenant-a");
        assert_eq!(spec, SPEC);
        assert_eq!(got, opts);
        assert!(decode_hello(&[1, 2]).is_none(), "truncated HELLO");
    }

    #[test]
    fn admission_enforces_tenant_and_connection_caps() {
        let root = temp_root("admission");
        let svc = Service::new(ServiceConfig {
            max_tenants: 2,
            max_conns_per_tenant: 1,
            ..config(&root)
        })
        .unwrap();
        let (code, _) = svc.admit("bad name!", SPEC, TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_BAD_FRAME);
        let (code, _) = svc.admit("nospec", "", TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_BAD_FRAME, "fresh tenant without a spec");
        let (code, _) = svc.admit("badspec", "spec X {", TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_BAD_SPEC);

        svc.admit("a", SPEC, TenantOptions::default()).unwrap();
        svc.admit("b", SPEC, TenantOptions::default()).unwrap();
        let (code, _) = svc.admit("c", SPEC, TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_TOO_MANY_TENANTS);
        // Re-attach to an existing tenant is not an admission.
        svc.admit("a", SPEC, TenantOptions::default()).unwrap();

        let p1 = svc.connect("a").unwrap();
        let (code, _) = svc.connect("a").unwrap_err();
        assert_eq!(code, REJECT_TOO_MANY_CONNS);
        drop(p1);
        let _p2 = svc.connect("a").expect("slot freed by drop");
        assert!(svc.stats.tenants_rejected.load(Ordering::Relaxed) >= 4);
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shed_backpressure_rejects_when_the_queue_is_full() {
        let root = temp_root("shed");
        let svc = Service::new(ServiceConfig {
            queue_depth: 2,
            backpressure: Backpressure::Shed,
            ..config(&root)
        })
        .unwrap();
        svc.admit("t", SPEC, TenantOptions::default()).unwrap();
        // Stall the worker deterministically: a rendezvous reply channel
        // blocks it inside the barrier until we receive. While it is
        // parked (or still holds the Sync message in the queue) the
        // ingest queue can only drain by at most one slot, so submitting
        // queue_depth + 2 events must shed at least one.
        let (reply_tx, reply_rx) = sync_channel(0);
        svc.sync_with("t", 1, reply_tx).unwrap();
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for line in ["create c1 i1", "update c1", "next i1", "update c1"] {
            match svc.submit("t", line) {
                Ok(()) => accepted += 1,
                Err((code, msg)) => {
                    assert_eq!(code, REJECT_QUEUE_FULL, "{msg}");
                    shed += 1;
                }
            }
        }
        assert!(shed >= 1, "a full queue under Shed must reject");
        assert!(accepted >= 1, "the queue has capacity before it fills");
        assert_eq!(svc.stats.events_shed.load(Ordering::Relaxed), shed);
        // Unpark; the queued events flow and a barrier drains them.
        assert_eq!(reply_rx.recv().unwrap(), 1);
        svc.sync("t", 2).unwrap();
        let snap = &svc.snapshots()[0];
        assert_eq!(snap.events, accepted, "every accepted event processed");
        assert_eq!(snap.shed_events, shed, "shed events are on the tenant's ledger");
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn draining_service_rejects_new_work() {
        let root = temp_root("drainrej");
        let svc = Service::new(config(&root)).unwrap();
        svc.admit("t", SPEC, TenantOptions::default()).unwrap();
        svc.submit("t", "create c1 i1").unwrap();
        let drained = svc.drain();
        assert_eq!(drained, 1);
        let (code, _) = svc.admit("u", SPEC, TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_DRAINING);
        let (code, _) = svc.submit("t", "update c1").unwrap_err();
        assert_eq!(code, REJECT_DRAINING);
        assert!(svc.healthz().starts_with("draining\n"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn serve_connection_speaks_the_wire_protocol() {
        // An in-memory duplex: requests pre-encoded, responses captured.
        let root = temp_root("wire");
        let svc = Service::new(config(&root)).unwrap();
        let mut requests = Vec::new();
        write_frame(
            &mut requests,
            FRAME_HELLO,
            &encode_hello("t", SPEC, &TenantOptions::default()),
        )
        .unwrap();
        for line in ["create c1 i1", "update c1", "next i1"] {
            write_frame(&mut requests, FRAME_EVENT, line.as_bytes()).unwrap();
        }
        write_frame(&mut requests, FRAME_SYNC, &9u64.to_le_bytes()).unwrap();
        write_frame(&mut requests, FRAME_STATS, &[]).unwrap();
        write_frame(&mut requests, FRAME_BYE, &[]).unwrap();

        struct Duplex<'a> {
            input: &'a [u8],
            output: Vec<u8>,
        }
        impl Read for Duplex<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut stream = Duplex { input: &requests, output: Vec::new() };
        serve_connection(&svc, &mut stream).unwrap();

        let mut out = &stream.output[..];
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!((kind, payload.as_slice()), (FRAME_OK, b"t".as_slice()));
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!(kind, FRAME_SYNCED);
        assert_eq!(payload, 9u64.to_le_bytes());
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!(kind, FRAME_STATS_REPLY);
        let json = String::from_utf8(payload).unwrap();
        assert!(json.contains("\"events\":3"), "{json}");
        assert!(json.contains("\"triggers\":1"), "{json}");
        assert_eq!(read_frame(&mut out).unwrap(), None, "BYE closes cleanly");

        // A frame before HELLO is a typed reject on a fresh connection.
        let mut bad = Vec::new();
        write_frame(&mut bad, FRAME_EVENT, b"create c1 i1").unwrap();
        let mut stream = Duplex { input: &bad, output: Vec::new() };
        serve_connection(&svc, &mut stream).unwrap();
        let mut out = &stream.output[..];
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!(kind, FRAME_REJECT);
        let code = u16::from_le_bytes(payload[..2].try_into().unwrap());
        assert_eq!(code, REJECT_BAD_FRAME);
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn healthz_and_prometheus_cover_every_tenant() {
        let root = temp_root("obs");
        let svc = Service::new(config(&root)).unwrap();
        svc.admit("alpha", SPEC, TenantOptions::default()).unwrap();
        svc.admit("beta", SPEC, TenantOptions::default()).unwrap();
        for line in ["create c1 i1", "update c1", "next i1"] {
            svc.submit("alpha", line).unwrap();
        }
        svc.sync("alpha", 0).unwrap();
        let health = svc.healthz();
        assert!(health.starts_with("ok\ntenants 2\n"), "{health}");
        assert!(health.contains("tenant alpha state=running events=3 triggers=1"), "{health}");
        assert!(health.contains("tenant beta state=running events=0"), "{health}");
        let expo = svc.prometheus();
        assert!(expo.contains("rvmond_tenant_events_total{tenant=\"alpha\"} 3"), "{expo}");
        assert!(expo.contains("rvmond_tenant_events_total{tenant=\"beta\"} 0"), "{expo}");
        assert!(expo.contains("# TYPE rvmond_events_submitted_total counter"), "{expo}");
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }
}
