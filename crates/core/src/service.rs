//! Multi-tenant monitoring service core — the engine room of `rvmond`.
//!
//! The slicing engine is per-trace-slice independent, which makes hard
//! per-tenant isolation tractable: each tenant owns a private
//! [`PropertyMonitor`] (every property block its own engine), its own
//! [`EngineConfig`] budgets and degradation ladder, its own write-ahead
//! journal directory under the service root, and a panic boundary (a
//! dedicated worker thread whose message loop runs under
//! `catch_unwind`). A tenant whose trigger handler panics or who trips
//! `shed_new_monitors` is quarantined or degraded *alone* — neighbor
//! tenants' trigger streams are byte-identical to a solo run, because a
//! tenant's journal is a pure function of its own event stream.
//!
//! ## Isolation domains
//!
//! ```text
//!  connection threads          tenant workers (one thread each)
//!  ┌──────────────┐  frames   ┌───────────────────────────────┐
//!  │ serve_       │──────────▶│ tenant "a": monitor + heap +  │──▶ root/a/journal-…
//!  │ connection   │  bounded  │   journal + budgets + ladder  │
//!  │ (admission,  │  ingest   ├───────────────────────────────┤
//!  │  timeouts,   │  queues   │ tenant "b": …                 │──▶ root/b/journal-…
//!  │  backpressure│──────────▶│   (panics stay inside)        │
//!  └──────────────┘           └───────────────────────────────┘
//! ```
//!
//! ## Wire protocol
//!
//! Length-prefixed frames over any ordered byte stream (TCP in
//! `rvmond`): `[len: u32 LE][kind: u8][payload: len-1 bytes]`. Clients
//! send [`FRAME_HELLO`] (attach to a tenant, creating it with a spec on
//! first contact), [`FRAME_EVENT`] (one line of the `rvmon trace`
//! grammar), [`FRAME_SYNC`] (durability barrier: the reply arrives after
//! everything enqueued before it is processed *and* fsynced),
//! [`FRAME_STATS`] and [`FRAME_BYE`]. The server answers with
//! [`FRAME_OK`], [`FRAME_SYNCED`], [`FRAME_STATS_REPLY`] or a typed
//! [`FRAME_REJECT`] carrying a `429`-style code ([`REJECT_QUEUE_FULL`],
//! [`REJECT_TOO_MANY_TENANTS`], …).
//!
//! ## Backpressure
//!
//! Each tenant has a bounded ingest queue. Under [`Backpressure::Block`]
//! a full queue blocks the connection thread (TCP backpressure reaches
//! the client); under [`Backpressure::Shed`] the event is dropped and
//! the client gets a [`REJECT_QUEUE_FULL`] frame, counted in
//! [`ServiceStats::events_shed`] and the tenant's snapshot.
//!
//! ## Drain protocol and recovery
//!
//! [`Service::drain`] stops admissions, sends every worker a drain
//! message, and joins them; each worker fsyncs its journal and writes a
//! final checkpoint (PR-3 RVCK), so a restarted service resumes from a
//! near-instant restore. After a hard kill, [`Service::recover_all`]
//! rebuilds every tenant from its journal directory: checkpoint restore
//! plus suffix replay with `(event_seq, ordinal)` high-water-mark
//! duplicate suppression — triggers are delivered exactly once across
//! the crash.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rv_heap::{Heap, HeapConfig, ObjId};
use rv_logic::Verdict;
use rv_spec::CompiledSpec;

use crate::binding::Binding;
use crate::engine::EngineConfig;
use crate::flight::{
    render_dump, FlightEvent, FlightKind, FlightRecorder, RequestTrace, RequestTraceRing, Stage,
    StageStats, FLIGHT_CAP,
};
use crate::journal::{
    crc32, read_journal, JournalScan, JournalWriter, Record, RetryPolicy, AUX_FATAL, AUX_FREE,
    AUX_GC, AUX_OBJ, AUX_RELOAD, AUX_SLINE, AUX_SPEC, AUX_SWEEP,
};
use crate::multi::PropertyMonitor;
use crate::obs::MetricsRegistry;
use crate::slo::{SloConfig, SloSnapshot, SloTracker};
use crate::snapshot::{list_checkpoints, load_latest_checkpoint, write_checkpoint};

// --- Wire protocol -------------------------------------------------------

/// Upper bound on a frame payload; larger length prefixes are rejected
/// without allocating.
pub const FRAME_MAX: u32 = 1 << 20;

/// Client → server: attach to (or create) a tenant. Payload:
/// `[flags: u8][max_live_monitors: u32 LE, 0 = unbounded][name]\n[spec]`
/// — the spec may be empty when attaching to an existing tenant.
pub const FRAME_HELLO: u8 = 0x01;
/// Client → server: one line of the `rvmon trace` grammar (`event obj…`,
/// `!free obj…`, `!gc`, `!sweep`) for the connection's tenant.
pub const FRAME_EVENT: u8 = 0x02;
/// Client → server: durability barrier. Payload: an opaque `u64 LE`
/// token; the matching [`FRAME_SYNCED`] is sent only after every event
/// enqueued before it has been processed and the journal fsynced.
pub const FRAME_SYNC: u8 = 0x03;
/// Client → server: request the tenant's stats JSON.
pub const FRAME_STATS: u8 = 0x04;
/// Client → server: graceful goodbye; the server closes the connection.
pub const FRAME_BYE: u8 = 0x05;
/// Client → server: hot spec reload for the connection's tenant.
/// Payload: `[token: u64 LE][new spec source UTF-8]`. The token makes
/// the reload idempotent — a retry after a lost acknowledgement cannot
/// cut over twice. Token `0` always applies.
pub const FRAME_RELOAD: u8 = 0x06;
/// Client → server: pull the tenant's goal reports strictly after a
/// `(event_seq, ordinal)` high-water mark. Payload:
/// `[event_seq: u64 LE][ordinal: u32 LE][max: u32 LE]`.
pub const FRAME_POLL: u8 = 0x07;
/// Client → server: one session-stamped trace line. Payload:
/// `[session: u64 LE][cseq: u64 LE][line UTF-8]`. The server applies a
/// given `(session, cseq)` at most once, so a reconnecting client can
/// blindly resend its unacknowledged window.
pub const FRAME_EVENT_SEQ: u8 = 0x08;

/// Server → client: HELLO accepted. Payload: the tenant name.
pub const FRAME_OK: u8 = 0x80;
/// Server → client: barrier reached. Payload: the echoed `u64` token.
pub const FRAME_SYNCED: u8 = 0x81;
/// Server → client: stats JSON payload.
pub const FRAME_STATS_REPLY: u8 = 0x82;
/// Server → client: typed rejection. Payload:
/// `[code: u16 LE][message UTF-8]`.
pub const FRAME_REJECT: u8 = 0x83;
/// Server → client: a batch of goal reports answering [`FRAME_POLL`].
/// Payload: `[count: u32 LE]` then `count` entries, each
/// `[len: u16 LE][journal Trigger record payload]`.
pub const FRAME_TRIGGERS: u8 = 0x84;
/// Server → client: reload applied. Payload: the new spec version as
/// `u64 LE`.
pub const FRAME_RELOADED: u8 = 0x85;

/// Reject code: malformed frame or a frame sent before a HELLO.
pub const REJECT_BAD_FRAME: u16 = 400;
/// Reject code: a [`FRAME_POLL`] high-water mark points below the
/// tenant's retained trigger log — the client's resume point was
/// evicted and exactly-once delivery can no longer be promised.
pub const REJECT_RESUME_GONE: u16 = 410;
/// Reject code: a HELLO for an existing tenant carried a different spec.
pub const REJECT_SPEC_MISMATCH: u16 = 409;
/// Reject code: the HELLO spec failed to compile.
pub const REJECT_BAD_SPEC: u16 = 422;
/// Reject code: the tenant table is full ([`ServiceConfig::max_tenants`]).
pub const REJECT_TOO_MANY_TENANTS: u16 = 429;
/// Reject code: the tenant's connection cap is reached
/// ([`ServiceConfig::max_conns_per_tenant`]).
pub const REJECT_TOO_MANY_CONNS: u16 = 430;
/// Reject code: the tenant's ingest queue is full and the backpressure
/// policy is [`Backpressure::Shed`] — the event was dropped.
pub const REJECT_QUEUE_FULL: u16 = 431;
/// Reject code: the tenant's worker failed (panic or persistent journal
/// failure) and is quarantined; its neighbors are unaffected.
pub const REJECT_TENANT_FAILED: u16 = 500;
/// Reject code: the service is draining and admits no new work.
pub const REJECT_DRAINING: u16 = 503;
/// Reject code: a barrier or stats request timed out inside the service.
pub const REJECT_TIMEOUT: u16 = 504;

/// A typed rejection: the `429`-style code plus a human-readable reason.
pub type Reject = (u16, String);

/// Encodes one `[len][kind][payload][crc32]` frame into a byte vector.
/// The trailing CRC-32 covers `[kind][payload]`, so a frame corrupted
/// anywhere on the wire — length prefix included — is detected at the
/// receiver instead of being absorbed as garbage input.
#[must_use]
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = (payload.len() + 1) as u32;
    let mut out = Vec::with_capacity(9 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&out[4..]).to_le_bytes());
    out
}

/// Writes one `[len][kind][payload][crc32]` frame.
///
/// # Errors
///
/// Any IO error from the underlying stream.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len() + 1).map_err(|_| ErrorKind::InvalidInput)?;
    if len > FRAME_MAX {
        return Err(std::io::Error::new(ErrorKind::InvalidInput, "frame exceeds FRAME_MAX"));
    }
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// IO errors from the stream (including read timeouts, surfaced as
/// `WouldBlock`/`TimedOut`), an EOF mid-frame, an implausible length
/// prefix, or a CRC mismatch (both `InvalidData`).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    let mut n = 0;
    while n < 4 {
        match r.read(&mut len_buf[n..])? {
            0 if n == 0 => return Ok(None),
            0 => return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "EOF mid-frame")),
            read => n += read,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > FRAME_MAX {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    if u32::from_le_bytes(crc_buf) != crc32(&body) {
        return Err(std::io::Error::new(ErrorKind::InvalidData, "frame CRC mismatch"));
    }
    let kind = body[0];
    body.remove(0);
    Ok(Some((kind, body)))
}

/// [`read_frame`] plus a wire-read span: the returned `u64` is the
/// nanoseconds spent reading and decoding the frame *after its first
/// byte arrived* — inter-frame idle (a client thinking) is not wire
/// time and would otherwise dominate every trace.
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_timed(r: &mut impl Read) -> std::io::Result<Option<(u8, Vec<u8>, u64)>> {
    let mut len_buf = [0u8; 4];
    let mut n = 0;
    let mut started: Option<Instant> = None;
    while n < 4 {
        match r.read(&mut len_buf[n..])? {
            0 if n == 0 => return Ok(None),
            0 => return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "EOF mid-frame")),
            read => {
                started.get_or_insert_with(Instant::now);
                n += read;
            }
        }
    }
    let t0 = started.unwrap_or_else(Instant::now);
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > FRAME_MAX {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    if u32::from_le_bytes(crc_buf) != crc32(&body) {
        return Err(std::io::Error::new(ErrorKind::InvalidData, "frame CRC mismatch"));
    }
    let kind = body[0];
    body.remove(0);
    let wire_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Ok(Some((kind, body, wire_ns)))
}

/// Encodes a HELLO payload (client-side helper shared with `loadgen`).
/// Layout: `[flags: u8][max_live_monitors: u32 LE][journal_retries:
/// u32 LE][journal_backoff_ms: u32 LE][name]\n[spec]` — zeros mean
/// "use the service default".
#[must_use]
pub fn encode_hello(name: &str, spec: &str, opts: &TenantOptions) -> Vec<u8> {
    let mut p = Vec::with_capacity(14 + name.len() + 1 + spec.len());
    p.push(opts.flags);
    p.extend_from_slice(&opts.max_live_monitors.map_or(0, |n| n.max(1)).to_le_bytes());
    p.extend_from_slice(&opts.journal_retries.unwrap_or(0).to_le_bytes());
    p.extend_from_slice(&opts.journal_backoff_ms.unwrap_or(0).to_le_bytes());
    p.extend_from_slice(name.as_bytes());
    p.push(b'\n');
    p.extend_from_slice(spec.as_bytes());
    p
}

/// Decodes a HELLO payload into `(name, spec, options)`.
#[must_use]
pub fn decode_hello(payload: &[u8]) -> Option<(String, String, TenantOptions)> {
    let flags = *payload.first()?;
    let max_live = u32::from_le_bytes(payload.get(1..5)?.try_into().ok()?);
    let retries = u32::from_le_bytes(payload.get(5..9)?.try_into().ok()?);
    let backoff_ms = u32::from_le_bytes(payload.get(9..13)?.try_into().ok()?);
    let rest = payload.get(13..)?;
    let split = rest.iter().position(|&b| b == b'\n')?;
    let name = String::from_utf8(rest[..split].to_vec()).ok()?;
    let spec = String::from_utf8(rest[split + 1..].to_vec()).ok()?;
    let opts = TenantOptions {
        flags,
        max_live_monitors: (max_live > 0).then_some(max_live),
        journal_retries: (retries > 0).then_some(retries),
        journal_backoff_ms: (backoff_ms > 0).then_some(backoff_ms),
    };
    Some((name, spec, opts))
}

// --- Configuration -------------------------------------------------------

/// What a full per-tenant ingest queue does to the next event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backpressure {
    /// Block the submitting connection thread until the queue drains —
    /// TCP backpressure propagates to the client.
    #[default]
    Block,
    /// Drop the event and answer a [`REJECT_QUEUE_FULL`] frame; the drop
    /// is counted in [`ServiceStats::events_shed`].
    Shed,
}

/// Tenant option flag: install a trigger handler that panics on every
/// goal report — the chaos hook CI uses to prove the panic boundary.
pub const TENANT_FLAG_PANIC_HANDLER: u8 = 0x01;
/// Tenant option flag: honor the `!fatal` trace directive, which kills
/// the tenant's worker with a worker-fatal error *after* journaling an
/// `AUX_FATAL` marker — the chaos hook supervision tests use to prove
/// unattended restart. Without the flag `!fatal` is a bad line.
pub const TENANT_FLAG_ALLOW_FATAL: u8 = 0x02;
/// Tenant option flag: sleep ~2ms per processed line — a deterministic
/// way for tests to fill ingest queues (431) and outlive reply
/// timeouts (504) without racing the scheduler.
pub const TENANT_FLAG_SLOW_WORKER: u8 = 0x04;

/// Per-tenant options carried in the HELLO frame and persisted beside
/// the tenant's journal for recovery.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TenantOptions {
    /// Flag bits ([`TENANT_FLAG_PANIC_HANDLER`],
    /// [`TENANT_FLAG_ALLOW_FATAL`], [`TENANT_FLAG_SLOW_WORKER`]).
    pub flags: u8,
    /// Overrides [`EngineConfig::max_live_monitors`] for this tenant —
    /// the knob that arms the degradation ladder per tenant.
    pub max_live_monitors: Option<u32>,
    /// Overrides [`RetryPolicy::max_attempts`] for this tenant's
    /// journal appends.
    pub journal_retries: Option<u32>,
    /// Overrides [`RetryPolicy::backoff`] (milliseconds) for this
    /// tenant's journal appends.
    pub journal_backoff_ms: Option<u32>,
}

/// Tenant supervision policy: how the service restarts Failed tenants
/// without operator action, and when it stops trying.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Restart budget inside [`SupervisorConfig::window`]; once a
    /// tenant has burned this many restarts within the window it
    /// circuit-breaks to [`TenantState::FailedPermanent`]. `0` disables
    /// supervision entirely (no supervisor thread is spawned).
    pub max_restarts: u32,
    /// Sliding window the restart budget is counted over.
    pub window: Duration,
    /// Base backoff before the first restart attempt; doubles per
    /// restart still inside the window.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic (splitmix64) backoff jitter — up to
    /// 25% of the computed backoff is added.
    pub seed: u64,
    /// Supervisor scan interval.
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 0,
            window: Duration::from_secs(60),
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            seed: 0x5EED_C11E,
            poll: Duration::from_millis(20),
        }
    }
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory; tenant `t` journals into `root/t/`.
    pub root: PathBuf,
    /// Admission cap on concurrently registered tenants.
    pub max_tenants: usize,
    /// Admission cap on concurrent connections per tenant.
    pub max_conns_per_tenant: usize,
    /// Bounded ingest queue depth per tenant (events in flight).
    pub queue_depth: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// Events between tenant checkpoints.
    pub checkpoint_every: u64,
    /// Template engine configuration for tenants (`record_triggers` is
    /// forced on — the journal needs the reports).
    pub engine: EngineConfig,
    /// Retry policy for journal appends.
    pub retry: RetryPolicy,
    /// How long a barrier or stats round trip may take before the
    /// service answers [`REJECT_TIMEOUT`].
    pub reply_timeout: Duration,
    /// Tenant supervision policy (`max_restarts: 0` = off).
    pub supervisor: SupervisorConfig,
    /// Entries retained in each tenant's in-memory trigger log (the
    /// [`FRAME_POLL`] resume window). A client resuming below the
    /// eviction horizon gets [`REJECT_RESUME_GONE`].
    pub trigger_log_cap: usize,
    /// Per-tenant SLO objectives (latency target + goals + window).
    pub slo: SloConfig,
    /// Recent request traces retained per tenant; `0` disables the
    /// trace ring entirely (the disabled path records nothing).
    pub trace_ring: usize,
    /// Slowest-request exemplars retained per tenant with full
    /// per-stage breakdowns.
    pub trace_exemplars: usize,
    /// Daemon version string for `rvmond_build_info` and `/healthz`.
    pub version: String,
    /// Build commit identifier for `rvmond_build_info` and `/healthz`.
    pub commit: String,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            root: PathBuf::from("rvmond-data"),
            max_tenants: 8,
            max_conns_per_tenant: 4,
            queue_depth: 256,
            backpressure: Backpressure::Block,
            checkpoint_every: 256,
            engine: EngineConfig::default(),
            retry: RetryPolicy::default(),
            reply_timeout: Duration::from_secs(10),
            supervisor: SupervisorConfig::default(),
            trigger_log_cap: 1 << 20,
            slo: SloConfig::default(),
            trace_ring: 256,
            trace_exemplars: 8,
            version: env!("CARGO_PKG_VERSION").to_owned(),
            commit: "unknown".to_owned(),
        }
    }
}

// --- Service-wide stats --------------------------------------------------

/// Service-level counters (tenant-level ones live in the snapshots).
/// All atomics: connection threads and workers bump them lock-free.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Tenants admitted (fresh creations plus recoveries).
    pub tenants_admitted: AtomicU64,
    /// Tenant admissions rejected (table full, bad spec, draining…).
    pub tenants_rejected: AtomicU64,
    /// Connection permits granted.
    pub conns_opened: AtomicU64,
    /// Connection permits refused (per-tenant cap).
    pub conns_rejected: AtomicU64,
    /// Events accepted into ingest queues.
    pub events_submitted: AtomicU64,
    /// Events dropped by [`Backpressure::Shed`].
    pub events_shed: AtomicU64,
    /// Malformed frames answered with [`REJECT_BAD_FRAME`].
    pub bad_frames: AtomicU64,
    /// Connections closed because a read idled past the timeout.
    pub idle_reaped: AtomicU64,
    /// Supervised tenant restarts completed.
    pub tenants_restarted: AtomicU64,
    /// Tenants circuit-broken to Failed-permanent after exhausting the
    /// restart budget.
    pub tenants_circuit_broken: AtomicU64,
    /// Hot spec reloads applied.
    pub spec_reloads: AtomicU64,
}

impl ServiceStats {
    /// Renders the counters as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenants_admitted\":{},\"tenants_rejected\":{},\"conns_opened\":{},\
             \"conns_rejected\":{},\"events_submitted\":{},\"events_shed\":{},\
             \"bad_frames\":{},\"idle_reaped\":{},\"tenants_restarted\":{},\
             \"tenants_circuit_broken\":{},\"spec_reloads\":{}}}",
            self.tenants_admitted.load(Ordering::Relaxed),
            self.tenants_rejected.load(Ordering::Relaxed),
            self.conns_opened.load(Ordering::Relaxed),
            self.conns_rejected.load(Ordering::Relaxed),
            self.events_submitted.load(Ordering::Relaxed),
            self.events_shed.load(Ordering::Relaxed),
            self.bad_frames.load(Ordering::Relaxed),
            self.idle_reaped.load(Ordering::Relaxed),
            self.tenants_restarted.load(Ordering::Relaxed),
            self.tenants_circuit_broken.load(Ordering::Relaxed),
            self.spec_reloads.load(Ordering::Relaxed),
        )
    }
}

// --- Tenant state --------------------------------------------------------

/// Lifecycle state of a tenant's isolation domain.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum TenantState {
    /// Worker alive and consuming.
    #[default]
    Running,
    /// Worker stopped after a drain checkpoint — restart-ready.
    Drained,
    /// Worker quarantined after a panic or persistent journal failure;
    /// the string is the failure rendering. Neighbors are unaffected.
    /// Under supervision this is a transient state: the supervisor
    /// restarts the tenant after a backoff, budget permitting.
    Failed(String),
    /// The supervisor is restarting the worker through the recovery
    /// path; submissions get a retryable [`REJECT_DRAINING`].
    Restarting,
    /// The restart budget is exhausted: the supervisor circuit-broke
    /// this tenant and only operator action (daemon restart) revives
    /// it. The string is the last failure rendering.
    FailedPermanent(String),
}

impl TenantState {
    /// Short label for health output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TenantState::Running => "running",
            TenantState::Drained => "drained",
            TenantState::Failed(_) => "failed",
            TenantState::Restarting => "restarting",
            TenantState::FailedPermanent(_) => "failed-permanent",
        }
    }
}

/// A point-in-time public view of one tenant, maintained by its worker
/// and read by `/healthz`, `/metrics` and the stats frames.
#[derive(Clone, Debug, Default)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// Lifecycle state.
    pub state: TenantState,
    /// Event lines processed (journaled and dispatched).
    pub events: u64,
    /// Goal reports delivered (journaled).
    pub triggers: u64,
    /// Events dropped at the ingest queue by [`Backpressure::Shed`].
    pub shed_events: u64,
    /// Client lines rejected as malformed (unknown event, bad arity…).
    pub bad_lines: u64,
    /// Monitors quarantined after trigger-handler panics.
    pub quarantined: u64,
    /// Budget trips counted by the engines.
    pub budget_trips: u64,
    /// Degradation-ladder transitions entered.
    pub degradations: u64,
    /// Monitor creations shed by the `shed_new_monitors` rung.
    pub shed_monitors: u64,
    /// Live monitor instances.
    pub monitors_live: u64,
    /// Checkpoints written (drain and periodic).
    pub checkpoints: u64,
    /// Journal records appended.
    pub journal_records: u64,
    /// Transient journal-append retries spent.
    pub journal_retries: u64,
    /// Events replayed during recovery (0 for a fresh tenant).
    pub recovered_events: u64,
    /// Goal reports suppressed as already-delivered during recovery.
    pub suppressed_triggers: u64,
    /// Supervised restarts completed for this tenant.
    pub restarts: u64,
    /// Spec version: 1 at creation, +1 per hot reload (recovered from
    /// the journal's `AUX_RELOAD` records after a restart).
    pub spec_version: u64,
    /// Session lines dropped as duplicates by the per-session
    /// `(session, cseq)` high-water mark — the server half of
    /// exactly-once ingestion.
    pub deduped_events: u64,
    /// FNV-1a hash of the tenant's current spec source; HELLO attaches
    /// carrying a non-empty spec are checked against it (409).
    pub spec_hash: u64,
}

impl TenantSnapshot {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let state = match &self.state {
            TenantState::Failed(e) => format!("\"failed: {}\"", e.replace('"', "'")),
            TenantState::FailedPermanent(e) => {
                format!("\"failed-permanent: {}\"", e.replace('"', "'"))
            }
            s => format!("\"{}\"", s.label()),
        };
        format!(
            "{{\"name\":\"{}\",\"state\":{state},\"events\":{},\"triggers\":{},\
             \"shed_events\":{},\"bad_lines\":{},\"quarantined\":{},\"budget_trips\":{},\
             \"degradations\":{},\"shed_monitors\":{},\"monitors_live\":{},\
             \"checkpoints\":{},\"journal_records\":{},\"journal_retries\":{},\
             \"recovered_events\":{},\"suppressed_triggers\":{},\"restarts\":{},\
             \"spec_version\":{},\"deduped_events\":{}}}",
            self.name,
            self.events,
            self.triggers,
            self.shed_events,
            self.bad_lines,
            self.quarantined,
            self.budget_trips,
            self.degradations,
            self.shed_monitors,
            self.monitors_live,
            self.checkpoints,
            self.journal_records,
            self.journal_retries,
            self.recovered_events,
            self.suppressed_triggers,
            self.restarts,
            self.spec_version,
            self.deduped_events,
        )
    }
}

// --- Trigger log ----------------------------------------------------------

/// One delivered goal report, keyed for exactly-once resume by
/// `(event_seq, ordinal)` — the journal sequence of the line that fired
/// it plus the report's index within that line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TriggerRecord {
    /// Journal sequence of the firing line.
    pub event_seq: u64,
    /// Index of this report within that line's reports.
    pub ordinal: u32,
    /// Property block that fired.
    pub block: u16,
    /// The engine's event counter at fire time.
    pub step: u64,
    /// The reported verdict.
    pub verdict: Verdict,
    /// The reported binding.
    pub binding: Binding,
}

impl TriggerRecord {
    /// The exactly-once key.
    #[must_use]
    pub fn key(&self) -> (u64, u32) {
        (self.event_seq, self.ordinal)
    }

    /// A canonical single-line rendering — what the differential chaos
    /// harness compares byte-for-byte between a clean run and a run
    /// through `netchaos`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "t {}.{} b{} s{} v{} {:?}",
            self.event_seq,
            self.ordinal,
            self.block,
            self.step,
            self.verdict.to_byte(),
            self.binding,
        )
    }

    fn to_record(self) -> Record {
        Record::Trigger {
            event_seq: self.event_seq,
            ordinal: self.ordinal,
            block: self.block,
            step: self.step,
            verdict: self.verdict,
            binding: self.binding,
        }
    }

    fn from_record(r: &Record) -> Option<TriggerRecord> {
        match r {
            Record::Trigger { event_seq, ordinal, block, step, verdict, binding } => {
                Some(TriggerRecord {
                    event_seq: *event_seq,
                    ordinal: *ordinal,
                    block: *block,
                    step: *step,
                    verdict: *verdict,
                    binding: *binding,
                })
            }
            _ => None,
        }
    }
}

/// Encodes a [`FRAME_TRIGGERS`] payload from a batch of reports.
#[must_use]
pub fn encode_triggers(batch: &[TriggerRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + batch.len() * 48);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    let mut body = Vec::new();
    for t in batch {
        body.clear();
        t.to_record().encode_payload(&mut body);
        out.extend_from_slice(&(body.len() as u16).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// Decodes a [`FRAME_TRIGGERS`] payload; `None` on malformed bytes.
#[must_use]
pub fn decode_triggers(payload: &[u8]) -> Option<Vec<TriggerRecord>> {
    let count = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u16::from_le_bytes(payload.get(pos..pos + 2)?.try_into().ok()?) as usize;
        pos += 2;
        let body = payload.get(pos..pos + len)?;
        pos += len;
        out.push(TriggerRecord::from_record(&Record::decode(2, body)?)?);
    }
    (pos == payload.len()).then_some(out)
}

/// A tenant's in-memory, journal-backed log of delivered goal reports:
/// the resume window [`FRAME_POLL`] serves. Entries are strictly
/// ordered by key; the worker appends as it fires, recovery rebuilds
/// the whole log from the journal's Trigger records.
#[derive(Debug, Default)]
pub struct TriggerLog {
    entries: std::collections::VecDeque<TriggerRecord>,
    /// Key of the newest evicted entry — polls at or below it can no
    /// longer be served exactly-once.
    evicted_through: Option<(u64, u32)>,
    cap: usize,
}

impl TriggerLog {
    fn with_cap(cap: usize) -> TriggerLog {
        TriggerLog { cap: cap.max(1), ..TriggerLog::default() }
    }

    fn reset(&mut self, cap: usize) {
        self.entries.clear();
        self.evicted_through = None;
        self.cap = cap.max(1);
    }

    fn push(&mut self, t: TriggerRecord) {
        self.entries.push_back(t);
        while self.entries.len() > self.cap {
            let gone = self.entries.pop_front().expect("len > cap >= 1");
            self.evicted_through = Some(gone.key());
        }
    }

    /// Entries with key strictly after `after`, up to `max`; `Err(())`
    /// when `after` lies below the eviction horizon.
    fn poll(&self, after: (u64, u32), max: usize) -> Result<Vec<TriggerRecord>, ()> {
        if self.evicted_through.is_some_and(|ev| after < ev) {
            return Err(());
        }
        let start = self.entries.partition_point(|t| t.key() <= after);
        Ok(self.entries.iter().skip(start).take(max).copied().collect())
    }
}

// --- Tenant plumbing ------------------------------------------------------

/// Per-tenant observability state: stage-latency histograms, the
/// bounded request-trace ring with slowest-exemplar capture, and the
/// SLO tracker. Shared between the worker (records), connection
/// threads (availability errors on rejects), and the exposition
/// surfaces (reads). Like the snapshot it lives in the tenant's
/// wiring, so supervised restarts keep the series monotonic and the
/// label set frozen.
struct TenantObs {
    /// Time origin shared with the service's flight recorder, so trace
    /// `at_ns` stamps and black-box events sit on one timeline.
    epoch: Instant,
    stages: Mutex<StageStats>,
    ring: Mutex<RequestTraceRing>,
    slo: Mutex<SloTracker>,
}

impl TenantObs {
    fn new(config: &ServiceConfig, epoch: Instant) -> TenantObs {
        TenantObs {
            epoch,
            stages: Mutex::new(StageStats::default()),
            ring: Mutex::new(RequestTraceRing::new(config.trace_ring, config.trace_exemplars)),
            slo: Mutex::new(SloTracker::new(config.slo)),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Charges one failed request against the availability objective.
    fn note_error(&self) {
        self.slo.lock().expect("slo poisoned").record_error();
    }
}

enum TenantMsg {
    Line {
        session: u64,
        cseq: u64,
        line: String,
        /// When the line was accepted into the ingest queue — the
        /// worker derives queue wait from it at dequeue.
        enqueued: Instant,
        /// Time spent reading + decoding the frame off the wire
        /// (excludes inter-frame idle).
        wire_ns: u64,
        /// Time spent in admission (registry lookup + state checks)
        /// before the enqueue; queue-block stalls under
        /// [`Backpressure::Block`] land in queue wait instead.
        admission_ns: u64,
    },
    Sync {
        token: u64,
        reply: SyncSender<u64>,
    },
    /// Barrier that also echoes the session's contiguous cseq HWM, so a
    /// resilient client can detect gap-dropped lines and resend.
    SyncSession {
        token: u64,
        session: u64,
        reply: SyncSender<(u64, u64)>,
    },
    Stats {
        reply: SyncSender<String>,
    },
    Reload {
        token: u64,
        source: String,
        reply: SyncSender<Result<u64, Reject>>,
    },
    Drain,
}

struct Tenant {
    ingest: SyncSender<TenantMsg>,
    conns: Arc<AtomicUsize>,
    shared: Arc<Mutex<TenantSnapshot>>,
    worker: Option<std::thread::JoinHandle<()>>,
    triggers: Arc<Mutex<TriggerLog>>,
    obs: Arc<TenantObs>,
    /// Set by [`Service::reload`] around the cutover round trip;
    /// submissions answer a retryable 503 while it holds.
    reloading: Arc<AtomicBool>,
    dir: PathBuf,
    opts: TenantOptions,
    /// Completion times of supervised restarts still inside the budget
    /// window.
    restart_times: Vec<std::time::Instant>,
    /// When the next restart attempt is due (backoff already applied).
    next_restart: Option<std::time::Instant>,
}

/// A granted connection slot; dropping it releases the slot.
#[derive(Debug)]
pub struct ConnPermit {
    conns: Arc<AtomicUsize>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.conns.fetch_sub(1, Ordering::AcqRel);
    }
}

// --- The service ---------------------------------------------------------

/// The multi-tenant service core: tenant registry, admission control,
/// ingest routing, drain, and recovery. `rvmond` wraps it in TCP;
/// tests drive it directly.
pub struct Service {
    config: ServiceConfig,
    tenants: Arc<Mutex<HashMap<String, Tenant>>>,
    /// Service-level counters.
    pub stats: Arc<ServiceStats>,
    draining: Arc<AtomicBool>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
    supervisor_stop: Arc<AtomicBool>,
    /// Service start — the shared epoch for uptime, trace stamps, and
    /// the flight recorder's timeline.
    started: Instant,
    /// The always-on black box: GC cycles, rejects, restarts, reload
    /// cutovers, state changes — dumped post-mortem.
    flight: Arc<Mutex<FlightRecorder>>,
    /// Sequence for on-disk flight dump filenames.
    flight_dumps: AtomicU64,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("root", &self.config.root).finish()
    }
}

fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

const OPTIONS_FILE: &str = "tenant.opts";

fn write_options(dir: &Path, opts: &TenantOptions) -> std::io::Result<()> {
    std::fs::write(
        dir.join(OPTIONS_FILE),
        format!(
            "flags={}\nmax_live_monitors={}\njournal_retries={}\njournal_backoff_ms={}\n",
            opts.flags,
            opts.max_live_monitors.unwrap_or(0),
            opts.journal_retries.unwrap_or(0),
            opts.journal_backoff_ms.unwrap_or(0),
        ),
    )
}

fn read_options(dir: &Path) -> TenantOptions {
    let mut opts = TenantOptions::default();
    let Ok(text) = std::fs::read_to_string(dir.join(OPTIONS_FILE)) else {
        return opts;
    };
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("flags=") {
            opts.flags = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("max_live_monitors=") {
            let n: u32 = v.trim().parse().unwrap_or(0);
            opts.max_live_monitors = (n > 0).then_some(n);
        } else if let Some(v) = line.strip_prefix("journal_retries=") {
            let n: u32 = v.trim().parse().unwrap_or(0);
            opts.journal_retries = (n > 0).then_some(n);
        } else if let Some(v) = line.strip_prefix("journal_backoff_ms=") {
            let n: u32 = v.trim().parse().unwrap_or(0);
            opts.journal_backoff_ms = (n > 0).then_some(n);
        }
    }
    opts
}

/// Filesystem-safe rendering of a flight-dump reason.
fn sanitize_reason(reason: &str) -> String {
    reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

/// Writes a tenant-scoped post-mortem flight dump beside the service
/// root: the daemon black box plus this tenant's retained traces.
/// Dump failures are swallowed — the black box must never turn a
/// failing tenant into a failing daemon.
fn write_tenant_flight_dump(
    dir: &Path,
    reason: &str,
    tenant: &str,
    err: &str,
    flight: &Arc<Mutex<FlightRecorder>>,
    obs: &Arc<TenantObs>,
) -> Option<PathBuf> {
    let events: Vec<FlightEvent> =
        flight.lock().expect("flight recorder poisoned").events().cloned().collect();
    let mut traces: Vec<(String, RequestTrace)> = Vec::new();
    {
        let ring = obs.ring.lock().expect("trace ring poisoned");
        for t in ring.recent() {
            traces.push((tenant.to_owned(), *t));
        }
        for t in ring.slowest() {
            traces.push((tenant.to_owned(), *t));
        }
    }
    let meta = [("tenant".to_owned(), tenant.to_owned()), ("error".to_owned(), err.to_owned())];
    let body = render_dump(reason, &meta, &events, &traces);
    let root = dir.parent().unwrap_or(dir);
    for k in 0..10_000u32 {
        let path = root.join(format!(
            "flight-{}-{}-{k}.rvfr",
            sanitize_reason(tenant),
            sanitize_reason(reason)
        ));
        if !path.exists() {
            return std::fs::write(&path, &body).ok().map(|()| path);
        }
    }
    None
}

/// FNV-1a over a spec source — the cheap fingerprint HELLO attaches are
/// checked against.
fn spec_hash(source: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in source.trim().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Service {
    /// Creates the service, making the root directory.
    ///
    /// # Errors
    ///
    /// Any IO error creating the root directory.
    pub fn new(config: ServiceConfig) -> std::io::Result<Service> {
        std::fs::create_dir_all(&config.root)?;
        let tenants = Arc::new(Mutex::new(HashMap::new()));
        let stats = Arc::new(ServiceStats::default());
        let supervisor_stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let flight = Arc::new(Mutex::new(FlightRecorder::with_epoch(FLIGHT_CAP, started)));
        let supervisor = if config.supervisor.max_restarts > 0 {
            let tenants = Arc::clone(&tenants);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&supervisor_stop);
            let config = config.clone();
            let flight = Arc::clone(&flight);
            Some(
                std::thread::Builder::new()
                    .name("rvmond-supervisor".into())
                    .spawn(move || supervisor_loop(&tenants, &stats, &stop, &config, &flight))
                    .map_err(std::io::Error::other)?,
            )
        } else {
            None
        };
        Ok(Service {
            config,
            tenants,
            stats,
            draining: Arc::new(AtomicBool::new(false)),
            supervisor: Mutex::new(supervisor),
            supervisor_stop,
            started,
            flight,
            flight_dumps: AtomicU64::new(0),
        })
    }

    /// Stops the supervisor thread (idempotent); drain and drop call
    /// this before joining workers so a restart cannot race them.
    fn stop_supervisor(&self) {
        self.supervisor_stop.store(true, Ordering::Release);
        if let Some(h) = self.supervisor.lock().expect("supervisor handle poisoned").take() {
            let _ = h.join();
        }
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Whether the service is draining (no new admissions or events).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Seconds since the service started.
    #[must_use]
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Appends one event to the flight recorder's black box.
    fn flight_note(&self, tenant: &str, kind: FlightKind, dur_ns: u64, detail: &str) {
        self.flight.lock().expect("flight recorder poisoned").note(tenant, kind, dur_ns, detail);
    }

    fn obs_of(&self, name: &str) -> Option<Arc<TenantObs>> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        tenants.get(name).map(|t| Arc::clone(&t.obs))
    }

    /// Charges one failed request against `name`'s availability
    /// objective and black-boxes the reject. Connection loops call this
    /// on malformed frames and non-retryable submit rejects, so error
    /// budget burns when the wire misbehaves — not only when the worker
    /// does.
    pub fn note_request_error(&self, name: &str, code: u16, msg: &str) {
        if let Some(obs) = self.obs_of(name) {
            obs.note_error();
        }
        self.flight_note(name, FlightKind::Reject, 0, &format!("{code} {msg}"));
    }

    /// Per-tenant `(name, stage stats, slo snapshot, traces recorded)`
    /// for the exposition surfaces, sorted by name.
    fn obs_snapshots(&self) -> Vec<(String, StageStats, SloSnapshot, u64)> {
        let mut out: Vec<_> = {
            let tenants = self.tenants.lock().expect("tenant registry poisoned");
            tenants
                .iter()
                .map(|(name, t)| {
                    let stages = t.obs.stages.lock().expect("stage stats poisoned").clone();
                    let slo = t.obs.slo.lock().expect("slo poisoned").snapshot();
                    let recorded = t.obs.ring.lock().expect("trace ring poisoned").recorded();
                    (name.clone(), stages, slo, recorded)
                })
                .collect()
        };
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Writes a post-mortem flight dump — the black box plus every
    /// tenant's retained traces (recent ring + slowest exemplars) — to
    /// `<root>/flight-<reason>-<n>.rvfr` and returns its path.
    ///
    /// # Errors
    ///
    /// Any IO error writing the dump file.
    pub fn dump_flight(&self, reason: &str) -> std::io::Result<PathBuf> {
        let events: Vec<FlightEvent> =
            self.flight.lock().expect("flight recorder poisoned").events().cloned().collect();
        let mut traces: Vec<(String, RequestTrace)> = Vec::new();
        {
            let tenants = self.tenants.lock().expect("tenant registry poisoned");
            let mut names: Vec<&String> = tenants.keys().collect();
            names.sort();
            for name in names {
                let ring = tenants[name].obs.ring.lock().expect("trace ring poisoned");
                for t in ring.recent() {
                    traces.push((name.clone(), *t));
                }
                for t in ring.slowest() {
                    traces.push((name.clone(), *t));
                }
            }
        }
        let meta = [
            ("version".to_owned(), self.config.version.clone()),
            ("commit".to_owned(), self.config.commit.clone()),
            ("uptime_s".to_owned(), self.uptime_seconds().to_string()),
        ];
        let body = render_dump(reason, &meta, &events, &traces);
        let n = self.flight_dumps.fetch_add(1, Ordering::Relaxed);
        let path = self.config.root.join(format!("flight-{}-{n}.rvfr", sanitize_reason(reason)));
        std::fs::write(&path, body)?;
        Ok(path)
    }

    /// Admits (or attaches to) tenant `name`. A fresh tenant needs a
    /// non-empty `spec` source; attaching to a live tenant accepts an
    /// empty spec or the identical source. A tenant directory left by a
    /// previous run is recovered: checkpoint restore + journal suffix
    /// replay with duplicate-trigger suppression.
    ///
    /// # Errors
    ///
    /// A typed [`Reject`]: [`REJECT_DRAINING`], [`REJECT_BAD_FRAME`]
    /// (bad name / missing spec), [`REJECT_TOO_MANY_TENANTS`],
    /// [`REJECT_BAD_SPEC`], [`REJECT_SPEC_MISMATCH`] or
    /// [`REJECT_TENANT_FAILED`] (recovery failed).
    pub fn admit(&self, name: &str, spec: &str, opts: TenantOptions) -> Result<(), Reject> {
        if self.is_draining() {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((REJECT_DRAINING, "service is draining".into()));
        }
        if !valid_tenant_name(name) {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((REJECT_BAD_FRAME, "tenant names are 1-64 chars of [A-Za-z0-9_-]".into()));
        }
        let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
        if let Some(t) = tenants.get(name) {
            let (state, hash) = {
                let snap = t.shared.lock().expect("snapshot poisoned");
                (snap.state.clone(), snap.spec_hash)
            };
            match state {
                TenantState::Failed(e) if self.config.supervisor.max_restarts == 0 => {
                    self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err((REJECT_TENANT_FAILED, format!("tenant quarantined: {e}")));
                }
                TenantState::FailedPermanent(e) => {
                    self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err((
                        REJECT_TENANT_FAILED,
                        format!("tenant circuit-broken after restart budget: {e}"),
                    ));
                }
                // Failed-under-supervision and Restarting both accept
                // the attach: the client's next submission gets a
                // retryable reject until the worker is back.
                _ => {}
            }
            if !spec.trim().is_empty() && spec_hash(spec) != hash {
                self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
                return Err((
                    REJECT_SPEC_MISMATCH,
                    format!("tenant `{name}` already exists with a different spec"),
                ));
            }
            return Ok(());
        }
        if tenants.len() >= self.config.max_tenants {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                REJECT_TOO_MANY_TENANTS,
                format!("tenant table full ({} tenants)", tenants.len()),
            ));
        }
        let dir = self.config.root.join(name);
        let has_journal = dir.join("journal-00000000").exists();
        if !has_journal && spec.trim().is_empty() {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}` and no spec given")));
        }
        let tenant = spawn_worker(
            name,
            &dir,
            if spec.trim().is_empty() { None } else { Some(spec.to_owned()) },
            opts,
            &self.config,
            None,
            &self.flight,
            self.started,
        )
        .map_err(|r| {
            self.stats.tenants_rejected.fetch_add(1, Ordering::Relaxed);
            r
        })?;
        tenants.insert(name.to_owned(), tenant);
        self.stats.tenants_admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Recovers every tenant directory under the root (kill -9 or
    /// post-drain restart), returning the recovered names sorted.
    ///
    /// # Errors
    ///
    /// Per-tenant failures are returned alongside the successes; the IO
    /// error is for an unreadable root directory.
    pub fn recover_all(&self) -> std::io::Result<(Vec<String>, Vec<(String, Reject)>)> {
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.config.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() && path.join("journal-00000000").exists() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        for name in names {
            let opts = read_options(&self.config.root.join(&name));
            match self.admit(&name, "", opts) {
                Ok(()) => ok.push(name),
                Err(r) => failed.push((name, r)),
            }
        }
        Ok((ok, failed))
    }

    /// Grants a connection slot for `name`, enforcing the per-tenant cap.
    ///
    /// # Errors
    ///
    /// [`REJECT_TOO_MANY_CONNS`] at the cap, or a bad-name reject for an
    /// unknown tenant.
    pub fn connect(&self, name: &str) -> Result<ConnPermit, Reject> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let Some(t) = tenants.get(name) else {
            return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}`")));
        };
        let cap = self.config.max_conns_per_tenant;
        let granted = t
            .conns
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| (n < cap).then_some(n + 1))
            .is_ok();
        if !granted {
            self.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                REJECT_TOO_MANY_CONNS,
                format!("tenant `{name}` is at its connection cap ({cap})"),
            ));
        }
        self.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
        Ok(ConnPermit { conns: Arc::clone(&t.conns) })
    }

    #[allow(clippy::type_complexity)]
    fn ingest_of(
        &self,
        name: &str,
    ) -> Result<(SyncSender<TenantMsg>, Arc<Mutex<TenantSnapshot>>, Arc<TenantObs>), Reject> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let Some(t) = tenants.get(name) else {
            return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}`")));
        };
        if t.reloading.load(Ordering::Acquire) {
            return Err((REJECT_DRAINING, format!("tenant `{name}` is reloading its spec")));
        }
        let state = t.shared.lock().expect("snapshot poisoned").state.clone();
        match state {
            TenantState::Failed(e) if self.config.supervisor.max_restarts == 0 => {
                Err((REJECT_TENANT_FAILED, format!("tenant quarantined: {e}")))
            }
            // Under supervision a failure is transient: answer the
            // retryable 503 until the restart lands.
            TenantState::Failed(_) | TenantState::Restarting => {
                Err((REJECT_DRAINING, format!("tenant `{name}` is restarting")))
            }
            TenantState::FailedPermanent(e) => {
                Err((REJECT_TENANT_FAILED, format!("tenant circuit-broken: {e}")))
            }
            TenantState::Drained => Err((REJECT_DRAINING, "tenant is drained".into())),
            TenantState::Running => {
                Ok((t.ingest.clone(), Arc::clone(&t.shared), Arc::clone(&t.obs)))
            }
        }
    }

    /// Submits one trace-grammar line to tenant `name`, applying the
    /// configured backpressure policy at a full queue.
    ///
    /// # Errors
    ///
    /// [`REJECT_QUEUE_FULL`] under [`Backpressure::Shed`],
    /// [`REJECT_TENANT_FAILED`] / [`REJECT_DRAINING`] for dead tenants,
    /// [`REJECT_DRAINING`] while the service drains.
    pub fn submit(&self, name: &str, line: &str) -> Result<(), Reject> {
        self.submit_seq(name, 0, 0, line)
    }

    /// Submits one session-stamped line: the tenant applies a given
    /// `(session, cseq)` at most once, so resends after a reconnect are
    /// deduplicated *before* journaling. Session `0` is the legacy
    /// no-dedup path ([`FRAME_EVENT`]).
    ///
    /// # Errors
    ///
    /// As [`Service::submit`].
    pub fn submit_seq(
        &self,
        name: &str,
        session: u64,
        cseq: u64,
        line: &str,
    ) -> Result<(), Reject> {
        self.submit_traced(name, session, cseq, line, 0)
    }

    /// [`Service::submit_seq`] with a trace context: `wire_ns` is the
    /// time the connection loop spent reading the frame off the wire,
    /// and the admission span (registry lookup + state checks) is
    /// measured here. Both ride the ingest message so the worker can
    /// assemble the full wire-to-trigger breakdown.
    ///
    /// # Errors
    ///
    /// As [`Service::submit`]. Sheds and dead-tenant rejects are also
    /// charged against the tenant's availability objective.
    pub fn submit_traced(
        &self,
        name: &str,
        session: u64,
        cseq: u64,
        line: &str,
        wire_ns: u64,
    ) -> Result<(), Reject> {
        let admit_start = Instant::now();
        if self.is_draining() {
            return Err((REJECT_DRAINING, "service is draining".into()));
        }
        let (ingest, shared, obs) = self.ingest_of(name).inspect_err(|r| {
            // Dead-tenant submissions are failed requests: burn budget
            // (the obs Arc survives the worker, so Failed tenants keep
            // accounting) — but not for retryable restart/reload 503s,
            // which the resilient client absorbs.
            if r.0 != REJECT_DRAINING {
                if let Some(obs) = self.obs_of(name) {
                    obs.note_error();
                }
            }
        })?;
        let msg = TenantMsg::Line {
            session,
            cseq,
            line: line.to_owned(),
            enqueued: Instant::now(),
            wire_ns,
            admission_ns: u64::try_from(admit_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        match self.config.backpressure {
            Backpressure::Block => ingest
                .send(msg)
                .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))?,
            Backpressure::Shed => match ingest.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.stats.events_shed.fetch_add(1, Ordering::Relaxed);
                    shared.lock().expect("snapshot poisoned").shed_events += 1;
                    obs.note_error();
                    self.flight_note(name, FlightKind::Reject, 0, "431 ingest queue full");
                    return Err((
                        REJECT_QUEUE_FULL,
                        format!("tenant `{name}` ingest queue is full — event shed"),
                    ));
                }
                Err(TrySendError::Disconnected(_)) => {
                    obs.note_error();
                    return Err((REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")));
                }
            },
        }
        self.stats.events_submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Durability barrier: returns once everything submitted to `name`
    /// before this call is processed and fsynced. Echoes `token`.
    ///
    /// # Errors
    ///
    /// [`REJECT_TIMEOUT`] past
    /// [`ServiceConfig::reply_timeout`], or the dead-tenant rejects.
    pub fn sync(&self, name: &str, token: u64) -> Result<u64, Reject> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.sync_with(name, token, reply_tx)?;
        reply_rx
            .recv_timeout(self.config.reply_timeout)
            .map_err(|_| (REJECT_TIMEOUT, format!("barrier timed out for tenant `{name}`")))
    }

    /// Lower-level barrier: the reply lands on the caller's channel.
    /// Tests use a rendezvous channel here to stall a worker
    /// deterministically.
    ///
    /// # Errors
    ///
    /// The dead-tenant rejects; the send itself blocks at a full queue
    /// regardless of the backpressure policy (barriers are never shed).
    pub fn sync_with(&self, name: &str, token: u64, reply: SyncSender<u64>) -> Result<(), Reject> {
        let (ingest, _, _) = self.ingest_of(name)?;
        ingest
            .send(TenantMsg::Sync { token, reply })
            .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))
    }

    /// Session-aware barrier: like [`Service::sync`], but the reply also
    /// carries the contiguous cseq high-water mark of `session`, so a
    /// resilient client can compare it against the highest cseq it sent
    /// and detect lines lost to an in-connection frame drop (which the
    /// worker gap-discards rather than letting them poison the mark).
    ///
    /// # Errors
    ///
    /// [`REJECT_TIMEOUT`] past [`ServiceConfig::reply_timeout`], or the
    /// dead-tenant rejects.
    pub fn sync_session(&self, name: &str, token: u64, session: u64) -> Result<(u64, u64), Reject> {
        let (ingest, _, _) = self.ingest_of(name)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        ingest
            .send(TenantMsg::SyncSession { token, session, reply: reply_tx })
            .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))?;
        reply_rx
            .recv_timeout(self.config.reply_timeout)
            .map_err(|_| (REJECT_TIMEOUT, format!("barrier timed out for tenant `{name}`")))
    }

    /// The tenant's stats JSON (engine + journal + snapshot counters),
    /// produced by the worker itself at a message boundary.
    ///
    /// # Errors
    ///
    /// [`REJECT_TIMEOUT`] or the dead-tenant rejects.
    pub fn tenant_stats_json(&self, name: &str) -> Result<String, Reject> {
        let (ingest, _, _) = self.ingest_of(name)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        ingest
            .send(TenantMsg::Stats { reply: reply_tx })
            .map_err(|_| (REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))?;
        reply_rx
            .recv_timeout(self.config.reply_timeout)
            .map_err(|_| (REJECT_TIMEOUT, format!("stats timed out for tenant `{name}`")))
    }

    /// Hot spec reload: compiles `source`, drains the tenant's old
    /// engine to a checkpoint at its exact journal tail, journals the
    /// `AUX_RELOAD` cutover, and swaps in a fresh engine — all at a
    /// message boundary inside the worker, so no event ever straddles
    /// two spec versions. While the round trip is in flight submissions
    /// get a retryable [`REJECT_DRAINING`]. A non-zero `token` equal to
    /// the last applied one makes the call an idempotent no-op (the
    /// retry path for clients whose acknowledgement was lost).
    ///
    /// Returns the tenant's spec version after the call.
    ///
    /// # Errors
    ///
    /// [`REJECT_BAD_SPEC`] when `source` does not compile,
    /// [`REJECT_TIMEOUT`], or the dead-tenant rejects.
    pub fn reload(&self, name: &str, token: u64, source: &str) -> Result<u64, Reject> {
        if self.is_draining() {
            return Err((REJECT_DRAINING, "service is draining".into()));
        }
        if source.trim().is_empty() {
            return Err((REJECT_BAD_SPEC, "reload needs a non-empty spec".into()));
        }
        // Fast typed 422 without disturbing the worker; the worker
        // revalidates before cutting over.
        CompiledSpec::from_source(source).map_err(|d| {
            (REJECT_BAD_SPEC, format!("reload spec does not compile: {}", d.message))
        })?;
        let (ingest, reloading) = {
            let tenants = self.tenants.lock().expect("tenant registry poisoned");
            let Some(t) = tenants.get(name) else {
                return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}`")));
            };
            let state = t.shared.lock().expect("snapshot poisoned").state.clone();
            match state {
                TenantState::Running => {}
                TenantState::Failed(_) | TenantState::Restarting => {
                    return Err((REJECT_DRAINING, format!("tenant `{name}` is restarting")));
                }
                TenantState::FailedPermanent(e) => {
                    return Err((REJECT_TENANT_FAILED, format!("tenant circuit-broken: {e}")));
                }
                TenantState::Drained => {
                    return Err((REJECT_DRAINING, "tenant is drained".into()));
                }
            }
            (t.ingest.clone(), Arc::clone(&t.reloading))
        };
        reloading.store(true, Ordering::Release);
        let (reply_tx, reply_rx) = sync_channel(1);
        let outcome = if ingest
            .send(TenantMsg::Reload { token, source: source.to_owned(), reply: reply_tx })
            .is_err()
        {
            Err((REJECT_TENANT_FAILED, format!("tenant `{name}` worker is gone")))
        } else {
            reply_rx
                .recv_timeout(self.config.reply_timeout)
                .map_err(|_| (REJECT_TIMEOUT, format!("reload timed out for tenant `{name}`")))
                .and_then(|r| r)
        };
        reloading.store(false, Ordering::Release);
        if outcome.is_ok() {
            self.stats.spec_reloads.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Pulls tenant `name`'s goal reports strictly after the
    /// `(event_seq, ordinal)` high-water mark `after`, up to `max`.
    /// Served straight from the tenant's journal-backed trigger log —
    /// no worker round trip, so it works while the tenant is Failed or
    /// mid-restart.
    ///
    /// # Errors
    ///
    /// [`REJECT_RESUME_GONE`] when `after` lies below the log's
    /// eviction horizon, or an unknown-tenant reject.
    pub fn poll_triggers(
        &self,
        name: &str,
        after: (u64, u32),
        max: usize,
    ) -> Result<Vec<TriggerRecord>, Reject> {
        let triggers = {
            let tenants = self.tenants.lock().expect("tenant registry poisoned");
            let Some(t) = tenants.get(name) else {
                return Err((REJECT_BAD_FRAME, format!("unknown tenant `{name}`")));
            };
            Arc::clone(&t.triggers)
        };
        let log = triggers.lock().expect("trigger log poisoned");
        log.poll(after, max.clamp(1, 4096)).map_err(|()| {
            (REJECT_RESUME_GONE, format!("resume point {after:?} was evicted from the trigger log"))
        })
    }

    /// Names of every registered tenant, sorted.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let mut names: Vec<String> = tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshots of every tenant, sorted by name.
    #[must_use]
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let mut snaps: Vec<TenantSnapshot> =
            tenants.values().map(|t| t.shared.lock().expect("snapshot poisoned").clone()).collect();
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        snaps
    }

    /// Plain-text liveness body for `/healthz`: a leading `ok` (or
    /// `draining`), the daemon's version and uptime, one `tenant` line
    /// per tenant, then one `slo` line per tenant (error budgets and
    /// burn rates). The `tenant` lines carry only restart-stable
    /// counters — SLO state deliberately rides separate lines.
    #[must_use]
    pub fn healthz(&self) -> String {
        let snaps = self.snapshots();
        let mut out = String::new();
        out.push_str(if self.is_draining() { "draining\n" } else { "ok\n" });
        out.push_str(&format!(
            "version {} commit {}\nuptime_s {}\n",
            self.config.version,
            self.config.commit,
            self.uptime_seconds()
        ));
        out.push_str(&format!("tenants {}\n", snaps.len()));
        for s in &snaps {
            out.push_str(&format!(
                "tenant {} state={} events={} triggers={} shed_events={} bad_lines={} \
                 quarantined={} budget_trips={} shed_monitors={} monitors_live={} checkpoints={} \
                 restarts={} spec_version={} deduped_events={}\n",
                s.name,
                s.state.label(),
                s.events,
                s.triggers,
                s.shed_events,
                s.bad_lines,
                s.quarantined,
                s.budget_trips,
                s.shed_monitors,
                s.monitors_live,
                s.checkpoints,
                s.restarts,
                s.spec_version,
                s.deduped_events,
            ));
        }
        for (name, _, slo, recorded) in self.obs_snapshots() {
            out.push_str(&format!(
                "slo {name} latency_budget={:.4} latency_burn={:.2} \
                 availability_budget={:.4} availability_burn={:.2} good={} bad={} traces={}\n",
                slo.latency.budget_remaining,
                slo.latency.burn_rate,
                slo.availability.budget_remaining,
                slo.availability.burn_rate,
                slo.availability.good_total,
                slo.availability.bad_total,
                recorded,
            ));
        }
        out
    }

    /// Prometheus text exposition of the service and per-tenant counters
    /// (`rvmond_*` namespace, tenant-labeled).
    #[must_use]
    pub fn prometheus(&self) -> String {
        let snaps = self.snapshots();
        let mut out = String::new();
        let service: &[(&str, &str, u64)] = &[
            (
                "rvmond_tenants_admitted_total",
                "Tenants admitted",
                self.stats.tenants_admitted.load(Ordering::Relaxed),
            ),
            (
                "rvmond_tenants_rejected_total",
                "Tenant admissions rejected",
                self.stats.tenants_rejected.load(Ordering::Relaxed),
            ),
            (
                "rvmond_conns_opened_total",
                "Connection permits granted",
                self.stats.conns_opened.load(Ordering::Relaxed),
            ),
            (
                "rvmond_conns_rejected_total",
                "Connection permits refused",
                self.stats.conns_rejected.load(Ordering::Relaxed),
            ),
            (
                "rvmond_events_submitted_total",
                "Events accepted into ingest queues",
                self.stats.events_submitted.load(Ordering::Relaxed),
            ),
            (
                "rvmond_events_shed_total",
                "Events dropped by shed backpressure",
                self.stats.events_shed.load(Ordering::Relaxed),
            ),
            (
                "rvmond_bad_frames_total",
                "Malformed frames rejected",
                self.stats.bad_frames.load(Ordering::Relaxed),
            ),
            (
                "rvmond_idle_reaped_total",
                "Connections reaped for idling",
                self.stats.idle_reaped.load(Ordering::Relaxed),
            ),
            (
                "rvmond_tenants_restarted_total",
                "Supervised tenant restarts completed",
                self.stats.tenants_restarted.load(Ordering::Relaxed),
            ),
            (
                "rvmond_tenants_circuit_broken_total",
                "Tenants circuit-broken after exhausting the restart budget",
                self.stats.tenants_circuit_broken.load(Ordering::Relaxed),
            ),
            (
                "rvmond_spec_reloads_total",
                "Hot spec reloads applied",
                self.stats.spec_reloads.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in service {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        }
        let per_tenant: &[(&str, &str, fn(&TenantSnapshot) -> u64)] = &[
            ("rvmond_tenant_events_total", "Events processed", |s| s.events),
            ("rvmond_tenant_triggers_total", "Goal reports delivered", |s| s.triggers),
            ("rvmond_tenant_shed_events_total", "Events shed at the queue", |s| s.shed_events),
            ("rvmond_tenant_bad_lines_total", "Malformed client lines", |s| s.bad_lines),
            ("rvmond_tenant_quarantined_total", "Monitors quarantined", |s| s.quarantined),
            ("rvmond_tenant_budget_trips_total", "Budget trips", |s| s.budget_trips),
            ("rvmond_tenant_shed_monitors_total", "Monitor creations shed", |s| s.shed_monitors),
            ("rvmond_tenant_checkpoints_total", "Checkpoints written", |s| s.checkpoints),
            ("rvmond_tenant_journal_retries_total", "Journal append retries", |s| {
                s.journal_retries
            }),
            ("rvmond_tenant_restarts_total", "Supervised restarts of this tenant", |s| s.restarts),
            ("rvmond_tenant_deduped_events_total", "Duplicate session lines suppressed", |s| {
                s.deduped_events
            }),
        ];
        for (name, help, get) in per_tenant {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for s in &snaps {
                out.push_str(&format!("{name}{{tenant=\"{}\"}} {}\n", s.name, get(s)));
            }
        }
        out.push_str("# HELP rvmond_tenant_monitors_live Live monitor instances\n");
        out.push_str("# TYPE rvmond_tenant_monitors_live gauge\n");
        for s in &snaps {
            out.push_str(&format!(
                "rvmond_tenant_monitors_live{{tenant=\"{}\"}} {}\n",
                s.name, s.monitors_live
            ));
        }
        out.push_str("# HELP rvmond_tenant_spec_version Spec version (1 + reloads)\n");
        out.push_str("# TYPE rvmond_tenant_spec_version gauge\n");
        for s in &snaps {
            out.push_str(&format!(
                "rvmond_tenant_spec_version{{tenant=\"{}\"}} {}\n",
                s.name, s.spec_version
            ));
        }
        out.push_str("# HELP rvmond_build_info Daemon build information\n");
        out.push_str("# TYPE rvmond_build_info gauge\n");
        out.push_str(&format!(
            "rvmond_build_info{{version=\"{}\",commit=\"{}\"}} 1\n",
            self.config.version, self.config.commit
        ));
        out.push_str("# HELP rvmond_uptime_seconds Seconds since the daemon started\n");
        out.push_str("# TYPE rvmond_uptime_seconds gauge\n");
        out.push_str(&format!("rvmond_uptime_seconds {}\n", self.uptime_seconds()));
        let obs = self.obs_snapshots();
        out.push_str("# HELP rvmond_stage_events_total Stage samples recorded\n");
        out.push_str("# TYPE rvmond_stage_events_total counter\n");
        for (name, stages, _, _) in &obs {
            for stage in Stage::ALL {
                out.push_str(&format!(
                    "rvmond_stage_events_total{{tenant=\"{name}\",stage=\"{}\"}} {}\n",
                    stage.label(),
                    stages.stage(stage).count(),
                ));
            }
        }
        out.push_str("# HELP rvmond_stage_latency_us Per-stage latency quantiles\n");
        out.push_str("# TYPE rvmond_stage_latency_us gauge\n");
        for (name, stages, _, _) in &obs {
            for stage in Stage::ALL {
                let h = stages.stage(stage);
                for (q, v) in
                    [("0.5", h.quantile(0.5)), ("0.9", h.quantile(0.9)), ("0.99", h.quantile(0.99))]
                {
                    out.push_str(&format!(
                        "rvmond_stage_latency_us{{tenant=\"{name}\",stage=\"{}\",quantile=\"{q}\"}} {:.1}\n",
                        stage.label(),
                        v / 1000.0,
                    ));
                }
            }
        }
        out.push_str(
            "# HELP rvmond_slo_error_budget_remaining Fraction of the error budget left\n",
        );
        out.push_str("# TYPE rvmond_slo_error_budget_remaining gauge\n");
        for (name, _, slo, _) in &obs {
            out.push_str(&format!(
                "rvmond_slo_error_budget_remaining{{tenant=\"{name}\",objective=\"latency\"}} {:.4}\n",
                slo.latency.budget_remaining
            ));
            out.push_str(&format!(
                "rvmond_slo_error_budget_remaining{{tenant=\"{name}\",objective=\"availability\"}} {:.4}\n",
                slo.availability.budget_remaining
            ));
        }
        out.push_str("# HELP rvmond_slo_burn_rate Error budget burn rate (1 = exactly at goal)\n");
        out.push_str("# TYPE rvmond_slo_burn_rate gauge\n");
        for (name, _, slo, _) in &obs {
            out.push_str(&format!(
                "rvmond_slo_burn_rate{{tenant=\"{name}\",objective=\"latency\"}} {:.2}\n",
                slo.latency.burn_rate
            ));
            out.push_str(&format!(
                "rvmond_slo_burn_rate{{tenant=\"{name}\",objective=\"availability\"}} {:.2}\n",
                slo.availability.burn_rate
            ));
        }
        out.push_str("# HELP rvmond_slo_requests_total Requests by SLO outcome\n");
        out.push_str("# TYPE rvmond_slo_requests_total counter\n");
        for (name, _, slo, _) in &obs {
            out.push_str(&format!(
                "rvmond_slo_requests_total{{tenant=\"{name}\",outcome=\"good\"}} {}\n",
                slo.availability.good_total
            ));
            out.push_str(&format!(
                "rvmond_slo_requests_total{{tenant=\"{name}\",outcome=\"bad\"}} {}\n",
                slo.availability.bad_total
            ));
        }
        out
    }

    /// Graceful drain: stop admitting, checkpoint every running tenant,
    /// and join the workers. Idempotent; returns the number of tenants
    /// that drained to a checkpoint this call.
    #[must_use]
    pub fn drain(&self) -> usize {
        self.draining.store(true, Ordering::Release);
        // Stop the supervisor before joining workers: a restart landing
        // mid-drain would leave an unjoined worker behind.
        self.stop_supervisor();
        let mut handles = Vec::new();
        {
            let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
            for t in tenants.values_mut() {
                let _ = t.ingest.send(TenantMsg::Drain);
                if let Some(h) = t.worker.take() {
                    handles.push(h);
                }
            }
        }
        let joined = handles.len();
        for h in handles {
            let _ = h.join();
        }
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        let drained = tenants
            .values()
            .filter(|t| t.shared.lock().expect("snapshot poisoned").state == TenantState::Drained)
            .count();
        drained.min(joined.max(drained))
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Dropping without drain() is the crash path tests use: the
        // workers see a channel disconnect and exit without a
        // checkpoint. Join them so their journals finish flushing before
        // the test inspects the files.
        self.stop_supervisor();
        let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
        let handles: Vec<_> = tenants.values_mut().filter_map(|t| t.worker.take()).collect();
        tenants.clear();
        drop(tenants);
        for h in handles {
            let _ = h.join();
        }
    }
}

// --- Connection loop ------------------------------------------------------

fn write_reject(w: &mut impl Write, code: u16, msg: &str) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(2 + msg.len());
    payload.extend_from_slice(&code.to_le_bytes());
    payload.extend_from_slice(msg.as_bytes());
    write_frame(w, FRAME_REJECT, &payload)
}

/// Serves one framed client connection against the service: HELLO →
/// admission + connection permit, EVENT → submit with backpressure,
/// SYNC → durability barrier, STATS → tenant JSON, BYE/EOF → close.
/// Read timeouts (surfaced as `WouldBlock`/`TimedOut` from the stream)
/// reap the connection and are counted in
/// [`ServiceStats::idle_reaped`].
///
/// # Errors
///
/// The IO error that ended the connection, if it was not a clean close.
pub fn serve_connection<S: Read + Write>(service: &Service, stream: &mut S) -> std::io::Result<()> {
    let mut session: Option<(String, ConnPermit)> = None;
    // The dedup session id of the last EVENT_SEQ frame: barriers on this
    // connection echo that session's cseq HWM (0 = legacy clients).
    let mut last_session: u64 = 0;
    loop {
        let frame = match read_frame_timed(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(e) if crate::journal::is_transient(e.kind()) => {
                service.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                let _ = write_reject(stream, REJECT_BAD_FRAME, "idle timeout — closing");
                return Ok(());
            }
            // A torn or corrupt frame (bad length, CRC mismatch, EOF
            // mid-frame) is a client/wire fault, never a server one: the
            // framer answers a typed 400 and closes instead of erroring.
            // With an attached session it is also a failed request — the
            // tenant's availability budget burns when its wire degrades.
            Err(e) if matches!(e.kind(), ErrorKind::InvalidData | ErrorKind::UnexpectedEof) => {
                service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                if let Some((name, _)) = &session {
                    service.note_request_error(name, REJECT_BAD_FRAME, "malformed frame");
                }
                let _ = write_reject(stream, REJECT_BAD_FRAME, &format!("malformed frame: {e}"));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match frame {
            (FRAME_HELLO, payload, _) => {
                let Some((name, spec, opts)) = decode_hello(&payload) else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "malformed HELLO payload")?;
                    return Ok(());
                };
                if let Err((code, msg)) = service.admit(&name, &spec, opts) {
                    write_reject(stream, code, &msg)?;
                    return Ok(());
                }
                match service.connect(&name) {
                    Ok(permit) => {
                        session = Some((name.clone(), permit));
                        write_frame(stream, FRAME_OK, name.as_bytes())?;
                    }
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_EVENT, payload, wire_ns) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "EVENT before HELLO")?;
                    return Ok(());
                };
                let Ok(line) = String::from_utf8(payload) else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "EVENT payload is not UTF-8")?;
                    continue;
                };
                match service.submit_traced(name, 0, 0, &line, wire_ns) {
                    Ok(()) => {}
                    // Shed (431) and reload/restart pauses (503) are
                    // per-event, retryable outcomes, not connection
                    // failures: report and keep serving.
                    Err((code @ (REJECT_QUEUE_FULL | REJECT_DRAINING), msg)) => {
                        write_reject(stream, code, &msg)?;
                    }
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_EVENT_SEQ, payload, wire_ns) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "EVENT_SEQ before HELLO")?;
                    return Ok(());
                };
                let parsed = payload.get(..8).zip(payload.get(8..16)).and_then(|(s, c)| {
                    let sess = u64::from_le_bytes(s.try_into().ok()?);
                    let cseq = u64::from_le_bytes(c.try_into().ok()?);
                    let line = String::from_utf8(payload.get(16..)?.to_vec()).ok()?;
                    Some((sess, cseq, line))
                });
                let Some((sess, cseq, line)) = parsed else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "malformed EVENT_SEQ payload")?;
                    continue;
                };
                last_session = sess;
                match service.submit_traced(name, sess, cseq, &line, wire_ns) {
                    Ok(()) => {}
                    Err((code @ (REJECT_QUEUE_FULL | REJECT_DRAINING), msg)) => {
                        write_reject(stream, code, &msg)?;
                    }
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_RELOAD, payload, _) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "RELOAD before HELLO")?;
                    return Ok(());
                };
                let parsed = payload.get(..8).and_then(|t| {
                    let token = u64::from_le_bytes(t.try_into().ok()?);
                    let source = String::from_utf8(payload.get(8..)?.to_vec()).ok()?;
                    Some((token, source))
                });
                let Some((token, source)) = parsed else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "malformed RELOAD payload")?;
                    continue;
                };
                // Reload is a retryable control operation: rejects keep
                // the connection so the client can back off and retry.
                match service.reload(name, token, &source) {
                    Ok(version) => write_frame(stream, FRAME_RELOADED, &version.to_le_bytes())?,
                    Err((code, msg)) => write_reject(stream, code, &msg)?,
                }
            }
            (FRAME_POLL, payload, _) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "POLL before HELLO")?;
                    return Ok(());
                };
                let parsed = payload.get(..8).zip(payload.get(8..12)).zip(payload.get(12..16));
                let Some(((seq, ord), max)) = parsed else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "malformed POLL payload")?;
                    continue;
                };
                let after = (
                    u64::from_le_bytes(seq.try_into().expect("8 bytes")),
                    u32::from_le_bytes(ord.try_into().expect("4 bytes")),
                );
                let max = u32::from_le_bytes(max.try_into().expect("4 bytes")) as usize;
                match service.poll_triggers(name, after, max) {
                    Ok(batch) => write_frame(stream, FRAME_TRIGGERS, &encode_triggers(&batch))?,
                    Err((code, msg)) => write_reject(stream, code, &msg)?,
                }
            }
            (FRAME_SYNC, payload, _) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "SYNC before HELLO")?;
                    return Ok(());
                };
                let token =
                    payload.get(..8).and_then(|b| b.try_into().ok()).map_or(0, u64::from_le_bytes);
                // Session traffic gets the HWM-echoing barrier; the
                // 8-byte legacy echo is kept for session-0 clients.
                if last_session != 0 {
                    match service.sync_session(name, token, last_session) {
                        Ok((echoed, hwm)) => {
                            let mut p = Vec::with_capacity(16);
                            p.extend_from_slice(&echoed.to_le_bytes());
                            p.extend_from_slice(&hwm.to_le_bytes());
                            write_frame(stream, FRAME_SYNCED, &p)?;
                        }
                        Err((code, msg)) => {
                            write_reject(stream, code, &msg)?;
                            return Ok(());
                        }
                    }
                } else {
                    match service.sync(name, token) {
                        Ok(echoed) => write_frame(stream, FRAME_SYNCED, &echoed.to_le_bytes())?,
                        Err((code, msg)) => {
                            write_reject(stream, code, &msg)?;
                            return Ok(());
                        }
                    }
                }
            }
            (FRAME_STATS, _, _) => {
                let Some((name, _)) = &session else {
                    service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    write_reject(stream, REJECT_BAD_FRAME, "STATS before HELLO")?;
                    return Ok(());
                };
                match service.tenant_stats_json(name) {
                    Ok(json) => write_frame(stream, FRAME_STATS_REPLY, json.as_bytes())?,
                    Err((code, msg)) => {
                        write_reject(stream, code, &msg)?;
                        return Ok(());
                    }
                }
            }
            (FRAME_BYE, _, _) => return Ok(()),
            (kind, _, _) => {
                service.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                write_reject(stream, REJECT_BAD_FRAME, &format!("unknown frame kind {kind:#x}"))?;
                return Ok(());
            }
        }
    }
}

// --- Tenant worker --------------------------------------------------------

/// Pre-existing per-tenant shared state a restarted worker must keep
/// using: the snapshot (so `restarts` and friends survive), the
/// connection counter (live permits stay valid), and the trigger log
/// Arc (pollers keep their handle across the restart).
struct Wiring {
    shared: Arc<Mutex<TenantSnapshot>>,
    conns: Arc<AtomicUsize>,
    triggers: Arc<Mutex<TriggerLog>>,
    reloading: Arc<AtomicBool>,
    obs: Arc<TenantObs>,
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    name: &str,
    dir: &Path,
    spec_source: Option<String>,
    opts: TenantOptions,
    config: &ServiceConfig,
    wiring: Option<Wiring>,
    flight: &Arc<Mutex<FlightRecorder>>,
    epoch: Instant,
) -> Result<Tenant, Reject> {
    let (ingest_tx, ingest_rx) = sync_channel::<TenantMsg>(config.queue_depth.max(1));
    let Wiring { shared, conns, triggers, reloading, obs } = wiring.unwrap_or_else(|| Wiring {
        shared: Arc::new(Mutex::new(TenantSnapshot {
            name: name.to_owned(),
            ..TenantSnapshot::default()
        })),
        conns: Arc::new(AtomicUsize::new(0)),
        triggers: Arc::new(Mutex::new(TriggerLog::with_cap(config.trigger_log_cap))),
        reloading: Arc::new(AtomicBool::new(false)),
        obs: Arc::new(TenantObs::new(config, epoch)),
    });
    let (init_tx, init_rx) = sync_channel::<Result<(), Reject>>(1);
    let worker = {
        let name = name.to_owned();
        let dir = dir.to_path_buf();
        let shared = Arc::clone(&shared);
        let triggers = Arc::clone(&triggers);
        let obs = Arc::clone(&obs);
        let flight = Arc::clone(flight);
        let config = config.clone();
        std::thread::Builder::new()
            .name(format!("rvmond-tenant-{name}"))
            .spawn(move || {
                let mut w = match Worker::init(
                    &name,
                    &dir,
                    spec_source,
                    opts,
                    &config,
                    &shared,
                    &triggers,
                    &obs,
                    &flight,
                ) {
                    Ok(w) => {
                        let _ = init_tx.send(Ok(()));
                        w
                    }
                    Err(r) => {
                        let _ = init_tx.send(Err(r));
                        return;
                    }
                };
                w.run(&ingest_rx);
            })
            .map_err(|e| (REJECT_TENANT_FAILED, format!("cannot spawn worker: {e}")))?
    };
    match init_rx.recv_timeout(Duration::from_secs(60)) {
        Ok(Ok(())) => Ok(Tenant {
            ingest: ingest_tx,
            conns,
            shared,
            worker: Some(worker),
            triggers,
            obs,
            reloading,
            dir: dir.to_path_buf(),
            opts,
            restart_times: Vec::new(),
            next_restart: None,
        }),
        Ok(Err(r)) => {
            let _ = worker.join();
            Err(r)
        }
        Err(_) => Err((REJECT_TIMEOUT, "tenant worker initialisation timed out".into())),
    }
}

// --- Supervisor -----------------------------------------------------------

/// The supervision loop: scans for Failed tenants, schedules restarts
/// with bounded exponential backoff plus deterministic jitter, respawns
/// workers through the recovery path (outside the registry lock — init
/// replays the journal), and circuit-breaks a tenant to
/// [`TenantState::FailedPermanent`] once it burns
/// [`SupervisorConfig::max_restarts`] restarts inside the window.
fn supervisor_loop(
    tenants: &Arc<Mutex<HashMap<String, Tenant>>>,
    stats: &Arc<ServiceStats>,
    stop: &Arc<AtomicBool>,
    config: &ServiceConfig,
    flight: &Arc<Mutex<FlightRecorder>>,
) {
    let sup = config.supervisor;
    let mut rng = sup.seed | 1;
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(sup.poll);
        // Pass 1 (under the lock): prune windows, circuit-break over
        // budget, schedule backoffs, and claim tenants whose backoff
        // expired by taking their worker handle.
        struct Job {
            name: String,
            dir: PathBuf,
            opts: TenantOptions,
            wiring: Wiring,
            old_worker: Option<std::thread::JoinHandle<()>>,
        }
        let mut due: Vec<Job> = Vec::new();
        {
            let mut reg = tenants.lock().expect("tenant registry poisoned");
            let now = std::time::Instant::now();
            for (name, t) in reg.iter_mut() {
                let state = t.shared.lock().expect("snapshot poisoned").state.clone();
                let TenantState::Failed(err) = state else { continue };
                t.restart_times.retain(|&at| now.duration_since(at) < sup.window);
                if t.restart_times.len() >= sup.max_restarts as usize {
                    t.shared.lock().expect("snapshot poisoned").state =
                        TenantState::FailedPermanent(err.clone());
                    t.next_restart = None;
                    stats.tenants_circuit_broken.fetch_add(1, Ordering::Relaxed);
                    flight.lock().expect("flight recorder poisoned").note(
                        name,
                        FlightKind::State,
                        0,
                        format!("circuit-broken: {err}"),
                    );
                    // Circuit-break is the end of the line for this
                    // tenant: leave a post-mortem dump beside its
                    // journal while the trace ring is still warm.
                    let _ = write_tenant_flight_dump(
                        &t.dir,
                        "circuit-break",
                        name,
                        &err,
                        flight,
                        &t.obs,
                    );
                    continue;
                }
                let due_at = *t.next_restart.get_or_insert_with(|| {
                    let exp = u32::try_from(t.restart_times.len()).unwrap_or(16).min(16);
                    let base = sup.backoff.saturating_mul(1u32 << exp.min(12));
                    let capped = base.min(sup.backoff_cap);
                    // Up to 25% deterministic jitter so a herd of
                    // failing tenants doesn't restart in lockstep.
                    let jitter = capped.mul_f64((splitmix64(&mut rng) % 256) as f64 / 1024.0);
                    now + capped + jitter
                });
                if now >= due_at {
                    t.shared.lock().expect("snapshot poisoned").state = TenantState::Restarting;
                    due.push(Job {
                        name: name.clone(),
                        dir: t.dir.clone(),
                        opts: t.opts,
                        wiring: Wiring {
                            shared: Arc::clone(&t.shared),
                            conns: Arc::clone(&t.conns),
                            triggers: Arc::clone(&t.triggers),
                            reloading: Arc::clone(&t.reloading),
                            obs: Arc::clone(&t.obs),
                        },
                        old_worker: t.worker.take(),
                    });
                }
            }
        }
        // Pass 2 (outside the lock): join the dead worker and respawn
        // through the recovery path — journal replay can take a while
        // and must not block admissions.
        for job in due {
            if let Some(h) = job.old_worker {
                let _ = h.join();
            }
            let restart_start = Instant::now();
            let respawned = spawn_worker(
                &job.name,
                &job.dir,
                None,
                job.opts,
                config,
                Some(job.wiring),
                flight,
                restart_start,
            );
            let mut reg = tenants.lock().expect("tenant registry poisoned");
            let Some(t) = reg.get_mut(&job.name) else { continue };
            t.restart_times.push(std::time::Instant::now());
            t.next_restart = None;
            match respawned {
                Ok(fresh) => {
                    t.ingest = fresh.ingest;
                    t.worker = fresh.worker;
                    let mut snap = t.shared.lock().expect("snapshot poisoned");
                    let n = snap.restarts + 1;
                    snap.restarts = n;
                    snap.state = TenantState::Running;
                    drop(snap);
                    stats.tenants_restarted.fetch_add(1, Ordering::Relaxed);
                    flight.lock().expect("flight recorder poisoned").note(
                        &job.name,
                        FlightKind::Restart,
                        u64::try_from(restart_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        format!("restart #{n}"),
                    );
                }
                Err((_, msg)) => {
                    // Recovery itself failed: back to Failed so the next
                    // scan retries (or circuit-breaks) it.
                    t.shared.lock().expect("snapshot poisoned").state =
                        TenantState::Failed(format!("restart failed: {msg}"));
                }
            }
        }
    }
}

/// Cumulative engine counters carried across hot reloads (and, via the
/// `AUX_RELOAD` journal payload, across daemon restarts): a reload
/// folds the outgoing engine's totals into this base so the tenant's
/// public counters stay monotonic while the engine itself starts fresh.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
struct BaseCounters {
    events: u64,
    triggers: u64,
    quarantined: u64,
    budget_trips: u64,
    degradations: u64,
    shed: u64,
}

impl BaseCounters {
    /// `AUX_RELOAD` payload: `[token][6 × u64 counters][spec source]`.
    fn encode_reload(self, token: u64, source: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(56 + source.len());
        for v in [
            token,
            self.events,
            self.triggers,
            self.quarantined,
            self.budget_trips,
            self.degradations,
            self.shed,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(source.as_bytes());
        out
    }

    fn decode_reload(bytes: &[u8]) -> Option<(u64, BaseCounters, String)> {
        if bytes.len() < 56 {
            return None;
        }
        let u = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let base = BaseCounters {
            events: u(1),
            triggers: u(2),
            quarantined: u(3),
            budget_trips: u(4),
            degradations: u(5),
            shed: u(6),
        };
        Some((u(0), base, String::from_utf8(bytes[56..].to_vec()).ok()?))
    }
}

/// Everything a tenant worker owns — engines, heap, naming, journal.
/// Lives entirely on the worker thread; nothing here is `Send`.
struct Worker {
    name: String,
    monitor: PropertyMonitor<MetricsRegistry>,
    heap: Heap,
    class: rv_heap::ClassId,
    objects: HashMap<String, ObjId>,
    journal: JournalWriter,
    dir: PathBuf,
    retry: RetryPolicy,
    checkpoint_every: u64,
    events_since_checkpoint: u64,
    generation: u64,
    alphabet: rv_logic::Alphabet,
    event_params: Vec<Vec<rv_logic::ParamId>>,
    shared: Arc<Mutex<TenantSnapshot>>,
    bad_lines: u64,
    /// Per-session `cseq` high-water marks — the server half of
    /// exactly-once ingestion. Rebuilt from `AUX_SLINE`/`AUX_FATAL`
    /// records on recovery.
    sessions: HashMap<u64, u64>,
    /// Session lines dropped as duplicates by this incarnation.
    deduped: u64,
    /// Session lines discarded because they arrived *past* a cseq gap
    /// (a frame lost inside a live connection) — accepting them would
    /// poison the contiguous HWM. The client resends after the barrier
    /// echo reveals the shortfall.
    gap_dropped: u64,
    /// `deduped_events` carried over from the previous incarnation's
    /// snapshot — supervised restarts keep the snapshot Arc, so the
    /// public counter stays monotonic.
    deduped_base: u64,
    /// Counter base folded in from pre-reload engines.
    base: BaseCounters,
    spec_version: u64,
    reload_token: u64,
    engine_cfg: EngineConfig,
    opts: TenantOptions,
    triggers: Arc<Mutex<TriggerLog>>,
    /// Shared per-tenant observability: stage histograms, trace ring,
    /// SLO tracker.
    obs: Arc<TenantObs>,
    /// The daemon-wide black box this worker notes GC cycles, reload
    /// cutovers and failures into.
    flight: Arc<Mutex<FlightRecorder>>,
}

/// A worker-fatal failure: the tenant quarantines, neighbors continue.
struct Fatal(String);

/// The trace context a [`TenantMsg::Line`] carries into the worker:
/// spans measured before dequeue, completed per-line by the worker.
#[derive(Clone, Copy, Default)]
struct LineCtx {
    wire_ns: u64,
    admission_ns: u64,
    queue_ns: u64,
}

impl Worker {
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn init(
        name: &str,
        dir: &Path,
        spec_source: Option<String>,
        opts: TenantOptions,
        config: &ServiceConfig,
        shared: &Arc<Mutex<TenantSnapshot>>,
        triggers: &Arc<Mutex<TriggerLog>>,
        obs: &Arc<TenantObs>,
        flight: &Arc<Mutex<FlightRecorder>>,
    ) -> Result<Worker, Reject> {
        let mut engine_cfg = config.engine.clone();
        engine_cfg.record_triggers = true;
        if let Some(n) = opts.max_live_monitors {
            engine_cfg.max_live_monitors = Some(n as usize);
        }
        let mut retry = config.retry;
        if let Some(n) = opts.journal_retries {
            retry.max_attempts = n.max(1);
        }
        if let Some(ms) = opts.journal_backoff_ms {
            retry.backoff = Duration::from_millis(u64::from(ms));
        }
        let internal = |msg: String| (REJECT_TENANT_FAILED, msg);

        let has_journal = dir.join("journal-00000000").exists();
        let mut recovered_events = 0u64;
        let mut suppressed = 0u64;
        let (mut w, current_source) = if has_journal {
            let scan = read_journal(dir).map_err(|e| internal(e.to_string()))?;
            // Every spec the journal ever carried: creation (`AUX_SPEC`,
            // seq 0) plus one entry per hot reload.
            let specs = spec_records_of(&scan);
            let current_source = specs
                .last()
                .map(|s| s.source.clone())
                .ok_or_else(|| internal("journal carries no spec header".into()))?;
            if let Some(src) = &spec_source {
                if spec_hash(src) != spec_hash(&current_source) {
                    return Err((
                        REJECT_SPEC_MISMATCH,
                        format!("tenant `{name}` already exists with a different spec"),
                    ));
                }
            }
            let (checkpoint, _skipped) = load_latest_checkpoint(dir, scan.next_seq);
            let replay_from = checkpoint.as_ref().map_or(0, |cp| cp.seq);
            // The monitor to restore into must speak the spec in force
            // at the checkpoint — the last cutover at or before
            // `replay_from`; replay swaps in later reloads as it
            // crosses their `AUX_RELOAD` records.
            let initial = specs.iter().rev().find(|s| s.seq <= replay_from).unwrap_or(&specs[0]);
            let spec = CompiledSpec::from_source(&initial.source).map_err(|d| {
                (REJECT_BAD_SPEC, format!("journaled spec no longer compiles: {}", d.message))
            })?;
            let mut monitor =
                PropertyMonitor::with_observers(spec, &engine_cfg, |_| MetricsRegistry::new());
            if let Some(cp) = &checkpoint {
                monitor
                    .restore_snapshot(&cp.payload, &cp.file)
                    .map_err(|e| internal(e.to_string()))?;
            }
            let hwm = scan.trigger_high_water_mark();
            let Replayed {
                monitor: mut replayed_monitor,
                heap,
                class,
                objects,
                events,
                suppressed: replay_suppressed,
                refired,
                sessions,
                spec_version,
                reload_token,
                base,
            } = replay_tenant(&scan, monitor, &engine_cfg, replay_from, hwm).map_err(internal)?;
            recovered_events = events;
            suppressed = replay_suppressed;
            replayed_monitor.reflag_dead_keys(&heap);
            replayed_monitor.check_invariants(&heap).map_err(|e| internal(e.to_string()))?;
            let mut journal =
                JournalWriter::resume(dir, &scan).map_err(|e| internal(e.to_string()))?;
            // Reports that fired past the durable HWM during replay were
            // lost between dispatch and trigger-journaling before the
            // crash. They are first-time deliveries — journal them now
            // so the *next* recovery suppresses them.
            for t in &refired {
                journal
                    .append_retry(&t.to_record(), &retry)
                    .map_err(|e| internal(e.to_string()))?;
            }
            if !refired.is_empty() {
                journal.sync().map_err(|e| internal(e.to_string()))?;
            }
            let generation = list_checkpoints(dir).last().map_or(0, |g| g + 1);
            // Rebuild the poll window: every journaled report in key
            // order, then the refired tail (their keys all sit past the
            // journaled HWM).
            {
                let mut log = triggers.lock().expect("trigger log poisoned");
                log.reset(config.trigger_log_cap);
                for sr in &scan.records {
                    if let Some(t) = TriggerRecord::from_record(&sr.record) {
                        log.push(t);
                    }
                }
                for t in &refired {
                    log.push(*t);
                }
            }
            let w = Worker {
                name: name.to_owned(),
                alphabet: replayed_monitor.spec().alphabet.clone(),
                event_params: replayed_monitor.spec().event_params.clone(),
                monitor: replayed_monitor,
                heap,
                class,
                objects,
                journal,
                dir: dir.to_path_buf(),
                retry,
                checkpoint_every: config.checkpoint_every.max(1),
                events_since_checkpoint: 0,
                generation,
                shared: Arc::clone(shared),
                bad_lines: 0,
                sessions,
                deduped: 0,
                gap_dropped: 0,
                deduped_base: 0,
                base,
                spec_version,
                reload_token,
                engine_cfg,
                opts,
                triggers: Arc::clone(triggers),
                obs: Arc::clone(obs),
                flight: Arc::clone(flight),
            };
            (w, current_source)
        } else {
            let source = spec_source.expect("admit() requires a spec for fresh tenants");
            let spec = CompiledSpec::from_source(&source)
                .map_err(|d| (REJECT_BAD_SPEC, format!("spec does not compile: {}", d.message)))?;
            let monitor =
                PropertyMonitor::with_observers(spec, &engine_cfg, |_| MetricsRegistry::new());
            std::fs::create_dir_all(dir).map_err(|e| internal(e.to_string()))?;
            write_options(dir, &opts).map_err(|e| internal(e.to_string()))?;
            let mut journal = JournalWriter::create(dir).map_err(|e| internal(e.to_string()))?;
            journal
                .append_retry(
                    &Record::Aux { tag: AUX_SPEC, bytes: source.clone().into_bytes() },
                    &retry,
                )
                .map_err(|e| internal(e.to_string()))?;
            let mut heap = Heap::new(HeapConfig::manual());
            let class = heap.register_class("Obj");
            triggers.lock().expect("trigger log poisoned").reset(config.trigger_log_cap);
            let w = Worker {
                name: name.to_owned(),
                alphabet: monitor.spec().alphabet.clone(),
                event_params: monitor.spec().event_params.clone(),
                monitor,
                heap,
                class,
                objects: HashMap::new(),
                journal,
                dir: dir.to_path_buf(),
                retry,
                checkpoint_every: config.checkpoint_every.max(1),
                events_since_checkpoint: 0,
                generation: 0,
                shared: Arc::clone(shared),
                bad_lines: 0,
                sessions: HashMap::new(),
                deduped: 0,
                gap_dropped: 0,
                deduped_base: 0,
                base: BaseCounters::default(),
                spec_version: 1,
                reload_token: 0,
                engine_cfg,
                opts,
                triggers: Arc::clone(triggers),
                obs: Arc::clone(obs),
                flight: Arc::clone(flight),
            };
            (w, source)
        };

        w.install_flags();
        {
            let mut snap = w.shared.lock().expect("snapshot poisoned");
            snap.recovered_events = recovered_events;
            snap.suppressed_triggers = suppressed;
            // The checkpoint counter survives restarts: prior generations
            // are on disk, and the exposition's `_total` series should
            // stay monotonic across a clean drain/restart cycle.
            snap.checkpoints = list_checkpoints(&w.dir).len() as u64;
            snap.spec_hash = spec_hash(&current_source);
            // A supervised restart reuses the snapshot: dedup totals
            // already on it become this incarnation's base.
            w.deduped_base = snap.deduped_events;
        }
        w.publish();
        Ok(w)
    }

    /// Installs the behaviors the tenant's option flags request on the
    /// current monitor — called at init and again after a reload swap.
    fn install_flags(&mut self) {
        if self.opts.flags & TENANT_FLAG_PANIC_HANDLER != 0 {
            for engine in self.monitor.engines_mut() {
                engine.set_trigger_handler(|_, _, _| {
                    panic!("injected rvmond tenant handler panic");
                });
            }
        }
    }

    /// Pushes the worker's counters into the shared snapshot.
    fn publish(&self) {
        let stats = self.monitor.stats();
        let jstats = self.journal.stats();
        let mut snap = self.shared.lock().expect("snapshot poisoned");
        snap.events = self.base.events + stats.events;
        snap.triggers = self.base.triggers + stats.triggers;
        snap.bad_lines = self.bad_lines;
        snap.quarantined = self.base.quarantined + stats.quarantined;
        snap.budget_trips = self.base.budget_trips + stats.budget_trips;
        snap.degradations = self.base.degradations + stats.degradations;
        snap.shed_monitors = self.base.shed + stats.shed;
        snap.monitors_live = stats.live_monitors as u64;
        snap.journal_records = jstats.records;
        snap.journal_retries = jstats.retries;
        snap.spec_version = self.spec_version;
        snap.deduped_events = self.deduped_base + self.deduped;
    }

    fn set_state(&self, state: TenantState) {
        self.shared.lock().expect("snapshot poisoned").state = state;
    }

    /// Black-boxes a tenant failure and drops a post-mortem flight dump
    /// beside the service root — the trace ring is still warm, so the
    /// dump carries the failing request's full stage breakdown.
    fn note_failure(&self, reason: &str, err: &str) {
        self.flight.lock().expect("flight recorder poisoned").note(
            &self.name,
            FlightKind::State,
            0,
            format!("{reason}: {err}"),
        );
        let _ =
            write_tenant_flight_dump(&self.dir, reason, &self.name, err, &self.flight, &self.obs);
    }

    fn run(&mut self, rx: &Receiver<TenantMsg>) {
        while let Ok(msg) = rx.recv() {
            let drain = matches!(msg, TenantMsg::Drain);
            // The panic boundary: anything that unwinds out of message
            // handling — including engine internals beyond the engine's
            // own handler quarantine — fails THIS tenant only.
            let outcome = catch_unwind(AssertUnwindSafe(|| self.handle(msg)));
            match outcome {
                Ok(Ok(())) => {
                    self.publish();
                    if drain {
                        self.set_state(TenantState::Drained);
                        return;
                    }
                }
                Ok(Err(Fatal(msg))) => {
                    self.publish();
                    self.note_failure("worker-fatal", &msg);
                    self.set_state(TenantState::Failed(msg));
                    return;
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".into());
                    self.note_failure("panic", &msg);
                    self.set_state(TenantState::Failed(format!("panic: {msg}")));
                    return;
                }
            }
        }
        // Channel disconnected without a drain: the crash path. No
        // checkpoint — recovery replays the journal.
    }

    fn handle(&mut self, msg: TenantMsg) -> Result<(), Fatal> {
        match msg {
            TenantMsg::Line { session, cseq, line, enqueued, wire_ns, admission_ns } => {
                let ctx = LineCtx {
                    wire_ns,
                    admission_ns,
                    queue_ns: u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                };
                self.process_line(session, cseq, &line, ctx)
            }
            TenantMsg::Sync { token, reply } => {
                self.sync_timed()?;
                let _ = reply.send(token);
                Ok(())
            }
            TenantMsg::SyncSession { token, session, reply } => {
                self.sync_timed()?;
                let hwm = self.sessions.get(&session).copied().unwrap_or(0);
                let _ = reply.send((token, hwm));
                Ok(())
            }
            TenantMsg::Stats { reply } => {
                let stages = self.obs.stages.lock().expect("stage stats poisoned").to_json();
                let slo = self.obs.slo.lock().expect("slo poisoned").snapshot().to_json();
                let json = format!(
                    "{{\"tenant\":{},\"engine\":{},\"journal\":{},\"stages\":{stages},\"slo\":{slo}}}",
                    self.shared.lock().expect("snapshot poisoned").to_json(),
                    self.monitor.stats().to_json(),
                    self.journal.stats().to_json()
                );
                let _ = reply.send(json);
                Ok(())
            }
            TenantMsg::Reload { token, source, reply } => self.reload(token, &source, &reply),
            TenantMsg::Drain => self.checkpoint_now(),
        }
    }

    /// `journal.sync()` with the fsync span recorded into the stage
    /// histograms. Fsync batches many lines behind one barrier, so it
    /// is attributed here rather than split across per-request traces
    /// (whose `journal_fsync` column reads 0 by design).
    fn sync_timed(&mut self) -> Result<(), Fatal> {
        let t0 = Instant::now();
        self.journal.sync().map_err(|e| Fatal(format!("journal sync failed: {e}")))?;
        self.obs.stages.lock().expect("stage stats poisoned").record(
            Stage::JournalFsync,
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        Ok(())
    }

    /// The hot-reload cutover, at a message boundary so no event
    /// straddles spec versions: checkpoint the old engine at its exact
    /// journal tail, journal the `AUX_RELOAD` cutover (token + counter
    /// base + new source, fsynced), then swap in a fresh engine.
    ///
    /// Crash safety: if the worker dies after the `AUX_RELOAD` fsync but
    /// before the acknowledgement reaches the client, recovery rebuilds
    /// `reload_token` from the journal and the client's retry with the
    /// same token lands in the idempotent branch — the cutover can never
    /// apply twice.
    fn reload(
        &mut self,
        token: u64,
        source: &str,
        reply: &SyncSender<Result<u64, Reject>>,
    ) -> Result<(), Fatal> {
        if token != 0 && token == self.reload_token {
            let _ = reply.send(Ok(self.spec_version));
            return Ok(());
        }
        let spec = match CompiledSpec::from_source(source) {
            Ok(s) => s,
            Err(d) => {
                let _ = reply.send(Err((
                    REJECT_BAD_SPEC,
                    format!("reload spec does not compile: {}", d.message),
                )));
                return Ok(());
            }
        };
        self.checkpoint_now()?;
        let stats = self.monitor.stats();
        let base = BaseCounters {
            events: self.base.events + stats.events,
            triggers: self.base.triggers + stats.triggers,
            quarantined: self.base.quarantined + stats.quarantined,
            budget_trips: self.base.budget_trips + stats.budget_trips,
            degradations: self.base.degradations + stats.degradations,
            shed: self.base.shed + stats.shed,
        };
        self.append(&Record::Aux { tag: AUX_RELOAD, bytes: base.encode_reload(token, source) })?;
        self.sync_timed()?;
        self.monitor =
            PropertyMonitor::with_observers(spec, &self.engine_cfg, |_| MetricsRegistry::new());
        self.install_flags();
        self.alphabet = self.monitor.spec().alphabet.clone();
        self.event_params = self.monitor.spec().event_params.clone();
        self.base = base;
        self.spec_version += 1;
        self.reload_token = token;
        self.events_since_checkpoint = 0;
        self.shared.lock().expect("snapshot poisoned").spec_hash = spec_hash(source);
        // Publish before acknowledging: once the client sees RELOADED,
        // every observability surface must already show the new version.
        self.publish();
        self.flight.lock().expect("flight recorder poisoned").note(
            &self.name,
            FlightKind::Reload,
            0,
            format!("spec v{}", self.spec_version),
        );
        let _ = reply.send(Ok(self.spec_version));
        Ok(())
    }

    fn append(&mut self, record: &Record) -> Result<u64, Fatal> {
        self.journal.append_retry(record, &self.retry).map_err(|e| Fatal(e.to_string()))
    }

    fn checkpoint_now(&mut self) -> Result<(), Fatal> {
        self.sync_timed()?;
        if let Some(payload) = self.monitor.snapshot_bytes() {
            let covered = self.journal.next_seq();
            write_checkpoint(&self.dir, self.generation, covered, &payload)
                .map_err(|e| Fatal(format!("checkpoint write failed: {e}")))?;
            self.append(&Record::CheckpointMark { generation: self.generation, seq: covered })?;
            self.sync_timed()?;
            self.generation += 1;
            self.shared.lock().expect("snapshot poisoned").checkpoints += 1;
        }
        Ok(())
    }

    /// Records `cseq` as seen for `session` (0 = the no-dedup path).
    fn note_session(&mut self, session: u64, cseq: u64) {
        if session != 0 {
            let hwm = self.sessions.entry(session).or_insert(0);
            if cseq > *hwm {
                *hwm = cseq;
            }
        }
    }

    /// Journals one session-stamped line as a single atomic `AUX_SLINE`
    /// record — the line and its dedup `(session, cseq)` commit
    /// together, so a crash can never tear the dedup mark from its
    /// effects.
    fn append_sline(&mut self, session: u64, cseq: u64, line: &str) -> Result<u64, Fatal> {
        let mut bytes = Vec::with_capacity(16 + line.len());
        bytes.extend_from_slice(&session.to_le_bytes());
        bytes.extend_from_slice(&cseq.to_le_bytes());
        bytes.extend_from_slice(line.as_bytes());
        self.append(&Record::Aux { tag: AUX_SLINE, bytes })
    }

    /// One line of the trace grammar. Malformed client input is counted
    /// (`bad_lines`) and skipped — a hostile client cannot fail its
    /// tenant with garbage, let alone a neighbor. Journal and engine
    /// failures are fatal for this tenant only.
    ///
    /// `session`/`cseq` implement the server half of exactly-once
    /// ingestion: a `(session, cseq)` at or below the session's
    /// high-water mark is dropped *before* journaling, so a
    /// reconnecting client's blind resends leave the journal —
    /// and therefore the trigger stream — byte-identical to an
    /// undisturbed run. The HWM advances only *contiguously*: a line
    /// past `hwm + 1` means something in between was lost in transit
    /// (a dropped frame inside a live connection), and accepting it
    /// would poison the mark — the later resend of the missing line
    /// would be wrongly deduped. Such lines are discarded; the client
    /// learns the shortfall from the barrier's HWM echo and resends.
    /// Session `0` is the legacy no-dedup path.
    #[allow(clippy::too_many_lines)]
    fn process_line(
        &mut self,
        session: u64,
        cseq: u64,
        raw: &str,
        ctx: LineCtx,
    ) -> Result<(), Fatal> {
        if self.opts.flags & TENANT_FLAG_SLOW_WORKER != 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        if session != 0 {
            let hwm = self.sessions.get(&session).copied().unwrap_or(0);
            if cseq <= hwm {
                self.deduped += 1;
                return Ok(());
            }
            if cseq > hwm + 1 {
                self.gap_dropped += 1;
                return Ok(());
            }
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            self.note_session(session, cseq);
            return Ok(());
        }
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else {
            self.note_session(session, cseq);
            return Ok(());
        };
        // The wire-to-trigger trace for this line: the connection-side
        // spans arrive in `ctx`, the worker fills in the rest as the
        // line flows through the engine and the journal.
        let mut trace = RequestTrace {
            session,
            cseq,
            seq: 0,
            at_ns: 0,
            stages: [0; crate::flight::STAGE_COUNT],
        };
        trace.stages[Stage::WireRead.idx()] = ctx.wire_ns;
        trace.stages[Stage::Admission.idx()] = ctx.admission_ns;
        trace.stages[Stage::QueueWait.idx()] = ctx.queue_ns;
        let span_ns = |t0: Instant| u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match head {
            "!gc" => {
                let t0 = Instant::now();
                if session == 0 {
                    self.append(&Record::Aux { tag: AUX_GC, bytes: Vec::new() })?;
                } else {
                    self.append_sline(session, cseq, line)?;
                }
                trace.stages[Stage::JournalAppend.idx()] = span_ns(t0);
                let t0 = Instant::now();
                self.heap.collect();
                let dur = span_ns(t0);
                trace.stages[Stage::Engine.idx()] = dur;
                self.flight.lock().expect("flight recorder poisoned").note(
                    &self.name,
                    FlightKind::GcCycle,
                    dur,
                    "heap collect (!gc)",
                );
            }
            "!sweep" => {
                let t0 = Instant::now();
                if session == 0 {
                    self.append(&Record::Aux { tag: AUX_SWEEP, bytes: Vec::new() })?;
                } else {
                    self.append_sline(session, cseq, line)?;
                }
                trace.stages[Stage::JournalAppend.idx()] = span_ns(t0);
                let t0 = Instant::now();
                for engine in self.monitor.engines_mut() {
                    engine.full_sweep(&self.heap);
                }
                let dur = span_ns(t0);
                trace.stages[Stage::Engine.idx()] = dur;
                self.flight.lock().expect("flight recorder poisoned").note(
                    &self.name,
                    FlightKind::GcCycle,
                    dur,
                    "full sweep (!sweep)",
                );
            }
            "!fatal" => {
                if self.opts.flags & TENANT_FLAG_ALLOW_FATAL == 0 {
                    self.bad_lines += 1;
                    self.obs.note_error();
                    self.note_session(session, cseq);
                    return Ok(());
                }
                // Journal + fsync the kill marker BEFORE dying: the
                // restarted worker rebuilds the session HWM past this
                // cseq, so the client's resend of `!fatal` dedups
                // instead of re-killing the tenant in a loop.
                let mut bytes = Vec::with_capacity(16);
                bytes.extend_from_slice(&session.to_le_bytes());
                bytes.extend_from_slice(&cseq.to_le_bytes());
                self.append(&Record::Aux { tag: AUX_FATAL, bytes })?;
                self.sync_timed()?;
                return Err(Fatal("injected worker-fatal fault (!fatal)".into()));
            }
            "!free" => {
                let mut freed = Vec::new();
                let mut payload = Vec::new();
                for name in words {
                    let Some(&obj) = self.objects.get(name) else {
                        self.bad_lines += 1;
                        self.obs.note_error();
                        self.note_session(session, cseq);
                        return Ok(());
                    };
                    payload.extend_from_slice(&obj.to_bits().to_le_bytes());
                    freed.push(obj);
                }
                let t0 = Instant::now();
                if session == 0 {
                    self.append(&Record::Aux { tag: AUX_FREE, bytes: payload })?;
                } else {
                    self.append_sline(session, cseq, line)?;
                }
                trace.stages[Stage::JournalAppend.idx()] = span_ns(t0);
                let t0 = Instant::now();
                for obj in freed {
                    self.heap.unpin(obj);
                }
                trace.stages[Stage::Engine.idx()] = span_ns(t0);
            }
            event_name => {
                let Some(event) = self.alphabet.lookup(event_name) else {
                    self.bad_lines += 1;
                    self.obs.note_error();
                    self.note_session(session, cseq);
                    return Ok(());
                };
                let params = self.event_params[event.as_usize()].clone();
                let names: Vec<&str> = words.collect();
                if names.len() != params.len() {
                    self.bad_lines += 1;
                    self.obs.note_error();
                    self.note_session(session, cseq);
                    return Ok(());
                }
                // First-mention allocations are journaled as AUX_OBJ
                // (object bits + client name) ahead of the event, so
                // recovery rebuilds the same name → ObjId map.
                let mut pairs = Vec::with_capacity(params.len());
                let mut fresh: Vec<Record> = Vec::new();
                for (&p, &name) in params.iter().zip(&names) {
                    let obj = match self.objects.get(name) {
                        Some(&o) => o,
                        None => {
                            let frame = self.heap.enter_frame();
                            let o = self.heap.alloc(self.class);
                            self.heap.pin(o);
                            self.heap.exit_frame(frame);
                            self.objects.insert(name.to_owned(), o);
                            let mut bytes = o.to_bits().to_le_bytes().to_vec();
                            bytes.extend_from_slice(name.as_bytes());
                            fresh.push(Record::Aux { tag: AUX_OBJ, bytes });
                            o
                        }
                    };
                    pairs.push((p, obj));
                }
                let t0 = Instant::now();
                for r in &fresh {
                    self.append(r)?;
                }
                let binding = Binding::from_pairs(&pairs);
                let seq = if session == 0 {
                    self.append(&Record::Event { event, binding })?
                } else {
                    self.append_sline(session, cseq, line)?
                };
                trace.stages[Stage::JournalAppend.idx()] = span_ns(t0);
                trace.seq = seq;
                let before: Vec<usize> =
                    self.monitor.engines().iter().map(|e| e.triggers().len()).collect();
                let t0 = Instant::now();
                self.monitor
                    .try_process(&self.heap, event, binding)
                    .map_err(|e| Fatal(format!("engine error: {e}")))?;
                trace.stages[Stage::Engine.idx()] = span_ns(t0);
                let mut ordinal = 0u32;
                let fired: Vec<Record> = self
                    .monitor
                    .engines()
                    .iter()
                    .enumerate()
                    .flat_map(|(bi, engine)| {
                        engine.triggers()[before[bi]..].iter().map(move |t| (bi, *t))
                    })
                    .map(|(bi, t)| {
                        let r = Record::Trigger {
                            event_seq: seq,
                            ordinal,
                            block: bi as u16,
                            step: t.step as u64,
                            verdict: t.verdict,
                            binding: t.binding,
                        };
                        ordinal += 1;
                        r
                    })
                    .collect();
                let t0 = Instant::now();
                for r in &fired {
                    self.append(r)?;
                }
                if !fired.is_empty() {
                    let mut log = self.triggers.lock().expect("trigger log poisoned");
                    for r in &fired {
                        if let Some(t) = TriggerRecord::from_record(r) {
                            log.push(t);
                        }
                    }
                    trace.stages[Stage::TriggerDelivery.idx()] = span_ns(t0);
                }
                self.events_since_checkpoint += 1;
                if self.events_since_checkpoint >= self.checkpoint_every {
                    self.events_since_checkpoint = 0;
                    self.checkpoint_now()?;
                }
            }
        }
        self.note_session(session, cseq);
        // The line made it wire-to-trigger: close out its trace.
        trace.at_ns = self.obs.now_ns();
        let total_us = trace.total_ns() / 1_000;
        {
            let mut stages = self.obs.stages.lock().expect("stage stats poisoned");
            stages.record_trace(&trace);
        }
        {
            let mut ring = self.obs.ring.lock().expect("trace ring poisoned");
            ring.push(trace);
        }
        self.obs.slo.lock().expect("slo poisoned").record_request(total_us);
        Ok(())
    }
}

// --- Recovery ------------------------------------------------------------

/// One spec the journal carries: the creation `AUX_SPEC` (seq 0) or a
/// hot-reload `AUX_RELOAD` cutover.
struct SpecRec {
    seq: u64,
    source: String,
}

fn spec_records_of(scan: &JournalScan) -> Vec<SpecRec> {
    let mut out = Vec::new();
    for sr in &scan.records {
        match &sr.record {
            Record::Aux { tag, bytes } if *tag == AUX_SPEC => {
                if let Ok(source) = String::from_utf8(bytes.clone()) {
                    out.push(SpecRec { seq: sr.seq, source });
                }
            }
            Record::Aux { tag, bytes } if *tag == AUX_RELOAD => {
                if let Some((_, _, source)) = BaseCounters::decode_reload(bytes) {
                    out.push(SpecRec { seq: sr.seq, source });
                }
            }
            _ => {}
        }
    }
    out
}

/// The spec source currently in force per the journal: the newest of
/// the creation `AUX_SPEC` record and any `AUX_RELOAD` cutovers.
#[must_use]
pub fn spec_source_of(scan: &JournalScan) -> Option<String> {
    spec_records_of(scan).pop().map(|s| s.source)
}

struct Replayed {
    monitor: PropertyMonitor<MetricsRegistry>,
    heap: Heap,
    class: rv_heap::ClassId,
    objects: HashMap<String, ObjId>,
    events: u64,
    suppressed: u64,
    /// Reports that fired during replay with keys past the journaled
    /// HWM — first-time deliveries the crash tore from the journal.
    refired: Vec<TriggerRecord>,
    /// Per-session `cseq` high-water marks from `AUX_SLINE`/`AUX_FATAL`.
    sessions: HashMap<u64, u64>,
    spec_version: u64,
    reload_token: u64,
    base: BaseCounters,
}

/// Dispatches one replayed event and classifies every report it fires:
/// at or below the durable HWM → already delivered, suppress; past it →
/// a refired first-time delivery.
fn replay_dispatch(
    monitor: &mut PropertyMonitor<MetricsRegistry>,
    heap: &Heap,
    seq: u64,
    event: rv_logic::EventId,
    binding: Binding,
    hwm: Option<(u64, u32)>,
    suppressed: &mut u64,
    refired: &mut Vec<TriggerRecord>,
) -> Result<(), String> {
    let before: Vec<usize> = monitor.engines().iter().map(|e| e.triggers().len()).collect();
    monitor
        .try_process(heap, event, binding)
        .map_err(|e| format!("engine error at record {seq}: {e}"))?;
    let mut ordinal = 0u32;
    for (bi, engine) in monitor.engines().iter().enumerate() {
        for t in &engine.triggers()[before[bi]..] {
            if hwm.is_some_and(|h| (seq, ordinal) <= h) {
                *suppressed += 1;
            } else {
                refired.push(TriggerRecord {
                    event_seq: seq,
                    ordinal,
                    block: bi as u16,
                    step: t.step as u64,
                    verdict: t.verdict,
                    binding: t.binding,
                });
            }
            ordinal += 1;
        }
    }
    Ok(())
}

/// Replays a tenant journal: rebuilds the heap and the client-visible
/// name → `ObjId` map from `AUX_OBJ` records, the per-session dedup
/// HWMs from `AUX_SLINE`/`AUX_FATAL`, and the spec lineage from
/// `AUX_RELOAD` (swapping in a fresh engine at each cutover past
/// `replay_from`); feeds events with seq ≥ `replay_from`, suppressing
/// goal reports at or below the durable high-water mark — exactly-once
/// delivery across the crash.
#[allow(clippy::too_many_lines)]
fn replay_tenant(
    scan: &JournalScan,
    mut monitor: PropertyMonitor<MetricsRegistry>,
    engine_cfg: &EngineConfig,
    replay_from: u64,
    hwm: Option<(u64, u32)>,
) -> Result<Replayed, String> {
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut objects: HashMap<String, ObjId> = HashMap::new();
    let mut known: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut events = 0u64;
    let mut suppressed = 0u64;
    let mut refired: Vec<TriggerRecord> = Vec::new();
    let mut sessions: HashMap<u64, u64> = HashMap::new();
    let mut spec_version = 1u64;
    let mut reload_token = 0u64;
    let mut base = BaseCounters::default();
    let note = |sessions: &mut HashMap<u64, u64>, session: u64, cseq: u64| {
        if session != 0 {
            let hwm = sessions.entry(session).or_insert(0);
            if cseq > *hwm {
                *hwm = cseq;
            }
        }
    };
    for sr in &scan.records {
        match &sr.record {
            Record::Aux { tag, .. } if *tag == AUX_GC => {
                heap.collect();
            }
            Record::Aux { tag, bytes } if *tag == AUX_OBJ => {
                let Some(bits) =
                    bytes.get(..8).and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
                else {
                    return Err(format!("journal record {}: truncated AUX_OBJ", sr.seq));
                };
                let name = String::from_utf8_lossy(&bytes[8..]).into_owned();
                let obj = ObjId::from_bits(bits);
                if known.insert(bits) {
                    let frame = heap.enter_frame();
                    let fresh = heap.alloc(class);
                    heap.pin(fresh);
                    heap.exit_frame(frame);
                    if fresh != obj {
                        return Err(format!(
                            "heap replay diverged at record {}: journal names object {bits:#x} \
                             but the rebuilt heap allocated {:#x}",
                            sr.seq,
                            fresh.to_bits()
                        ));
                    }
                }
                objects.insert(name, obj);
            }
            Record::Aux { tag, bytes } if *tag == AUX_FREE => {
                for chunk in bytes.chunks_exact(8) {
                    let bits = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    if !known.contains(&bits) {
                        return Err(format!(
                            "journal record {} frees object {bits:#x} never allocated",
                            sr.seq
                        ));
                    }
                    heap.unpin(ObjId::from_bits(bits));
                }
            }
            Record::Aux { tag, .. } if *tag == AUX_SWEEP => {
                if sr.seq >= replay_from {
                    for engine in monitor.engines_mut() {
                        engine.full_sweep(&heap);
                    }
                }
            }
            Record::Aux { tag, bytes } if *tag == AUX_SLINE => {
                if bytes.len() < 16 {
                    return Err(format!("journal record {}: truncated AUX_SLINE", sr.seq));
                }
                let session = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
                let cseq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
                let line = String::from_utf8_lossy(&bytes[16..]).into_owned();
                note(&mut sessions, session, cseq);
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("!gc") => {
                        heap.collect();
                    }
                    Some("!sweep") => {
                        if sr.seq >= replay_from {
                            for engine in monitor.engines_mut() {
                                engine.full_sweep(&heap);
                            }
                        }
                    }
                    Some("!free") => {
                        for name in words {
                            let Some(&obj) = objects.get(name) else {
                                return Err(format!(
                                    "journal record {} frees unknown object `{name}`",
                                    sr.seq
                                ));
                            };
                            heap.unpin(obj);
                        }
                    }
                    Some(event_name) => {
                        let Some(event) = monitor.spec().alphabet.lookup(event_name) else {
                            return Err(format!(
                                "journal record {}: unknown event `{event_name}`",
                                sr.seq
                            ));
                        };
                        let params = monitor.spec().event_params[event.as_usize()].clone();
                        let mut pairs = Vec::with_capacity(params.len());
                        for (&p, name) in params.iter().zip(words) {
                            let Some(&obj) = objects.get(name) else {
                                return Err(format!(
                                    "journal record {} references `{name}` with no AUX_OBJ \
                                     record",
                                    sr.seq
                                ));
                            };
                            pairs.push((p, obj));
                        }
                        if pairs.len() != params.len() {
                            return Err(format!(
                                "journal record {}: event arity mismatch in `{line}`",
                                sr.seq
                            ));
                        }
                        let binding = Binding::from_pairs(&pairs);
                        if sr.seq >= replay_from {
                            replay_dispatch(
                                &mut monitor,
                                &heap,
                                sr.seq,
                                event,
                                binding,
                                hwm,
                                &mut suppressed,
                                &mut refired,
                            )?;
                            events += 1;
                        }
                    }
                    None => {}
                }
            }
            Record::Aux { tag, bytes } if *tag == AUX_FATAL => {
                if bytes.len() < 16 {
                    return Err(format!("journal record {}: truncated AUX_FATAL", sr.seq));
                }
                let session = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
                let cseq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
                // The dedup mark of a `!fatal` that already killed one
                // incarnation: advancing the HWM here is what turns the
                // client's resend into a no-op instead of a kill loop.
                note(&mut sessions, session, cseq);
            }
            Record::Aux { tag, bytes } if *tag == AUX_RELOAD => {
                let Some((token, reload_base, source)) = BaseCounters::decode_reload(bytes) else {
                    return Err(format!("journal record {}: malformed AUX_RELOAD", sr.seq));
                };
                spec_version += 1;
                reload_token = token;
                base = reload_base;
                if sr.seq > replay_from {
                    let spec = CompiledSpec::from_source(&source).map_err(|d| {
                        format!(
                            "journal record {}: reloaded spec no longer compiles: {}",
                            sr.seq, d.message
                        )
                    })?;
                    monitor = PropertyMonitor::with_observers(spec, engine_cfg, |_| {
                        MetricsRegistry::new()
                    });
                }
            }
            Record::Event { event, binding } => {
                for (_, obj) in binding.iter() {
                    if !known.contains(&obj.to_bits()) {
                        return Err(format!(
                            "journal record {} references object {:#x} with no AUX_OBJ record",
                            sr.seq,
                            obj.to_bits()
                        ));
                    }
                }
                if sr.seq >= replay_from {
                    replay_dispatch(
                        &mut monitor,
                        &heap,
                        sr.seq,
                        *event,
                        *binding,
                        hwm,
                        &mut suppressed,
                        &mut refired,
                    )?;
                    events += 1;
                }
            }
            _ => {}
        }
    }
    Ok(Replayed {
        monitor,
        heap,
        class,
        objects,
        events,
        suppressed,
        refired,
        sessions,
        spec_version,
        reload_token,
        base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report \"improper Concurrent Modification found!\"; }
}
";

    fn temp_root(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rv-svc-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(root: &Path) -> ServiceConfig {
        ServiceConfig { root: root.to_path_buf(), ..ServiceConfig::default() }
    }

    #[test]
    fn frames_round_trip_through_the_codec() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_EVENT, b"create c1 i1").unwrap();
        write_frame(&mut buf, FRAME_SYNC, &7u64.to_le_bytes()).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((FRAME_EVENT, b"create c1 i1".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((FRAME_SYNC, 7u64.to_le_bytes().to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        // Torn length prefix is an error, not a hang or a bad parse.
        let mut torn = &buf[..2];
        assert!(read_frame(&mut torn).is_err());
        // Implausible length is rejected without allocating.
        let mut bogus: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(read_frame(&mut bogus).is_err());
    }

    #[test]
    fn hello_payload_round_trips() {
        let opts = TenantOptions {
            flags: TENANT_FLAG_PANIC_HANDLER,
            max_live_monitors: Some(8),
            journal_retries: Some(3),
            journal_backoff_ms: Some(7),
        };
        let p = encode_hello("tenant-a", SPEC, &opts);
        let (name, spec, got) = decode_hello(&p).unwrap();
        assert_eq!(name, "tenant-a");
        assert_eq!(spec, SPEC);
        assert_eq!(got, opts);
        assert!(decode_hello(&[1, 2]).is_none(), "truncated HELLO");
    }

    #[test]
    fn admission_enforces_tenant_and_connection_caps() {
        let root = temp_root("admission");
        let svc = Service::new(ServiceConfig {
            max_tenants: 2,
            max_conns_per_tenant: 1,
            ..config(&root)
        })
        .unwrap();
        let (code, _) = svc.admit("bad name!", SPEC, TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_BAD_FRAME);
        let (code, _) = svc.admit("nospec", "", TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_BAD_FRAME, "fresh tenant without a spec");
        let (code, _) = svc.admit("badspec", "spec X {", TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_BAD_SPEC);

        svc.admit("a", SPEC, TenantOptions::default()).unwrap();
        svc.admit("b", SPEC, TenantOptions::default()).unwrap();
        let (code, _) = svc.admit("c", SPEC, TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_TOO_MANY_TENANTS);
        // Re-attach to an existing tenant is not an admission.
        svc.admit("a", SPEC, TenantOptions::default()).unwrap();

        let p1 = svc.connect("a").unwrap();
        let (code, _) = svc.connect("a").unwrap_err();
        assert_eq!(code, REJECT_TOO_MANY_CONNS);
        drop(p1);
        let _p2 = svc.connect("a").expect("slot freed by drop");
        assert!(svc.stats.tenants_rejected.load(Ordering::Relaxed) >= 4);
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shed_backpressure_rejects_when_the_queue_is_full() {
        let root = temp_root("shed");
        let svc = Service::new(ServiceConfig {
            queue_depth: 2,
            backpressure: Backpressure::Shed,
            ..config(&root)
        })
        .unwrap();
        svc.admit("t", SPEC, TenantOptions::default()).unwrap();
        // Stall the worker deterministically: a rendezvous reply channel
        // blocks it inside the barrier until we receive. While it is
        // parked (or still holds the Sync message in the queue) the
        // ingest queue can only drain by at most one slot, so submitting
        // queue_depth + 2 events must shed at least one.
        let (reply_tx, reply_rx) = sync_channel(0);
        svc.sync_with("t", 1, reply_tx).unwrap();
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for line in ["create c1 i1", "update c1", "next i1", "update c1"] {
            match svc.submit("t", line) {
                Ok(()) => accepted += 1,
                Err((code, msg)) => {
                    assert_eq!(code, REJECT_QUEUE_FULL, "{msg}");
                    shed += 1;
                }
            }
        }
        assert!(shed >= 1, "a full queue under Shed must reject");
        assert!(accepted >= 1, "the queue has capacity before it fills");
        assert_eq!(svc.stats.events_shed.load(Ordering::Relaxed), shed);
        // Unpark; the queued events flow and a barrier drains them.
        assert_eq!(reply_rx.recv().unwrap(), 1);
        svc.sync("t", 2).unwrap();
        let snap = &svc.snapshots()[0];
        assert_eq!(snap.events, accepted, "every accepted event processed");
        assert_eq!(snap.shed_events, shed, "shed events are on the tenant's ledger");
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn draining_service_rejects_new_work() {
        let root = temp_root("drainrej");
        let svc = Service::new(config(&root)).unwrap();
        svc.admit("t", SPEC, TenantOptions::default()).unwrap();
        svc.submit("t", "create c1 i1").unwrap();
        let drained = svc.drain();
        assert_eq!(drained, 1);
        let (code, _) = svc.admit("u", SPEC, TenantOptions::default()).unwrap_err();
        assert_eq!(code, REJECT_DRAINING);
        let (code, _) = svc.submit("t", "update c1").unwrap_err();
        assert_eq!(code, REJECT_DRAINING);
        assert!(svc.healthz().starts_with("draining\n"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn serve_connection_speaks_the_wire_protocol() {
        // An in-memory duplex: requests pre-encoded, responses captured.
        let root = temp_root("wire");
        let svc = Service::new(config(&root)).unwrap();
        let mut requests = Vec::new();
        write_frame(
            &mut requests,
            FRAME_HELLO,
            &encode_hello("t", SPEC, &TenantOptions::default()),
        )
        .unwrap();
        for line in ["create c1 i1", "update c1", "next i1"] {
            write_frame(&mut requests, FRAME_EVENT, line.as_bytes()).unwrap();
        }
        write_frame(&mut requests, FRAME_SYNC, &9u64.to_le_bytes()).unwrap();
        write_frame(&mut requests, FRAME_STATS, &[]).unwrap();
        write_frame(&mut requests, FRAME_BYE, &[]).unwrap();

        struct Duplex<'a> {
            input: &'a [u8],
            output: Vec<u8>,
        }
        impl Read for Duplex<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut stream = Duplex { input: &requests, output: Vec::new() };
        serve_connection(&svc, &mut stream).unwrap();

        let mut out = &stream.output[..];
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!((kind, payload.as_slice()), (FRAME_OK, b"t".as_slice()));
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!(kind, FRAME_SYNCED);
        assert_eq!(payload, 9u64.to_le_bytes());
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!(kind, FRAME_STATS_REPLY);
        let json = String::from_utf8(payload).unwrap();
        assert!(json.contains("\"events\":3"), "{json}");
        assert!(json.contains("\"triggers\":1"), "{json}");
        assert_eq!(read_frame(&mut out).unwrap(), None, "BYE closes cleanly");

        // A frame before HELLO is a typed reject on a fresh connection.
        let mut bad = Vec::new();
        write_frame(&mut bad, FRAME_EVENT, b"create c1 i1").unwrap();
        let mut stream = Duplex { input: &bad, output: Vec::new() };
        serve_connection(&svc, &mut stream).unwrap();
        let mut out = &stream.output[..];
        let (kind, payload) = read_frame(&mut out).unwrap().unwrap();
        assert_eq!(kind, FRAME_REJECT);
        let code = u16::from_le_bytes(payload[..2].try_into().unwrap());
        assert_eq!(code, REJECT_BAD_FRAME);
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn healthz_and_prometheus_cover_every_tenant() {
        let root = temp_root("obs");
        let svc = Service::new(config(&root)).unwrap();
        svc.admit("alpha", SPEC, TenantOptions::default()).unwrap();
        svc.admit("beta", SPEC, TenantOptions::default()).unwrap();
        for line in ["create c1 i1", "update c1", "next i1"] {
            svc.submit("alpha", line).unwrap();
        }
        svc.sync("alpha", 0).unwrap();
        let health = svc.healthz();
        assert!(health.starts_with("ok\nversion "), "{health}");
        assert!(health.contains("\ntenants 2\n"), "{health}");
        assert!(health.lines().any(|l| l.starts_with("uptime_s ")), "{health}");
        assert!(health.contains("tenant alpha state=running events=3 triggers=1"), "{health}");
        assert!(health.contains("tenant beta state=running events=0"), "{health}");
        assert!(health.contains("slo alpha "), "{health}");
        assert!(health.contains("slo beta "), "{health}");
        let expo = svc.prometheus();
        assert!(expo.contains("rvmond_tenant_events_total{tenant=\"alpha\"} 3"), "{expo}");
        assert!(expo.contains("rvmond_tenant_events_total{tenant=\"beta\"} 0"), "{expo}");
        assert!(expo.contains("# TYPE rvmond_events_submitted_total counter"), "{expo}");
        assert!(expo.contains("rvmond_build_info{version="), "{expo}");
        assert!(expo.contains("rvmond_uptime_seconds "), "{expo}");
        assert!(
            expo.contains(
                "rvmond_slo_error_budget_remaining{tenant=\"alpha\",objective=\"latency\"}"
            ),
            "{expo}"
        );
        assert!(
            expo.contains("rvmond_stage_events_total{tenant=\"alpha\",stage=\"engine\"} 3"),
            "{expo}"
        );
        let _ = svc.drain();
        std::fs::remove_dir_all(&root).unwrap();
    }
}
