//! Spec-driven monitoring: one [`PropertyMonitor`] runs every property
//! block of a compiled spec over a shared event stream.
//!
//! Figure 2 shows a single spec carrying both an FSM and an LTL rendition
//! of HASNEXT; at runtime each block gets its own [`Engine`], all fed the
//! same parametric events. The "ALL" column of Figure 9 (five specs
//! monitored simultaneously) is the same idea one level up, dispatching by
//! spec in `rv-bench`.

use rv_heap::Heap;
use rv_logic::{AnyFormalism, EventId};
use rv_spec::CompiledSpec;

use crate::binding::Binding;
use crate::engine::{Engine, EngineConfig};
use crate::error::EngineError;
use crate::obs::{EngineObserver, NoopObserver};
use crate::stats::EngineStats;

/// Monitors every property block of one compiled spec.
///
/// Generic over the per-engine [`EngineObserver`] (no-op by default);
/// attach real observers with [`PropertyMonitor::with_observers`].
#[derive(Debug)]
pub struct PropertyMonitor<O: EngineObserver = NoopObserver> {
    spec: CompiledSpec,
    engines: Vec<Engine<AnyFormalism, O>>,
}

impl PropertyMonitor {
    /// Builds engines for each property block of `spec`.
    #[must_use]
    pub fn new(spec: CompiledSpec, config: &EngineConfig) -> Self {
        PropertyMonitor::with_observers(spec, config, |_| NoopObserver)
    }
}

impl<O: EngineObserver> PropertyMonitor<O> {
    /// Builds engines for each property block of `spec`, attaching the
    /// observer `make(i)` to the engine of block `i`.
    #[must_use]
    pub fn with_observers(
        spec: CompiledSpec,
        config: &EngineConfig,
        mut make: impl FnMut(usize) -> O,
    ) -> Self {
        let engines = spec
            .properties
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Engine::with_observer(
                    p.formalism.clone(),
                    spec.event_def.clone(),
                    p.goal,
                    config.clone(),
                    make(i),
                )
            })
            .collect();
        PropertyMonitor { spec, engines }
    }

    /// The compiled spec.
    #[must_use]
    pub fn spec(&self) -> &CompiledSpec {
        &self.spec
    }

    /// The per-block engines.
    #[must_use]
    pub fn engines(&self) -> &[Engine<AnyFormalism, O>] {
        &self.engines
    }

    /// Mutable access to the per-block engines (e.g. to reach observers).
    #[must_use]
    pub fn engines_mut(&mut self) -> &mut [Engine<AnyFormalism, O>] {
        &mut self.engines
    }

    /// Looks up an event id by name.
    #[must_use]
    pub fn event(&self, name: &str) -> Option<EventId> {
        self.spec.alphabet.lookup(name)
    }

    /// Dispatches one parametric event to every block's engine.
    ///
    /// Never panics: each engine's infallible [`Engine::process`] facade
    /// drops malformed events and remembers the typed error — inspect it
    /// with [`PropertyMonitor::last_error`], or use
    /// [`PropertyMonitor::try_process`] for per-event failure reporting.
    pub fn process(&mut self, heap: &Heap, event: EventId, binding: Binding) {
        for engine in &mut self.engines {
            engine.process(heap, event, binding);
        }
    }

    /// The first swallowed error across the blocks' infallible
    /// [`Engine::process`] facades, if any.
    #[must_use]
    pub fn last_error(&self) -> Option<&EngineError> {
        self.engines.iter().find_map(Engine::last_error)
    }

    /// Dispatches one parametric event to every block's engine, stopping
    /// at the first engine error.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any block reports.
    pub fn try_process(
        &mut self,
        heap: &Heap,
        event: EventId,
        binding: Binding,
    ) -> Result<(), EngineError> {
        for engine in &mut self.engines {
            engine.try_process(heap, event, binding)?;
        }
        Ok(())
    }

    /// Convenience: dispatches by event name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a declared event of the spec.
    pub fn process_named(&mut self, heap: &Heap, name: &str, binding: Binding) {
        let event = self
            .event(name)
            .unwrap_or_else(|| panic!("spec `{}` has no event `{name}`", self.spec.name));
        self.process(heap, event, binding);
    }

    /// Dispatches by event name, reporting unknown events and engine
    /// failures as recoverable errors.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownEvent`] if `name` is not declared by the
    /// spec, or whatever the engines report.
    pub fn try_process_named(
        &mut self,
        heap: &Heap,
        name: &str,
        binding: Binding,
    ) -> Result<(), EngineError> {
        let event = self.event(name).ok_or_else(|| EngineError::UnknownEvent(name.to_owned()))?;
        self.try_process(heap, event, binding)
    }

    /// Total goal reports across all blocks.
    #[must_use]
    pub fn triggers(&self) -> u64 {
        self.engines.iter().map(|e| e.stats().triggers).sum()
    }

    /// Aggregated statistics across all blocks.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for e in &self.engines {
            total.merge_from(&e.stats());
        }
        total
    }

    /// Estimated bytes across all engines (Fig. 9B metric).
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.engines.iter().map(Engine::estimated_bytes).sum()
    }

    /// Final sweep over all engines.
    pub fn finish(&mut self, heap: &Heap) {
        for e in &mut self.engines {
            e.finish(heap);
        }
    }

    /// Drains the heap's completed-collection log into the *first* block's
    /// observer (the heap is shared by all blocks, so forwarding to every
    /// engine would multiply each cycle by the block count).
    pub fn observe_heap_cycles(&mut self, heap: &mut rv_heap::Heap) {
        if let Some(first) = self.engines.first_mut() {
            first.observe_heap_cycles(heap);
        }
    }

    /// Serializes every block's engine into one checkpoint payload:
    /// `[block count u32][per block: payload length u64 + payload]`.
    ///
    /// Returns `None` if any engine holds a monitor state its formalism
    /// cannot serialize.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        crate::snapshot::put_u32(&mut out, u32::try_from(self.engines.len()).ok()?);
        for e in &self.engines {
            let payload = e.snapshot_bytes()?;
            crate::snapshot::put_u64(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
        }
        Some(out)
    }

    /// Restores every block's engine from a [`snapshot_bytes`] payload.
    ///
    /// The monitor must have been built from the same compiled spec; a
    /// mismatched block count or any per-engine decode failure yields
    /// [`EngineError::CorruptSnapshot`] and leaves already-restored blocks
    /// as they are (callers recover by rebuilding the monitor).
    ///
    /// [`snapshot_bytes`]: Self::snapshot_bytes
    pub fn restore_snapshot(&mut self, bytes: &[u8], file: &str) -> Result<(), EngineError> {
        let mut c = crate::snapshot::Cursor::new(bytes);
        let corrupt = |detail: &str| EngineError::CorruptSnapshot {
            file: file.to_owned(),
            detail: detail.to_owned(),
        };
        let blocks = c.u32().ok_or_else(|| corrupt("missing block count"))? as usize;
        if blocks != self.engines.len() {
            return Err(corrupt("block count does not match the compiled spec"));
        }
        for (i, e) in self.engines.iter_mut().enumerate() {
            let len = c.u64().ok_or_else(|| corrupt("missing engine payload length"))? as usize;
            let payload = c.take(len).ok_or_else(|| corrupt("short engine payload"))?;
            e.restore_snapshot(payload, &format!("{file}#block{i}"))?;
        }
        if !c.finished() {
            return Err(corrupt("trailing bytes after final engine payload"));
        }
        Ok(())
    }

    /// Re-runs dead-key flagging over every block after a restore; returns
    /// the number of newly flagged monitors.
    pub fn reflag_dead_keys(&mut self, heap: &Heap) -> u64 {
        self.engines.iter_mut().map(|e| e.reflag_dead_keys(heap)).sum()
    }

    /// Structural invariant check over every block (recovery acceptance
    /// gate).
    pub fn check_invariants(&self, heap: &Heap) -> Result<(), EngineError> {
        for e in &self.engines {
            e.check_invariants(heap)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use rv_heap::HeapConfig;
    use rv_logic::ParamId;

    fn has_next_monitor() -> PropertyMonitor {
        let spec = rv_spec::CompiledSpec::from_source(
            r#"HasNext(Iterator i) {
                event hasnexttrue(i);
                event hasnextfalse(i);
                event next(i);
                fsm:
                    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
                    more [ hasnexttrue -> more  next -> unknown ]
                    none [ hasnextfalse -> none  next -> error ]
                    error []
                @error { report "bad"; }
                ltl: [](next => (*) hasnexttrue)
                @violation { report "bad"; }
            }"#,
        )
        .unwrap();
        PropertyMonitor::new(
            spec,
            &EngineConfig { record_triggers: true, ..EngineConfig::default() },
        )
    }

    #[test]
    fn both_blocks_fire_on_the_same_violation() {
        let mut m = has_next_monitor();
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("It");
        let _f = heap.enter_frame();
        let it = heap.alloc(cls);
        let b = Binding::from_pairs(&[(ParamId(0), it)]);
        m.process_named(&heap, "hasnexttrue", b);
        m.process_named(&heap, "next", b);
        m.process_named(&heap, "next", b);
        assert_eq!(m.triggers(), 2, "FSM @error and LTL @violation");
        assert_eq!(m.engines().len(), 2);
        let stats = m.stats();
        assert_eq!(stats.events, 6, "each block sees every event");
        assert_eq!(stats.triggers, 2);
        assert!(m.estimated_bytes() > 0);
    }

    #[test]
    fn event_lookup_by_name() {
        let m = has_next_monitor();
        assert!(m.event("next").is_some());
        assert!(m.event("absent").is_none());
        assert_eq!(m.spec().name, "HasNext");
    }

    #[test]
    #[should_panic(expected = "has no event `zap`")]
    fn process_named_rejects_unknown_events() {
        let mut m = has_next_monitor();
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("It");
        let _f = heap.enter_frame();
        let it = heap.alloc(cls);
        m.process_named(&heap, "zap", Binding::from_pairs(&[(ParamId(0), it)]));
    }

    #[test]
    fn snapshot_round_trips_across_all_blocks() {
        let mut m = has_next_monitor();
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("It");
        let _f = heap.enter_frame();
        let it = heap.alloc(cls);
        let b = Binding::from_pairs(&[(ParamId(0), it)]);
        m.process_named(&heap, "hasnexttrue", b);
        m.process_named(&heap, "next", b);
        let bytes = m.snapshot_bytes().expect("serializable");

        let mut restored = has_next_monitor();
        restored.restore_snapshot(&bytes, "mem").unwrap();
        assert_eq!(restored.stats(), m.stats());
        assert_eq!(restored.snapshot_bytes().unwrap(), bytes, "round-trip is byte-identical");
        restored.check_invariants(&heap).unwrap();
        assert_eq!(restored.reflag_dead_keys(&heap), 0, "nothing died, nothing to reflag");

        // Both copies must continue identically — modulo cache_hits, since a
        // restore deliberately starts with a cold lookup cache.
        m.process_named(&heap, "next", b);
        restored.process_named(&heap, "next", b);
        assert_eq!(restored.triggers(), m.triggers());
        let (mut a, mut e) = (restored.stats(), m.stats());
        a.cache_hits = 0;
        e.cache_hits = 0;
        assert_eq!(a, e);

        // Corrupt payloads are rejected with a typed error.
        let err = restored.restore_snapshot(&bytes[..3], "cut").unwrap_err();
        assert!(matches!(err, EngineError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn finish_sweeps_every_block() {
        let mut m = has_next_monitor();
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("It");
        let _outer = heap.enter_frame();
        for _ in 0..10 {
            let inner = heap.enter_frame();
            let it = heap.alloc(cls);
            let b = Binding::from_pairs(&[(ParamId(0), it)]);
            m.process_named(&heap, "hasnexttrue", b);
            m.process_named(&heap, "next", b);
            heap.exit_frame(inner);
        }
        heap.collect();
        m.finish(&heap);
        let stats = m.stats();
        assert_eq!(stats.live_monitors, 0, "{stats}");
        assert_eq!(stats.monitors_collected, stats.monitors_created);
    }
}
