//! Parameter instances (the partial functions `θ ∈ [X ⇁ V]` of
//! Definition 3) and their lattice operations (Definition 5).

use std::fmt;

use rv_heap::ObjId;
use rv_logic::{ParamId, ParamSet};

/// The maximum number of parameters an engine binding can carry. The
/// paper's largest property binds three (`Lock`, `Thread` and the implicit
/// method nesting); eight leaves headroom while keeping bindings `Copy`.
pub const MAX_PARAMS: usize = 8;

/// A parameter instance `θ`: a partial map from parameters to heap
/// objects.
///
/// Bindings hold objects *weakly* — storing a binding never keeps its
/// objects alive (they are packed handles, not roots), which is the
/// property the paper's indexing trees rely on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Binding {
    domain: ParamSet,
    /// Packed [`ObjId`] bits per parameter slot; zero when unbound.
    vals: [u64; MAX_PARAMS],
}

impl Binding {
    /// The empty instance `⊥`.
    pub const BOTTOM: Binding = Binding { domain: ParamSet::EMPTY, vals: [0; MAX_PARAMS] };

    /// Builds a binding from `(parameter, object)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a parameter index is `≥ MAX_PARAMS` or repeats.
    #[must_use]
    pub fn from_pairs(pairs: &[(ParamId, ObjId)]) -> Binding {
        let mut b = Binding::BOTTOM;
        for &(p, v) in pairs {
            assert!(p.as_usize() < MAX_PARAMS, "parameter index {p:?} out of range");
            assert!(!b.domain.contains(p), "parameter {p:?} bound twice");
            b.domain = b.domain.with(p);
            b.vals[p.as_usize()] = v.to_bits();
        }
        b
    }

    /// The domain `dom(θ)`.
    #[must_use]
    pub fn domain(self) -> ParamSet {
        self.domain
    }

    /// `θ(p)`, if bound.
    #[must_use]
    pub fn get(self, p: ParamId) -> Option<ObjId> {
        if self.domain.contains(p) {
            Some(ObjId::from_bits(self.vals[p.as_usize()]))
        } else {
            None
        }
    }

    /// Iterates over `(parameter, object)` pairs in parameter order.
    pub fn iter(self) -> impl Iterator<Item = (ParamId, ObjId)> {
        self.domain.iter().map(move |p| (p, ObjId::from_bits(self.vals[p.as_usize()])))
    }

    /// Whether `self` and `other` are *compatible*: they agree on every
    /// shared parameter (Definition 5).
    #[must_use]
    pub fn compatible(self, other: Binding) -> bool {
        let shared = self.domain.intersection(other.domain);
        shared.iter().all(|p| self.vals[p.as_usize()] == other.vals[p.as_usize()])
    }

    /// The least upper bound `self ⊔ other` (Definition 5), or `None` if
    /// incompatible.
    #[must_use]
    pub fn lub(self, other: Binding) -> Option<Binding> {
        if !self.compatible(other) {
            return None;
        }
        let mut vals = self.vals;
        for p in other.domain.iter() {
            vals[p.as_usize()] = other.vals[p.as_usize()];
        }
        Some(Binding { domain: self.domain.union(other.domain), vals })
    }

    /// Whether `self ⊑ other` (`self` is less informative, Definition 5).
    #[must_use]
    pub fn less_informative(self, other: Binding) -> bool {
        self.domain.is_subset(other.domain)
            && self.domain.iter().all(|p| self.vals[p.as_usize()] == other.vals[p.as_usize()])
    }

    /// The restriction `θ|P` to the parameters in `P ∩ dom(θ)`.
    #[must_use]
    pub fn restrict(self, params: ParamSet) -> Binding {
        let keep = self.domain.intersection(params);
        let mut vals = [0u64; MAX_PARAMS];
        for p in keep.iter() {
            vals[p.as_usize()] = self.vals[p.as_usize()];
        }
        Binding { domain: keep, vals }
    }

    /// The set of bound parameters whose objects are no longer alive on
    /// `heap` — the `dead` input of the ALIVENESS check (§4.2.2).
    #[must_use]
    pub fn dead_params(self, heap: &rv_heap::Heap) -> ParamSet {
        let mut dead = ParamSet::EMPTY;
        for (p, v) in self.iter() {
            if !heap.is_alive(v) {
                dead = dead.with(p);
            }
        }
        dead
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (p, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:?}↦{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_heap::{Heap, HeapConfig};

    fn objs(n: usize) -> (Heap, Vec<ObjId>) {
        let mut h = Heap::new(HeapConfig::manual());
        let c = h.register_class("Obj");
        let _f = h.enter_frame();
        let ids = (0..n).map(|_| h.alloc(c)).collect();
        // The frame token is intentionally never passed to exit_frame:
        // objects stay rooted for the whole test.
        (h, ids)
    }

    #[test]
    fn lub_of_compatible_bindings() {
        let (_h, o) = objs(2);
        let c = Binding::from_pairs(&[(ParamId(0), o[0])]);
        let i = Binding::from_pairs(&[(ParamId(1), o[1])]);
        let ci = c.lub(i).unwrap();
        assert_eq!(ci.domain().len(), 2);
        assert_eq!(ci.get(ParamId(0)), Some(o[0]));
        assert_eq!(ci.get(ParamId(1)), Some(o[1]));
        assert!(c.less_informative(ci));
        assert!(i.less_informative(ci));
        assert!(!ci.less_informative(c));
        assert!(Binding::BOTTOM.less_informative(c));
    }

    #[test]
    fn incompatible_bindings_have_no_lub() {
        let (_h, o) = objs(2);
        let a = Binding::from_pairs(&[(ParamId(0), o[0])]);
        let b = Binding::from_pairs(&[(ParamId(0), o[1])]);
        assert!(!a.compatible(b));
        assert!(a.lub(b).is_none());
        // Compatible with itself and with ⊥.
        assert!(a.compatible(a));
        assert!(a.compatible(Binding::BOTTOM));
        assert_eq!(a.lub(a), Some(a));
    }

    #[test]
    fn restriction_projects_the_domain() {
        let (_h, o) = objs(2);
        let ci = Binding::from_pairs(&[(ParamId(0), o[0]), (ParamId(1), o[1])]);
        let c = ci.restrict(ParamSet::singleton(ParamId(0)));
        assert_eq!(c.domain(), ParamSet::singleton(ParamId(0)));
        assert_eq!(c.get(ParamId(1)), None);
        // Restriction to an unrelated parameter is ⊥.
        assert_eq!(ci.restrict(ParamSet::singleton(ParamId(5))), Binding::BOTTOM);
    }

    #[test]
    fn equality_ignores_stale_slots() {
        let (_h, o) = objs(2);
        let ci = Binding::from_pairs(&[(ParamId(0), o[0]), (ParamId(1), o[1])]);
        let via_restrict = ci.restrict(ParamSet::singleton(ParamId(0)));
        let direct = Binding::from_pairs(&[(ParamId(0), o[0])]);
        assert_eq!(via_restrict, direct);
    }

    #[test]
    fn dead_params_tracks_the_heap() {
        let mut h = Heap::new(HeapConfig::manual());
        let cls = h.register_class("Obj");
        let outer = h.enter_frame();
        let coll = h.alloc(cls);
        let inner = h.enter_frame();
        let iter = h.alloc(cls);
        let b = Binding::from_pairs(&[(ParamId(0), coll), (ParamId(1), iter)]);
        assert!(b.dead_params(&h).is_empty());
        h.exit_frame(inner);
        h.collect();
        assert_eq!(b.dead_params(&h), ParamSet::singleton(ParamId(1)));
        h.exit_frame(outer);
        h.collect();
        assert_eq!(b.dead_params(&h).len(), 2);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_parameter_is_rejected() {
        let (_h, o) = objs(1);
        let _ = Binding::from_pairs(&[(ParamId(0), o[0]), (ParamId(0), o[0])]);
    }

    #[test]
    fn debug_renders_pairs() {
        let (_h, o) = objs(1);
        let b = Binding::from_pairs(&[(ParamId(0), o[0])]);
        let s = format!("{b:?}");
        assert!(s.starts_with('⟨') && s.ends_with('⟩'));
        assert!(s.contains("x0"));
    }
}
